"""Algorithm comparison: the Table-2 experiment as a standalone script.

Run with::

    python examples/algorithm_comparison.py [--scale 0.3] [--queries 12]

Builds the delicious-like corpus, draws a query workload, runs every
registered algorithm over it and prints the latency / access / agreement /
quality table — the quickest way to see the social-first algorithm's
early-termination advantage on your own machine.
"""

from __future__ import annotations

import argparse

from repro import (
    EngineConfig,
    ProximityConfig,
    ScoringConfig,
    SocialSearchEngine,
    WorkloadConfig,
    delicious_like,
)
from repro.eval import ExperimentRunner, format_table
from repro.workload import generate_workload

ALGORITHMS = ["exact", "materialized", "ta", "nra", "hybrid", "social-first",
              "global", "random"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3,
                        help="dataset scale factor (default 0.3)")
    parser.add_argument("--queries", type=int, default=12)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--alpha", type=float, default=0.5)
    args = parser.parse_args()

    dataset = delicious_like(scale=args.scale, seed=7, holdout_fraction=0.2)
    print(dataset.describe(), "\n")

    engine = SocialSearchEngine(dataset, EngineConfig(
        scoring=ScoringConfig(alpha=args.alpha),
        proximity=ProximityConfig(measure="shortest-path"),
    ))
    queries = generate_workload(dataset, WorkloadConfig(num_queries=args.queries,
                                                        k=args.k, seed=11))

    runner = ExperimentRunner(engine)
    report = runner.run(queries, ALGORITHMS)

    print(format_table(
        report.rows(),
        columns=["algorithm", "mean_latency_ms", "p95_latency_ms",
                 "sequential_per_query", "random_per_query",
                 "users_visited_per_query", "early_termination_rate",
                 "overlap_with_exact", "ndcg_at_k"],
        title=f"algorithm comparison (alpha={args.alpha}, k={args.k}, "
              f"{args.queries} queries)",
    ))
    print("\nreading guide: 'exact', 'ta', 'nra', 'hybrid' and 'social-first' return "
          "the same answers (overlap_with_exact = 1); they differ in how much of "
          "the index and network they touch before they can stop.")


if __name__ == "__main__":
    main()
