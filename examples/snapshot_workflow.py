"""Snapshot workflow: generate once, persist, reload, query offline.

Run with::

    python examples/snapshot_workflow.py [directory]

Demonstrates the storage layer's persistence path, which is how benchmark
corpora are shared between machines: build a synthetic dataset, save it as a
human-readable snapshot (JSON lines + metadata), reload it into a fresh
process and verify that query answers are identical.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import (
    DatasetConfig,
    SocialSearchEngine,
    WorkloadConfig,
    load_dataset,
    save_dataset,
)
from repro.workload import build_dataset, generate_workload


def main() -> None:
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path(tempfile.mkdtemp(prefix="repro-snapshot-")) / "corpus"

    # 1. Build a corpus with explicit generation parameters.
    config = DatasetConfig(
        name="offline-corpus",
        num_users=150,
        num_items=450,
        num_tags=40,
        num_actions=4000,
        homophily=0.6,
        seed=21,
    )
    dataset = build_dataset(config, holdout_fraction=0.2)
    print("built:   ", dataset.describe())

    # 2. Persist it.
    directory = save_dataset(dataset, target)
    files = sorted(path.name for path in directory.iterdir())
    print(f"saved to {directory} ({', '.join(files)})")

    # 3. Reload it (this is what a benchmark machine would do).
    reloaded = load_dataset(directory)
    print("reloaded:", reloaded.describe())

    # 4. Same queries, same answers — snapshots are faithful.
    queries = generate_workload(dataset, WorkloadConfig(num_queries=5, k=10, seed=2))
    engine_before = SocialSearchEngine(dataset)
    engine_after = SocialSearchEngine(reloaded)
    matches = 0
    for query in queries:
        before = engine_before.run(query).item_ids
        after = engine_after.run(query).item_ids
        matches += int(before == after)
    print(f"identical answers for {matches}/{len(queries)} queries")


if __name__ == "__main__":
    main()
