"""Music discovery: a hand-built scenario showing *why* friends help.

Run with::

    python examples/music_discovery.py

The corpus is tiny and fully hand-written so the effect is easy to read: a
listener (Ava) is connected to two close friends with strong jazz tastes and
to an acquaintance with pop tastes.  Globally, pop records are far more
popular than jazz records — so a non-social ranking buries the jazz albums
Ava would actually love.  The social-aware ranking surfaces them because her
*friends* endorsed them.
"""

from __future__ import annotations

from repro import (
    Dataset,
    EngineConfig,
    Item,
    ItemStore,
    ProximityConfig,
    ScoringConfig,
    SocialGraph,
    SocialSearchEngine,
    TaggingAction,
    User,
    UserStore,
)

# ----------------------------------------------------------------------------
# People: 0 Ava (the seeker), 1 Ben and 2 Carla (close jazz friends),
# 3 Dan (acquaintance), 4-9 strangers who love pop.
# ----------------------------------------------------------------------------
PEOPLE = ["ava", "ben", "carla", "dan", "eli", "fay", "gus", "hana", "ivan", "jo"]

FRIENDSHIPS = [
    (0, 1, 0.9),   # Ava - Ben: close friends
    (0, 2, 0.8),   # Ava - Carla: close friends
    (0, 3, 0.2),   # Ava - Dan: acquaintance
    (1, 2, 0.7),
    (3, 4, 0.9), (4, 5, 0.9), (5, 6, 0.9), (6, 7, 0.9), (7, 8, 0.9), (8, 9, 0.9),
]

ALBUMS = {
    100: "Kind of Blue (jazz)",
    101: "A Love Supreme (jazz)",
    102: "Mingus Ah Um (jazz)",
    200: "Chart Hits Vol. 7 (pop)",
    201: "Stadium Anthems (pop)",
    202: "Summer Bangers (pop)",
}

# Who endorsed what with the tag "music".  The pop records are endorsed by
# many strangers (globally popular); the jazz records only by Ava's friends.
ENDORSEMENTS = [
    (1, 100), (1, 101), (2, 100), (2, 102), (3, 201),
    (4, 200), (5, 200), (6, 200), (7, 200), (8, 200), (9, 200),
    (4, 201), (5, 201), (6, 201), (7, 201),
    (5, 202), (6, 202), (8, 202),
]


def build_dataset() -> Dataset:
    graph = SocialGraph.from_edges(len(PEOPLE), FRIENDSHIPS)
    users = UserStore()
    for user_id, name in enumerate(PEOPLE):
        users.add(User(user_id=user_id, name=name))
    items = ItemStore()
    for item_id, title in ALBUMS.items():
        items.add(Item(item_id=item_id, title=title))
    actions = [
        TaggingAction(user_id=user, item_id=album, tag="music", timestamp=index)
        for index, (user, album) in enumerate(ENDORSEMENTS)
    ]
    return Dataset.build(graph, actions, name="music", users=users, items=items)


def show(dataset: Dataset, result, heading: str) -> None:
    print(heading)
    for rank, scored in enumerate(result.items, start=1):
        title = dataset.items.get(scored.item_id).title
        print(f"  {rank}. {title:28s} score={scored.score:.3f} "
              f"(textual={scored.textual:.3f}, social={scored.social:.3f})")
    print()


def main() -> None:
    dataset = build_dataset()
    print(dataset.describe(), "\n")

    # A social-leaning blend: Ava trusts her friends' taste far more than raw
    # global popularity.
    config = EngineConfig(
        scoring=ScoringConfig(alpha=0.15),
        proximity=ProximityConfig(measure="shortest-path", decay=0.8),
    )
    engine = SocialSearchEngine(dataset, config)

    ava = 0
    social = engine.search(seeker=ava, tags=["music"], k=4)
    show(dataset, social, "what Ava sees (social-aware ranking, alpha=0.15):")

    plain = engine.search(seeker=ava, tags=["music"], k=4, algorithm="global")
    show(dataset, plain, "what a non-social engine shows everyone:")

    # Explain where the social score of Ava's top hit comes from.
    top = social.items[0]
    print(f"why {dataset.items.get(top.item_id).title!r} ranks first for Ava:")
    for friend, proximity in engine.proximity.iter_ranked(ava):
        endorsed = dataset.social_index.items_for(friend, "music")
        if top.item_id in endorsed:
            print(f"  - {dataset.users.get(friend).name} (proximity {proximity:.2f}) "
                  "endorsed it")
    print("\nIn the global ranking that album sits at the bottom — the pop records "
          "have three times as many endorsers — but Ava's two closest friends both "
          "endorsed it, so the social component lifts it to the top. Dan's "
          "pop-loving corner of the network only reaches Ava through the "
          "(down-weighted) textual component.")


if __name__ == "__main__":
    main()
