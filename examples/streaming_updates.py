"""Streaming updates: keep answering queries while the corpus grows.

Run with::

    python examples/streaming_updates.py

A live deployment does not rebuild its corpus nightly — bookmarks and
friendships arrive continuously.  This example replays a stream of new
tagging actions and friendships against a live dataset with
:class:`repro.storage.DatasetUpdater`, interleaving queries, and shows how
a newly endorsed item climbs into the seeker's top-k as the seeker's friends
discover it.  It also renders the item's rank trajectory as an ASCII chart.
"""

from __future__ import annotations

from repro import (
    Query,
    SocialSearchEngine,
    TaggingAction,
    WorkloadConfig,
    default_engine_config,
    delicious_like,
)
from repro.eval import ascii_line_chart
from repro.storage import DatasetUpdater
from repro.workload import generate_workload


def main() -> None:
    dataset = delicious_like(scale=0.25, seed=7)
    # A social-leaning blend makes the effect of friend endorsements visible.
    engine = SocialSearchEngine(dataset, default_engine_config(alpha=0.3))
    updater = DatasetUpdater(dataset)
    print(dataset.describe(), "\n")

    # Pick an active seeker, and a niche tag (short posting list) so a new
    # item realistically has room to climb.
    seeker = generate_workload(dataset, WorkloadConfig(num_queries=1, k=10, seed=5))[0].seeker
    tag = min(dataset.tags(), key=dataset.inverted_index.max_frequency)
    query = Query.single(seeker, tag, k=10)
    print(f"seeker {seeker} keeps asking for {[tag]} while the corpus grows\n")

    # A brand-new item that the seeker's friends will progressively endorse.
    new_item = max(dataset.items.ids()) + 1
    friends = [user for user, _ in engine.proximity.top(seeker, 12)]
    print(f"new item {new_item} will be endorsed, one friend at a time, by "
          f"{len(friends)} of the seeker's closest friends\n")

    trajectory = []
    timestamp = 1_000_000
    for step, friend in enumerate(friends, start=1):
        updater.add_actions([
            TaggingAction(user_id=friend, item_id=new_item, tag=tag,
                          timestamp=timestamp + step),
        ])
        result = engine.run(query)
        rank = result.item_ids.index(new_item) + 1 if new_item in result.item_ids else 0
        trajectory.append((step, rank))
        shown = f"rank {rank}" if rank else "not in top-10 yet"
        print(f"  after {step:2d} friend endorsement(s): {shown}")

    in_top = [(step, rank) for step, rank in trajectory if rank > 0]
    if in_top:
        print("\n" + ascii_line_chart(
            {"rank of the new item (lower is better)": in_top},
            width=40, height=8,
            title="rank trajectory as endorsements accumulate",
        ))

    # Friendships are updates too: connect the seeker directly to the item's
    # very first endorser and watch the social score tighten further.
    first_endorser = friends[-1]
    if not dataset.graph.has_edge(seeker, first_endorser):
        updater.add_friendships([(seeker, first_endorser, 0.9)])
        # The proximity cache belongs to the old graph; rebuild the engine.
        engine = SocialSearchEngine(dataset, engine.config)
        result = engine.run(query)
        rank = result.item_ids.index(new_item) + 1 if new_item in result.item_ids else 0
        print(f"\nafter also befriending user {first_endorser}: "
              f"{'rank ' + str(rank) if rank else 'still outside the top-10'}")


if __name__ == "__main__":
    main()
