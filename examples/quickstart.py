"""Quickstart: build a synthetic corpus, ask one question, read the answer.

Run with::

    python examples/quickstart.py

The example builds a small bookmark-style corpus (a stand-in for the
del.icio.us-like crawls the original evaluation used), creates a search
engine with the default configuration (social-first algorithm, shortest-path
proximity, alpha = 0.5) and answers one query for a specific seeker, printing
the ranked items together with the textual/social score breakdown.
"""

from __future__ import annotations

from repro import SocialSearchEngine, WorkloadConfig, delicious_like
from repro.workload import generate_workload


def main() -> None:
    # 1. Build a synthetic corpus (scale 0.3 keeps this instant).
    dataset = delicious_like(scale=0.3, seed=7)
    print(dataset.describe())

    # 2. Create the engine.  Everything is configurable through EngineConfig;
    #    the defaults are the paper-style setting.
    engine = SocialSearchEngine(dataset)

    # 3. Pick a realistic query: an active user asking about tags from their
    #    own profile (that is what the workload generator produces).
    query = generate_workload(dataset, WorkloadConfig(num_queries=1, k=10, seed=3))[0]
    print(f"\nseeker {query.seeker} asks for {list(query.tags)} (top-{query.k})\n")

    # 4. Run it and inspect the result.
    result = engine.run(query)
    print(engine.explain(result))

    # 5. The same query through the non-social baseline, for contrast.
    baseline = engine.run(query, algorithm="global")
    print("\nnon-social (global frequency) ranking for the same query:")
    for rank, item in enumerate(baseline.items, start=1):
        print(f"  {rank:2d}. item {item.item_id} score={item.score:.4f}")

    overlap = len(set(result.item_ids) & set(baseline.item_ids))
    print(f"\nthe two rankings share {overlap} of {query.k} items — the rest is "
          "what the seeker's friends changed.")


if __name__ == "__main__":
    main()
