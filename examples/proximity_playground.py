"""Proximity playground: how the choice of 'who counts as a friend' changes results.

Run with::

    python examples/proximity_playground.py

For one seeker in a synthetic corpus, prints the top helpers under every
registered proximity measure, then shows how the top-10 answer to the same
query shifts as the measure changes.  This is the interactive companion to
the Figure-8 experiment.
"""

from __future__ import annotations

from repro import (
    EngineConfig,
    ProximityConfig,
    ScoringConfig,
    SocialSearchEngine,
    WorkloadConfig,
    available_proximities,
    create_proximity,
    delicious_like,
)
from repro.eval import overlap_at_k
from repro.workload import generate_workload


def main() -> None:
    dataset = delicious_like(scale=0.25, seed=7)
    print(dataset.describe(), "\n")

    query = generate_workload(dataset, WorkloadConfig(num_queries=1, k=10, seed=9))[0]
    seeker = query.seeker
    print(f"seeker {seeker}, query tags {list(query.tags)}\n")

    # 1. Who are the seeker's most helpful friends under each measure?
    print("top-5 helpers per proximity measure:")
    for name in available_proximities():
        measure = create_proximity(name, dataset.graph, ProximityConfig(measure=name))
        helpers = ", ".join(f"{user}:{value:.2f}" for user, value in measure.top(seeker, 5))
        print(f"  {name:18s} {helpers}")

    # 2. How much does the final ranking change?
    print("\ntop-10 answer under each measure (overlap with shortest-path):")
    reference_ids = None
    for name in available_proximities():
        engine = SocialSearchEngine(dataset, EngineConfig(
            scoring=ScoringConfig(alpha=0.4),
            proximity=ProximityConfig(measure=name),
        ))
        result = engine.run(query)
        if reference_ids is None:
            reference_ids = result.item_ids
        overlap = overlap_at_k(result.item_ids, reference_ids, query.k)
        print(f"  {name:18s} overlap={overlap:.2f}  items={result.item_ids}")

    print("\npath-based and random-walk measures usually agree closely; the "
          "myopic one-hop measures drift further because they cannot see "
          "endorsements from friends-of-friends-of-friends.")


if __name__ == "__main__":
    main()
