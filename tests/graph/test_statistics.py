"""Tests for graph statistics."""

import pytest

from repro.graph import (
    SocialGraph,
    approximate_average_path_length,
    clustering_coefficient,
    compute_statistics,
    degree_gini,
)


class TestDegreeGini:
    def test_regular_graph_has_zero_gini(self):
        # A 4-cycle: every node has degree 2.
        graph = SocialGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0),
                                           (2, 3, 1.0), (3, 0, 1.0)])
        assert degree_gini(graph) == pytest.approx(0.0, abs=1e-9)

    def test_star_graph_is_skewed(self):
        star = SocialGraph.from_edges(5, [(0, i, 1.0) for i in range(1, 5)])
        assert degree_gini(star) > 0.3

    def test_empty_graph(self):
        assert degree_gini(SocialGraph.empty(3)) == 0.0


class TestClustering:
    def test_triangle_has_full_clustering(self):
        triangle = SocialGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])
        assert clustering_coefficient(triangle) == pytest.approx(1.0)

    def test_star_has_zero_clustering(self):
        star = SocialGraph.from_edges(5, [(0, i, 1.0) for i in range(1, 5)])
        assert clustering_coefficient(star) == pytest.approx(0.0)

    def test_sampling_is_deterministic(self, small_graph):
        a = clustering_coefficient(small_graph, sample=3, seed=5)
        b = clustering_coefficient(small_graph, sample=3, seed=5)
        assert a == b


class TestPathLength:
    def test_path_graph(self):
        path = SocialGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)])
        # Exact average over all ordered pairs is (1+2+1+1+2+1)/6 = 4/3.
        value = approximate_average_path_length(path, num_sources=3, seed=0)
        assert value == pytest.approx(4.0 / 3.0)

    def test_empty_graph_is_zero(self):
        assert approximate_average_path_length(SocialGraph.empty(0)) == 0.0


class TestComputeStatistics:
    def test_summary_fields(self, small_graph):
        stats = compute_statistics(small_graph)
        assert stats.num_users == 6
        assert stats.num_edges == 5
        assert stats.max_degree == 3
        assert stats.min_degree == 0
        assert stats.num_components == 2
        assert stats.largest_component_fraction == pytest.approx(5 / 6)
        assert 0.0 <= stats.clustering_coefficient <= 1.0

    def test_to_dict_roundtrip(self, small_graph):
        row = compute_statistics(small_graph).to_dict()
        assert row["num_users"] == 6
        assert "avg_degree" in row
