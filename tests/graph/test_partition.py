"""Tests for community detection and partition quality."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    SocialGraph,
    communities_from_labels,
    generate_graph,
    label_propagation,
    modularity,
    partition_statistics,
)


def two_triangles() -> SocialGraph:
    """Two triangles joined by a single weak bridge."""
    edges = [
        (0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0),
        (3, 4, 1.0), (4, 5, 1.0), (3, 5, 1.0),
        (2, 3, 0.1),
    ]
    return SocialGraph.from_edges(6, edges)


class TestLabelPropagation:
    def test_finds_the_two_triangles(self):
        labels = label_propagation(two_triangles())
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_isolated_node_keeps_its_own_label(self):
        graph = SocialGraph.from_edges(3, [(0, 1, 1.0)])
        labels = label_propagation(graph)
        assert labels[2] == 2

    def test_deterministic(self):
        graph = generate_graph("community", 80, 6.0, seed=3, num_communities=4)
        assert label_propagation(graph) == label_propagation(graph)

    def test_seeded_runs_are_reproducible(self):
        graph = generate_graph("community", 80, 6.0, seed=3, num_communities=4)
        first = label_propagation(graph, seed=11)
        second = label_propagation(graph, seed=11)
        assert first == second

    def test_seeded_labels_are_valid(self):
        graph = generate_graph("community", 60, 6.0, seed=5, num_communities=3)
        for seed in (0, 1, 29):
            labels = label_propagation(graph, seed=seed)
            assert len(labels) == 60
            assert all(0 <= label < 60 for label in labels)

    def test_seeded_still_separates_triangles(self):
        labels = label_propagation(two_triangles(), seed=7)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_seeded_isolated_node_keeps_label(self):
        graph = SocialGraph.from_edges(3, [(0, 1, 1.0)])
        assert label_propagation(graph, seed=3)[2] == 2

    def test_invalid_rounds_rejected(self):
        with pytest.raises(GraphError):
            label_propagation(two_triangles(), max_rounds=0)

    def test_unweighted_variant_runs(self):
        # Unweighted propagation lets the bridge label leak across (the weak
        # 0.1 tie counts as much as the strong triangle ties), so we only
        # check structural validity here; the weighted variant is the one
        # that separates the triangles.
        labels = label_propagation(two_triangles(), weighted=False)
        assert len(labels) == 6
        assert all(0 <= label < 6 for label in labels)

    def test_weighted_beats_unweighted_on_weak_bridge(self):
        graph = two_triangles()
        weighted = modularity(graph, label_propagation(graph, weighted=True))
        unweighted = modularity(graph, label_propagation(graph, weighted=False))
        assert weighted >= unweighted

    def test_recovers_planted_communities_reasonably(self):
        graph = generate_graph("community", 120, 8.0, seed=5,
                               num_communities=4, mixing=0.05)
        labels = label_propagation(graph)
        stats = partition_statistics(graph, labels)
        assert stats["modularity"] > 0.3


class TestCommunitiesAndModularity:
    def test_communities_from_labels_groups_and_orders(self):
        communities = communities_from_labels([0, 0, 0, 5, 5, 9])
        assert communities[0] == [0, 1, 2]
        assert communities[1] == [3, 4]
        assert communities[2] == [5]

    def test_modularity_good_partition_beats_bad(self):
        graph = two_triangles()
        good = label_propagation(graph)
        bad = [0, 1, 0, 1, 0, 1]
        assert modularity(graph, good) > modularity(graph, bad)

    def test_modularity_single_community_is_zero(self):
        graph = two_triangles()
        assert modularity(graph, [0] * 6) == pytest.approx(0.0)

    def test_modularity_empty_graph(self):
        assert modularity(SocialGraph.empty(3), [0, 1, 2]) == 0.0

    def test_modularity_label_length_validated(self):
        with pytest.raises(GraphError):
            modularity(two_triangles(), [0, 1])

    def test_partition_statistics_fields(self):
        graph = two_triangles()
        stats = partition_statistics(graph, label_propagation(graph))
        assert stats["num_communities"] == 2.0
        assert stats["largest_community"] == 3.0
        assert stats["mean_community_size"] == pytest.approx(3.0)
        assert -1.0 <= stats["modularity"] <= 1.0
