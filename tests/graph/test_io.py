"""Tests for graph serialisation."""

import pytest

from repro.errors import PersistenceError
from repro.graph import (
    graph_from_dict,
    graph_to_dict,
    read_edge_list,
    read_graph_json,
    write_edge_list,
    write_graph_json,
)


class TestEdgeList:
    def test_roundtrip(self, small_graph, tmp_path):
        path = tmp_path / "graph.txt"
        write_edge_list(small_graph, path)
        loaded = read_edge_list(path)
        assert loaded == small_graph

    def test_missing_header_infers_node_count(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1 0.5\n2 3 1.0\n")
        graph = read_edge_list(path)
        assert graph.num_users == 4
        assert graph.num_edges == 2

    def test_default_weight_is_one(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1\n")
        graph = read_edge_list(path)
        assert graph.edge_weight(0, 1) == pytest.approx(1.0)

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1 2 3 4\n")
        with pytest.raises(PersistenceError):
            read_edge_list(path)

    def test_non_numeric_raises(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("a b 1.0\n")
        with pytest.raises(PersistenceError):
            read_edge_list(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(PersistenceError):
            read_edge_list(tmp_path / "nope.txt")


class TestJson:
    def test_dict_roundtrip(self, small_graph):
        assert graph_from_dict(graph_to_dict(small_graph)) == small_graph

    def test_file_roundtrip(self, small_graph, tmp_path):
        path = tmp_path / "graph.json"
        write_graph_json(small_graph, path)
        assert read_graph_json(path) == small_graph

    def test_malformed_dict_raises(self):
        with pytest.raises(PersistenceError):
            graph_from_dict({"edges": [[0, 1, 1.0]]})

    def test_malformed_json_file_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(PersistenceError):
            read_graph_json(path)
