"""Tests for the synthetic social-graph generators."""

import pytest

from repro.errors import WorkloadError
from repro.graph import (
    available_generators,
    estimate_edges,
    expected_density,
    generate_graph,
)

MODELS = ["erdos-renyi", "barabasi-albert", "watts-strogatz", "forest-fire", "community"]


class TestRegistry:
    def test_all_models_registered(self):
        for model in MODELS:
            assert model in available_generators()

    def test_unknown_model_rejected(self):
        with pytest.raises(WorkloadError):
            generate_graph("no-such-model", 10, 2.0)

    def test_too_few_users_rejected(self):
        with pytest.raises(WorkloadError):
            generate_graph("erdos-renyi", 1, 2.0)

    def test_non_positive_degree_rejected(self):
        with pytest.raises(WorkloadError):
            generate_graph("erdos-renyi", 10, 0.0)


@pytest.mark.parametrize("model", MODELS)
class TestEveryModel:
    def test_node_count(self, model):
        graph = generate_graph(model, 80, 6.0, seed=1)
        assert graph.num_users == 80

    def test_deterministic_under_seed(self, model):
        a = generate_graph(model, 60, 5.0, seed=9)
        b = generate_graph(model, 60, 5.0, seed=9)
        assert a == b

    def test_different_seed_changes_graph(self, model):
        a = generate_graph(model, 60, 5.0, seed=1)
        b = generate_graph(model, 60, 5.0, seed=2)
        assert a != b

    def test_weights_in_range(self, model):
        graph = generate_graph(model, 50, 4.0, seed=3)
        for _, _, weight in graph.iter_edges():
            assert 0.0 < weight <= 1.0

    def test_average_degree_in_reasonable_band(self, model):
        target = 8.0
        graph = generate_graph(model, 150, target, seed=5)
        average = 2.0 * graph.num_edges / graph.num_users
        assert 0.3 * target <= average <= 2.5 * target

    def test_no_self_loops(self, model):
        graph = generate_graph(model, 50, 4.0, seed=7)
        for u, v, _ in graph.iter_edges():
            assert u != v


class TestModelShapes:
    def test_barabasi_albert_is_more_skewed_than_erdos_renyi(self):
        from repro.graph import degree_gini
        ba = generate_graph("barabasi-albert", 300, 8.0, seed=11)
        er = generate_graph("erdos-renyi", 300, 8.0, seed=11)
        assert degree_gini(ba) > degree_gini(er)

    def test_watts_strogatz_has_high_clustering(self):
        from repro.graph import clustering_coefficient
        ws = generate_graph("watts-strogatz", 200, 8.0, seed=13)
        er = generate_graph("erdos-renyi", 200, 8.0, seed=13)
        assert clustering_coefficient(ws, seed=1) > clustering_coefficient(er, seed=1)

    def test_helpers(self):
        assert expected_density(101, 10.0) == pytest.approx(0.1)
        assert estimate_edges(100, 10.0) == 500
        assert expected_density(1, 10.0) == 0.0
