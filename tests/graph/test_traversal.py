"""Tests for BFS, Dijkstra and component primitives."""

import math

import pytest

from repro.graph import (
    bfs_levels,
    connected_components,
    dijkstra,
    dijkstra_iter,
    distance_to_proximity,
    edge_distance,
    largest_component,
    reachable_within,
    shortest_path,
)
from repro.errors import UnknownUserError


class TestEdgeDistance:
    def test_weight_one_costs_nothing(self):
        assert edge_distance(1.0) == pytest.approx(0.0)

    def test_weaker_ties_cost_more(self):
        assert edge_distance(0.25) > edge_distance(0.5) > edge_distance(0.9)

    def test_roundtrip_with_proximity(self):
        for weight in (1.0, 0.7, 0.3, 0.05):
            assert distance_to_proximity(edge_distance(weight)) == pytest.approx(weight)


class TestBfs:
    def test_levels_from_source(self, small_graph):
        levels = bfs_levels(small_graph, 0)
        assert levels[0] == 0
        assert levels[1] == 1
        assert levels[3] == 1
        assert levels[2] == 2
        assert levels[4] == 2
        assert 5 not in levels  # isolated user is unreachable

    def test_max_hops_truncates(self, small_graph):
        levels = bfs_levels(small_graph, 0, max_hops=1)
        assert set(levels) == {0, 1, 3}

    def test_unknown_source_rejected(self, small_graph):
        with pytest.raises(UnknownUserError):
            bfs_levels(small_graph, 42)

    def test_reachable_within(self, small_graph):
        assert reachable_within(small_graph, 0, 1) == [0, 1, 3]


class TestDijkstra:
    def test_direct_edge_distance(self, small_graph):
        distances = dijkstra(small_graph, 0)
        assert distances[1] == pytest.approx(edge_distance(1.0))
        assert distances[3] == pytest.approx(edge_distance(0.8))

    def test_prefers_stronger_path(self, small_graph):
        # 0 -> 4 via 3 (0.8 * 1.0 = 0.8) beats via 1 (1.0 * 0.25 = 0.25).
        distances = dijkstra(small_graph, 0)
        assert distances[4] == pytest.approx(edge_distance(0.8) + edge_distance(1.0))

    def test_unreachable_node_missing(self, small_graph):
        assert 5 not in dijkstra(small_graph, 0)

    def test_iter_order_non_decreasing(self, small_graph):
        distances = [dist for _, dist, _ in dijkstra_iter(small_graph, 0)]
        assert distances == sorted(distances)

    def test_iter_hop_penalty_added_per_edge(self, small_graph):
        plain = {node: dist for node, dist, _ in dijkstra_iter(small_graph, 0)}
        penalised = {node: dist for node, dist, _ in
                     dijkstra_iter(small_graph, 0, hop_penalty=1.0)}
        for node in plain:
            if node == 0:
                continue
            # Every reachable node is at least one hop away, so the penalised
            # distance grows by at least one unit of penalty.
            assert penalised[node] >= plain[node] + 1.0 - 1e-9

    def test_max_hops_limits_expansion(self, small_graph):
        nodes = {node for node, _, _ in dijkstra_iter(small_graph, 0, max_hops=1)}
        assert nodes == {0, 1, 3}

    def test_max_distance_truncates(self, small_graph):
        nodes = {node for node, _, _ in dijkstra_iter(small_graph, 0, max_distance=0.1)}
        assert nodes == {0, 1}  # only the weight-1.0 edge costs < 0.1


class TestShortestPath:
    def test_path_follows_strongest_route(self, small_graph):
        distance, path = shortest_path(small_graph, 0, 4)
        assert path == [0, 3, 4]
        assert distance == pytest.approx(edge_distance(0.8) + edge_distance(1.0))

    def test_source_equals_target(self, small_graph):
        distance, path = shortest_path(small_graph, 2, 2)
        assert distance == 0.0
        assert path == [2]

    def test_disconnected_returns_infinity(self, small_graph):
        distance, path = shortest_path(small_graph, 0, 5)
        assert math.isinf(distance)
        assert path == []


class TestComponents:
    def test_components(self, small_graph):
        components = connected_components(small_graph)
        assert sorted(map(len, components), reverse=True) == [5, 1]
        assert components[0] == [0, 1, 2, 3, 4]

    def test_largest_component(self, small_graph):
        assert largest_component(small_graph) == [0, 1, 2, 3, 4]
