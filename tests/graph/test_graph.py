"""Tests for the CSR social graph and its builder."""

import numpy as np
import pytest

from repro.errors import InvalidEdgeError, UnknownUserError
from repro.graph import SocialGraph, SocialGraphBuilder


class TestSocialGraphBuilder:
    def test_build_counts_nodes_and_edges(self, small_graph):
        assert small_graph.num_users == 6
        assert small_graph.num_edges == 5

    def test_duplicate_edge_keeps_maximum_weight(self):
        builder = SocialGraphBuilder(3)
        builder.add_edge(0, 1, 0.2)
        builder.add_edge(1, 0, 0.9)
        graph = builder.build()
        assert graph.num_edges == 1
        assert graph.edge_weight(0, 1) == pytest.approx(0.9)

    def test_self_loop_rejected(self):
        builder = SocialGraphBuilder(3)
        with pytest.raises(InvalidEdgeError):
            builder.add_edge(1, 1, 0.5)

    def test_weight_out_of_range_rejected(self):
        builder = SocialGraphBuilder(3)
        with pytest.raises(InvalidEdgeError):
            builder.add_edge(0, 1, 0.0)
        with pytest.raises(InvalidEdgeError):
            builder.add_edge(0, 1, 1.5)

    def test_unknown_endpoint_rejected(self):
        builder = SocialGraphBuilder(3)
        with pytest.raises(UnknownUserError):
            builder.add_edge(0, 7, 0.5)

    def test_has_edge_before_build(self):
        builder = SocialGraphBuilder(4)
        builder.add_edge(2, 3, 0.7)
        assert builder.has_edge(3, 2)
        assert not builder.has_edge(0, 1)

    def test_negative_num_users_rejected(self):
        with pytest.raises(InvalidEdgeError):
            SocialGraphBuilder(-1)


class TestSocialGraph:
    def test_neighbours_are_symmetric(self, small_graph):
        assert 1 in small_graph.neighbour_ids(0).tolist()
        assert 0 in small_graph.neighbour_ids(1).tolist()

    def test_degree(self, small_graph):
        assert small_graph.degree(1) == 3
        assert small_graph.degree(5) == 0

    def test_degrees_array_matches_point_lookups(self, small_graph):
        degrees = small_graph.degrees()
        assert degrees.tolist() == [small_graph.degree(u) for u in range(6)]

    def test_edge_weight_absent_edge_is_zero(self, small_graph):
        assert small_graph.edge_weight(0, 5) == 0.0

    def test_edge_weight_present(self, small_graph):
        assert small_graph.edge_weight(1, 2) == pytest.approx(0.5)

    def test_has_edge(self, small_graph):
        assert small_graph.has_edge(3, 4)
        assert not small_graph.has_edge(2, 3)

    def test_validate_user_raises(self, small_graph):
        with pytest.raises(UnknownUserError):
            small_graph.validate_user(6)
        with pytest.raises(UnknownUserError):
            small_graph.validate_user(-1)

    def test_iter_edges_yields_each_edge_once(self, small_graph):
        edges = list(small_graph.iter_edges())
        assert len(edges) == small_graph.num_edges
        assert all(u < v for u, v, _ in edges)

    def test_from_edges_roundtrip_via_edge_list(self, small_graph):
        rebuilt = SocialGraph.from_edges(small_graph.num_users,
                                         small_graph.to_edge_list())
        assert rebuilt == small_graph

    def test_empty_graph(self):
        graph = SocialGraph.empty(4)
        assert graph.num_users == 4
        assert graph.num_edges == 0
        assert graph.degree(0) == 0

    def test_subgraph_induces_edges_and_remaps(self, small_graph):
        subgraph, remap = small_graph.subgraph([0, 1, 3])
        assert subgraph.num_users == 3
        # Edges 0-1 and 0-3 survive; 1-2, 1-4 and 3-4 are dropped.
        assert subgraph.num_edges == 2
        assert subgraph.has_edge(remap[0], remap[1])
        assert subgraph.has_edge(remap[0], remap[3])

    def test_subgraph_rejects_unknown_user(self, small_graph):
        with pytest.raises(UnknownUserError):
            small_graph.subgraph([0, 99])

    def test_memory_bytes_positive(self, small_graph):
        assert small_graph.memory_bytes() > 0

    def test_equality_differs_on_weights(self):
        a = SocialGraph.from_edges(2, [(0, 1, 0.5)])
        b = SocialGraph.from_edges(2, [(0, 1, 0.9)])
        assert a != b

    def test_inconsistent_csr_arrays_rejected(self):
        with pytest.raises(InvalidEdgeError):
            SocialGraph(2, np.array([0, 1]), np.zeros(1, dtype=np.int64),
                        np.zeros(1))
