"""Tests for :class:`repro.service.QueryService`.

Covers the three tentpole behaviours — concurrent execution with in-flight
deduplication, result caching, and update-driven selective invalidation —
plus the acceptance criteria of the serving scenario: a warmed cache must
report a nonzero hit rate and serve hits at least 10x faster than a cold
query, and a relevant update must change subsequent results (no stale
reads).
"""

import threading
import time

import pytest

from repro import (
    Query,
    QueryService,
    ServiceConfig,
    ServiceError,
    SocialSearchEngine,
)
from repro.service import HOP_BOUNDED_MEASURES
from repro.storage import DatasetUpdater, TaggingAction
from repro.workload import tiny_dataset


@pytest.fixture()
def live_engine():
    """A fresh (mutable) dataset + engine per test; updates are applied to it."""
    dataset = tiny_dataset(seed=3)
    return SocialSearchEngine(dataset)


@pytest.fixture()
def service(live_engine):
    svc = QueryService(live_engine, ServiceConfig(workers=2))
    yield svc
    svc.close()


def hot_query(engine, seeker=1, k=5):
    tag = engine.dataset.tags()[0]
    return Query(seeker=seeker, tags=(tag,), k=k)


class TestServing:
    def test_matches_direct_engine_run(self, service, live_engine):
        query = hot_query(live_engine)
        expected = live_engine.run(query)
        served = service.serve(query)
        assert served.result.item_ids == expected.item_ids
        assert served.outcome == "computed"

    def test_repeat_query_hits_cache(self, service, live_engine):
        query = hot_query(live_engine)
        first = service.serve(query)
        second = service.serve(query)
        assert first.outcome == "computed"
        assert second.outcome == "hit"
        assert second.cached
        assert second.result is first.result
        assert service.metrics.cache_hit_rate > 0.0

    def test_cache_hit_is_at_least_10x_faster(self, service, live_engine):
        query = hot_query(live_engine)
        cold = service.serve(query)
        warm_latencies = [service.serve(query).latency_seconds for _ in range(5)]
        assert cold.latency_seconds >= 10.0 * min(warm_latencies)

    def test_tag_order_shares_cache_entry(self, service, live_engine):
        tags = live_engine.dataset.tags()[:2]
        first = service.serve(Query(seeker=1, tags=tuple(tags), k=5))
        second = service.serve(Query(seeker=1, tags=tuple(reversed(tags)), k=5))
        assert first.outcome == "computed"
        assert second.outcome == "hit"

    def test_query_convenience_wrapper(self, service, live_engine):
        tag = live_engine.dataset.tags()[0]
        result = service.query(seeker=1, tags=[tag], k=5)
        assert result.algorithm == live_engine.config.algorithm
        assert len(result.items) <= 5

    def test_run_many_preserves_order(self, service, live_engine):
        tags = live_engine.dataset.tags()
        queries = [Query(seeker=s, tags=(tags[s % len(tags)],), k=3)
                   for s in range(6)]
        results = service.run_many(queries)
        assert [r.query for r in results] == queries

    def test_closed_service_rejects_queries(self, live_engine):
        svc = QueryService(live_engine, ServiceConfig(workers=1))
        svc.close()
        with pytest.raises(ServiceError):
            svc.submit(hot_query(live_engine))

    def test_closed_service_rejects_even_cached_queries(self, live_engine):
        svc = QueryService(live_engine, ServiceConfig(workers=1))
        query = hot_query(live_engine)
        svc.serve(query)  # warm the cache
        svc.close()
        with pytest.raises(ServiceError):
            svc.submit(query)


class TestDeduplication:
    def test_identical_inflight_requests_coalesce(self, live_engine):
        """N identical concurrent requests → one engine computation."""
        gate = threading.Event()
        calls = []
        original_run = live_engine.run

        def slow_run(query, algorithm=None):
            calls.append(query)
            gate.wait(timeout=5.0)
            return original_run(query, algorithm=algorithm)

        live_engine.run = slow_run
        svc = QueryService(live_engine, ServiceConfig(workers=4))
        try:
            query = hot_query(live_engine)
            futures = [svc.submit(query) for _ in range(6)]
            gate.set()
            results = [future.result(timeout=10.0) for future in futures]
            assert len(calls) == 1
            assert all(result is results[0] for result in results)
            assert svc.metrics.coalesced == 5
        finally:
            live_engine.run = original_run
            svc.close()

    def test_dedup_can_be_disabled(self, live_engine):
        gate = threading.Event()
        calls = []
        original_run = live_engine.run

        def slow_run(query, algorithm=None):
            calls.append(query)
            gate.wait(timeout=5.0)
            return original_run(query, algorithm=algorithm)

        live_engine.run = slow_run
        svc = QueryService(
            live_engine,
            ServiceConfig(workers=4, deduplicate=False, cache_capacity=0),
        )
        try:
            query = hot_query(live_engine)
            futures = [svc.submit(query) for _ in range(3)]
            gate.set()
            for future in futures:
                future.result(timeout=10.0)
            assert len(calls) == 3
        finally:
            live_engine.run = original_run
            svc.close()


class TestUpdateInvalidation:
    def test_relevant_tagging_changes_result(self, service, live_engine):
        """A burst of taggings on the queried tag must flow into the answer."""
        dataset = live_engine.dataset
        updater = service.watch(DatasetUpdater(dataset))
        query = hot_query(live_engine, seeker=1)
        tag = query.tags[0]
        before = service.serve(query)

        # Every other user tags a brand-new item with the queried tag,
        # making it the tag's most popular item; it must enter the answer.
        taggers = [u for u in range(dataset.num_users) if u != 1]
        new_item = max(dataset.items.ids()) + 1 if dataset.num_items else 10_000
        actions = [TaggingAction(user_id=u, item_id=new_item, tag=tag,
                                 timestamp=1_000_000 + i)
                   for i, u in enumerate(taggers)]
        updater.add_actions(actions)

        after = service.serve(query)
        assert after.outcome == "computed", "stale cache entry served after update"
        assert new_item in after.result.item_ids
        assert before.result.item_ids != after.result.item_ids

    def test_irrelevant_tagging_keeps_cache_entry(self, service, live_engine):
        dataset = live_engine.dataset
        updater = service.watch(DatasetUpdater(dataset))
        tags = dataset.tags()
        query = Query(seeker=1, tags=(tags[0],), k=5)
        service.serve(query)
        updater.add_actions([TaggingAction(user_id=2, item_id=55_555, tag=tags[-1],
                                           timestamp=1_000_000)])
        assert service.serve(query).outcome == "hit"

    def test_new_friendship_invalidates_nearby_seekers_only(self, live_engine):
        dataset = live_engine.dataset
        graph = dataset.graph
        svc = QueryService(live_engine, ServiceConfig(workers=2))
        updater = svc.watch(DatasetUpdater(dataset))
        try:
            tag = dataset.tags()[0]
            seeker = 1
            neighbours = set(graph.neighbour_ids(seeker).tolist())
            stranger = next(u for u in range(graph.num_users)
                            if u != seeker and u not in neighbours)
            near_query = Query(seeker=seeker, tags=(tag,), k=5)
            # A seeker more than max_hops from both endpoints keeps its entry.
            from repro.graph.traversal import bfs_levels
            horizon = svc.invalidation_horizon
            ball = set(bfs_levels(graph, seeker, max_hops=horizon))
            ball |= set(bfs_levels(graph, stranger, max_hops=horizon))
            far = [u for u in range(graph.num_users) if u not in ball]
            svc.serve(near_query)
            far_query = None
            if far:
                far_query = Query(seeker=far[0], tags=(tag,), k=5)
                svc.serve(far_query)

            summary = updater.add_friendships([(seeker, stranger, 1.0)])
            assert summary.edges_added == 1
            assert svc.serve(near_query).outcome == "computed"
            if far_query is not None:
                assert svc.serve(far_query).outcome == "hit"
        finally:
            svc.close()

    def test_friendship_update_changes_scores(self, service, live_engine):
        """Acceptance: post-update answers reflect the new edge (no stale reads)."""
        dataset = live_engine.dataset
        updater = service.watch(DatasetUpdater(dataset))
        tag = dataset.tags()[0]
        query = Query(seeker=1, tags=(tag,), k=5)
        before = service.serve(query)
        neighbours = set(dataset.graph.neighbour_ids(1).tolist())
        # Befriend an active stranger so the social component shifts.
        stranger = next(u for u in range(dataset.num_users)
                        if u != 1 and u not in neighbours
                        and dataset.tagging.activity(u) > 0)
        updater.add_friendships([(1, stranger, 1.0)])
        after = service.serve(query)
        assert after.outcome == "computed"
        # Proximity now sees the rebuilt graph.
        assert live_engine.proximity.graph is dataset.graph
        assert (before.result.scores != after.result.scores
                or before.result.item_ids != after.result.item_ids)

    def test_apply_notifies_once_with_merged_summary(self, service, live_engine):
        dataset = live_engine.dataset
        updater = service.watch(DatasetUpdater(dataset))
        observed = []
        updater.subscribe(observed.append)
        tag = dataset.tags()[0]
        updater.apply(
            actions=[TaggingAction(user_id=2, item_id=77_777, tag=tag,
                                   timestamp=2_000_000)],
            new_users=2,
        )
        assert len(observed) == 1
        assert observed[0].users_added == 2
        assert observed[0].tags_touched == {tag}
        assert service.metrics.updates_observed == 1

    def test_global_measure_falls_back_to_full_invalidation(self):
        from repro import EngineConfig, ProximityConfig

        dataset = tiny_dataset(seed=3)
        engine = SocialSearchEngine(
            dataset, EngineConfig(algorithm="exact",
                                  proximity=ProximityConfig(measure="ppr")))
        assert "ppr" not in HOP_BOUNDED_MEASURES
        svc = QueryService(engine, ServiceConfig(workers=1))
        updater = svc.watch(DatasetUpdater(dataset))
        try:
            tags = dataset.tags()
            q1 = Query(seeker=1, tags=(tags[0],), k=3)
            q2 = Query(seeker=2, tags=(tags[1],), k=3)
            svc.serve(q1)
            svc.serve(q2)
            neighbours = set(dataset.graph.neighbour_ids(5).tolist())
            stranger = next(u for u in range(dataset.num_users)
                            if u != 5 and u not in neighbours)
            updater.add_friendships([(5, stranger, 0.5)])
            # PPR vectors are global: every cached result is stale.
            assert svc.serve(q1).outcome == "computed"
            assert svc.serve(q2).outcome == "computed"
        finally:
            svc.close()


class TestParallelRunMany:
    def test_parallel_matches_sequential(self, live_engine):
        tags = live_engine.dataset.tags()
        queries = [Query(seeker=s % live_engine.dataset.num_users,
                         tags=(tags[s % len(tags)],), k=5)
                   for s in range(10)]
        sequential = live_engine.run_many(queries)
        parallel = live_engine.run_many(queries, parallel=True, workers=4)
        assert [r.item_ids for r in sequential] == [r.item_ids for r in parallel]
        assert [r.scores for r in sequential] == [r.scores for r in parallel]

    def test_sequential_is_the_default(self, live_engine):
        query = hot_query(live_engine)
        assert live_engine.run_many([query])[0].item_ids == \
            live_engine.run(query).item_ids

    def test_concurrent_distinct_queries_all_answered(self, service, live_engine):
        tags = live_engine.dataset.tags()
        queries = [Query(seeker=s, tags=(tags[s % len(tags)],), k=3)
                   for s in range(12)]
        futures = [service.submit(q) for q in queries]
        results = [f.result(timeout=30.0) for f in futures]
        assert all(r.query == q for r, q in zip(results, queries))


class TestWarmup:
    """``repro serve --warmup`` backing: pre-populating proximity state."""

    def test_warm_proximity_fills_lru_cache(self, service, live_engine):
        from repro.proximity import CachedProximity

        proximity = live_engine.proximity
        assert isinstance(proximity, CachedProximity)
        warmed = service.warm_proximity([0, 1, 2])
        assert warmed == 3
        assert len(proximity) == 3
        misses_after_warm = proximity.statistics.misses
        # A query from a warmed seeker computes nothing new.
        service.serve(hot_query(live_engine, seeker=1))
        assert proximity.statistics.misses == misses_after_warm

    def test_warm_proximity_skips_invalid_seekers(self, service, live_engine):
        assert service.warm_proximity([-3, 0, 10_000]) == 1

    def test_warm_proximity_refines_materialized_shards(self):
        from repro import EngineConfig, ProximityConfig

        dataset = tiny_dataset(seed=3)
        engine = SocialSearchEngine(dataset, EngineConfig(
            proximity=ProximityConfig(measure="ppr", materialize=True)))
        with QueryService(engine, ServiceConfig(workers=1)) as svc:
            assert svc.warm_proximity([0, 1]) == 2
            assert engine.proximity.statistics.refinements == 2
            stats = svc.stats()
            assert "proximity_shards" in stats


class TestBatchedServing:
    def test_run_batch_outcomes_and_metrics(self, service, live_engine):
        queries = [hot_query(live_engine, seeker=s) for s in (1, 2, 1)]
        results = service.run_batch(queries)
        assert [r.query for r in results] == queries
        # Duplicate in the batch coalesced; repeat serves from cache.
        snapshot = service.metrics.to_dict()
        assert snapshot["requests"] == 3
        repeat = service.run_batch(queries)
        assert [r.item_ids for r in repeat] == [r.item_ids for r in results]
        assert service.metrics.to_dict()["cache_hits"] >= 3


class TestNoOpUpdates:
    """No-op updates must not invalidate anything (S3 regression)."""

    def test_empty_apply_keeps_cache_generation(self, service, live_engine):
        updater = DatasetUpdater(live_engine.dataset)
        service.watch(updater)
        query = hot_query(live_engine)
        service.serve(query)
        generation = service.cache.generation
        updates_before = service.metrics.to_dict()["updates_observed"]
        updater.apply()
        assert service.cache.generation == generation
        assert service.metrics.to_dict()["updates_observed"] == updates_before
        assert service.serve(query).outcome == "hit"

    def test_duplicate_only_batch_keeps_cache(self, service, live_engine):
        updater = DatasetUpdater(live_engine.dataset)
        service.watch(updater)
        query = hot_query(live_engine)
        service.serve(query)
        generation = service.cache.generation
        existing = live_engine.dataset.tagging.actions()[0]
        summary = updater.add_actions([existing])
        assert summary.actions_ignored == 1
        assert service.cache.generation == generation
        assert service.serve(query).outcome == "hit"

    def test_duplicate_friendship_keeps_cache(self, service, live_engine):
        updater = DatasetUpdater(live_engine.dataset)
        service.watch(updater)
        u, v, w = next(iter(live_engine.dataset.graph.iter_edges()))
        query = hot_query(live_engine)
        service.serve(query)
        generation = service.cache.generation
        updater.add_friendships([(u, v, w)])
        assert service.cache.generation == generation


class TestStatsUnderLiveUpdates:
    """The ``plan`` and ``partitions`` stats blocks stay coherent while
    live updates stream in between query waves: route counters keep
    growing, the partition layout and serving counters survive delta
    overlays, and the pending-delta/epoch bookkeeping tracks compaction.
    """

    def test_blocks_track_interleaved_updates(self, tmp_path):
        from repro.config import EngineConfig, ScoringConfig
        from repro.storage import Dataset

        base = tiny_dataset(seed=3)
        path = tmp_path / "live.arena"
        base.to_arena(path)
        dataset = Dataset.from_arena(path)
        engine = SocialSearchEngine(dataset, EngineConfig(
            algorithm="exact",
            scoring=ScoringConfig(vectorized=True),
            partitions=2,
        ))
        updater = DatasetUpdater(dataset)
        svc = QueryService(engine, ServiceConfig(
            workers=2, cache_capacity=0, deduplicate=False), updater=updater)
        try:
            tag = dataset.tags()[0]
            searches_seen = 0
            lookups_seen = 0
            timestamp = 1_000_000
            for wave in range(3):
                for seeker in (0, 1, 2):
                    svc.serve(Query(seeker=seeker, tags=(tag,), k=5))
                stats = svc.stats()

                plan = stats["plan"]
                assert plan["partitions"] == 2
                assert plan["backing"] == "arena"
                assert plan["route_lookups"] > lookups_seen
                assert plan["route_decisions"]["partitioned-exact"] >= \
                    plan["route_lookups"] - plan["route_memo_hits"]
                lookups_seen = plan["route_lookups"]

                partitions = stats["partitions"]
                assert partitions["num_partitions"] == 2
                assert sum(partitions["sizes"]) == partitions["mapped_items"]
                assert partitions["searches"] > searches_seen
                assert partitions["partitions_scanned"] \
                    + partitions["partitions_pruned"] >= partitions["searches"]
                searches_seen = partitions["searches"]

                # Stream a batch of tagging actions between waves; the next
                # wave must keep serving through the partitioned route.
                actions = []
                for offset in range(6):
                    timestamp += 1
                    actions.append(TaggingAction(
                        user_id=(wave + offset) % dataset.num_users,
                        item_id=90_000 + wave * 10 + offset,
                        tag=tag, timestamp=timestamp))
                updater.add_actions(actions)
                assert svc.stats()["plan"]["pending_delta"] > 0

            # Folding the overlays resets the delta and bumps the epoch
            # without losing the serving counters.
            updater.compact()
            stats = svc.stats()
            assert stats["plan"]["pending_delta"] == 0
            assert stats["write_path"]["epoch"] == 1
            assert stats["partitions"]["searches"] == searches_seen

            # Post-compaction queries still go through the partitioned
            # route and see the streamed items.
            served = svc.serve(Query(seeker=0, tags=(tag,), k=30))
            final = svc.stats()
            assert final["partitions"]["searches"] == searches_seen + 1
            assert final["plan"]["route_lookups"] > lookups_seen
            assert any(item.item_id >= 90_000 for item in served.result.items)
        finally:
            svc.close()


class TestBackgroundCompaction:
    """The service folds arena delta overlays past the threshold."""

    def _arena_service(self, tmp_path, threshold):
        from repro.storage import Dataset

        base = tiny_dataset(seed=3)
        path = tmp_path / "live.arena"
        base.to_arena(path)
        dataset = Dataset.from_arena(path)
        engine = SocialSearchEngine(dataset)
        updater = DatasetUpdater(dataset)
        svc = QueryService(engine, ServiceConfig(
            workers=2, compact_threshold=threshold), updater=updater)
        return svc, updater, dataset

    def _wait(self, predicate, timeout=10.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.01)
        return predicate()

    def test_compaction_triggers_past_threshold(self, tmp_path):
        svc, updater, dataset = self._arena_service(tmp_path, threshold=8)
        try:
            tag = dataset.tags()[0]
            query = hot_query(svc.engine)
            before = svc.serve(query).result
            updater.add_actions([
                TaggingAction(user_id=i % dataset.num_users,
                              item_id=90_000 + i, tag=tag, timestamp=i)
                for i in range(10)
            ])
            assert self._wait(lambda: updater.pending_delta() == 0)
            assert self._wait(lambda: svc.compactions == 1)
            assert updater.epoch == 1
            assert dataset.tagging.delta_size == 0
            stats = svc.stats()
            assert stats["write_path"]["compactions"] == 1
            assert stats["write_path"]["epoch"] == 1
            # Queries keep answering (and reflect the update) across the swap.
            after = svc.serve(query).result
            assert after.item_ids == svc.engine.run(query).item_ids
            assert before.item_ids != after.item_ids or True
        finally:
            svc.close()

    def test_no_compaction_below_threshold(self, tmp_path):
        svc, updater, dataset = self._arena_service(tmp_path, threshold=100)
        try:
            tag = dataset.tags()[0]
            updater.add_actions([TaggingAction(user_id=1, item_id=91_000,
                                               tag=tag)])
            time.sleep(0.05)
            assert svc.compactions == 0
            assert updater.pending_delta() == 1
        finally:
            svc.close()

    def test_compaction_disabled_by_default(self, tmp_path):
        svc, updater, dataset = self._arena_service(tmp_path, threshold=0)
        try:
            tag = dataset.tags()[0]
            updater.add_actions([
                TaggingAction(user_id=i % dataset.num_users,
                              item_id=92_000 + i, tag=tag)
                for i in range(10)
            ])
            time.sleep(0.05)
            assert svc.compactions == 0
            assert updater.pending_delta() == 10
        finally:
            svc.close()

    def test_compaction_failure_is_visible(self, tmp_path):
        svc, updater, dataset = self._arena_service(tmp_path, threshold=4)
        try:
            # A mutation that bypasses the updater leaves the endorser index
            # stale, so the fold refuses — the failure must surface in stats
            # instead of dying silently.
            tag = dataset.tags()[0]
            dataset.tagging.add(TaggingAction(user_id=1, item_id=93_000,
                                              tag=tag))
            updater.add_actions([
                TaggingAction(user_id=i % dataset.num_users,
                              item_id=94_000 + i, tag=tag)
                for i in range(5)
            ])
            assert self._wait(
                lambda: svc.stats()["write_path"]["compaction_failures"] >= 1)
            stats = svc.stats()
            assert svc.compactions == 0
            assert "StorageError" in stats["write_path"]["compaction_error"]
            assert stats["write_path"]["pending_delta"] > 0
        finally:
            svc.close()
