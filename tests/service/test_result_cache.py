"""Tests for the serving-layer result cache (LRU + TTL + invalidation)."""

import pytest

from repro.core.query import Query, QueryResult, ScoredItem
from repro.service import CacheKey, ResultCache


def make_result(seeker=0, tags=("jazz",), k=3, algorithm="social-first"):
    query = Query(seeker=seeker, tags=tuple(tags), k=k)
    items = [ScoredItem(item_id=i, score=1.0 - i / 10.0) for i in range(k)]
    return QueryResult(query=query, items=items, algorithm=algorithm)


def key_of(result):
    return CacheKey.for_query(result.query, result.algorithm)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCacheKey:
    def test_tag_order_is_normalised(self):
        a = CacheKey.for_query(Query(seeker=1, tags=("b", "a"), k=5), "ta")
        b = CacheKey.for_query(Query(seeker=1, tags=("a", "b"), k=5), "ta")
        assert a == b

    def test_distinct_requests_distinct_keys(self):
        base = Query(seeker=1, tags=("a",), k=5)
        assert CacheKey.for_query(base, "ta") != CacheKey.for_query(base, "nra")
        assert (CacheKey.for_query(Query(seeker=2, tags=("a",), k=5), "ta")
                != CacheKey.for_query(base, "ta"))
        assert (CacheKey.for_query(Query(seeker=1, tags=("a",), k=6), "ta")
                != CacheKey.for_query(base, "ta"))


class TestGetPut:
    def test_roundtrip_and_counters(self):
        cache = ResultCache(capacity=4)
        result = make_result()
        key = key_of(result)
        assert cache.get(key) is None
        cache.put(key, result)
        assert cache.get(key) is result
        assert cache.statistics.hits == 1
        assert cache.statistics.misses == 1
        assert cache.statistics.hit_rate == 0.5

    def test_capacity_zero_disables_cache(self):
        cache = ResultCache(capacity=0)
        result = make_result()
        cache.put(key_of(result), result)
        assert cache.get(key_of(result)) is None
        assert len(cache) == 0


class TestLRU:
    def test_least_recently_used_is_evicted(self):
        cache = ResultCache(capacity=2)
        a, b, c = (make_result(seeker=s) for s in (0, 1, 2))
        cache.put(key_of(a), a)
        cache.put(key_of(b), b)
        cache.get(key_of(a))  # refresh a → b is now LRU
        cache.put(key_of(c), c)
        assert cache.get(key_of(a)) is a
        assert cache.get(key_of(b)) is None
        assert cache.get(key_of(c)) is c
        assert cache.statistics.evictions == 1

    def test_eviction_cleans_secondary_indexes(self):
        cache = ResultCache(capacity=1)
        a = make_result(seeker=0, tags=("jazz",))
        b = make_result(seeker=1, tags=("rock",))
        cache.put(key_of(a), a)
        cache.put(key_of(b), b)  # evicts a
        assert cache.invalidate_tags(["jazz"]) == 0
        assert cache.invalidate_seekers([0]) == 0


class TestTTL:
    def test_entry_expires_after_ttl(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl_seconds=10.0, clock=clock)
        result = make_result()
        cache.put(key_of(result), result)
        clock.advance(9.9)
        assert cache.get(key_of(result)) is result
        clock.advance(0.2)
        assert cache.get(key_of(result)) is None
        assert cache.statistics.expirations == 1

    def test_zero_ttl_never_expires(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl_seconds=0.0, clock=clock)
        result = make_result()
        cache.put(key_of(result), result)
        clock.advance(1e9)
        assert cache.get(key_of(result)) is result


class TestInvalidation:
    def test_invalidate_by_tag_is_selective(self):
        cache = ResultCache(capacity=8)
        jazz = make_result(seeker=0, tags=("jazz", "vinyl"))
        rock = make_result(seeker=0, tags=("rock",))
        cache.put(key_of(jazz), jazz)
        cache.put(key_of(rock), rock)
        assert cache.invalidate_tags(["jazz"]) == 1
        assert cache.get(key_of(jazz)) is None
        assert cache.get(key_of(rock)) is rock
        assert cache.statistics.invalidations == 1

    def test_invalidate_by_seeker_is_selective(self):
        cache = ResultCache(capacity=8)
        mine = make_result(seeker=3)
        theirs = make_result(seeker=4)
        cache.put(key_of(mine), mine)
        cache.put(key_of(theirs), theirs)
        assert cache.invalidate_seekers([3]) == 1
        assert cache.get(key_of(mine)) is None
        assert cache.get(key_of(theirs)) is theirs

    def test_unknown_tag_or_seeker_is_noop(self):
        cache = ResultCache(capacity=8)
        result = make_result()
        cache.put(key_of(result), result)
        assert cache.invalidate_tags(["nope"]) == 0
        assert cache.invalidate_seekers([999]) == 0
        assert cache.get(key_of(result)) is result

    def test_clear_empties_everything(self):
        cache = ResultCache(capacity=8)
        for seeker in range(3):
            result = make_result(seeker=seeker)
            cache.put(key_of(result), result)
        assert cache.clear() == 3
        assert len(cache) == 0
        assert cache.statistics.invalidations == 3


class TestGenerationGuard:
    """Puts from computations that straddle an invalidation must be dropped."""

    def test_put_with_stale_generation_is_dropped(self):
        cache = ResultCache(capacity=8)
        result = make_result(seeker=0, tags=("jazz",))
        generation = cache.generation
        # An invalidation event lands while the result is being computed.
        cache.invalidate_tags(["jazz"])
        cache.put(key_of(result), result, generation=generation)
        assert cache.get(key_of(result)) is None

    def test_put_with_current_generation_is_stored(self):
        cache = ResultCache(capacity=8)
        result = make_result()
        cache.put(key_of(result), result, generation=cache.generation)
        assert cache.get(key_of(result)) is result

    def test_every_invalidation_kind_bumps_generation(self):
        cache = ResultCache(capacity=8)
        start = cache.generation
        cache.invalidate_tags(["x"])
        cache.invalidate_seekers([1])
        cache.clear()
        assert cache.generation == start + 3


class TestExpirySweep:
    """Expired entries must free their capacity on put, not on a later get."""

    def test_expired_entries_swept_on_put(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl_seconds=10.0, clock=clock)
        stale = [make_result(seeker=s) for s in (1, 2, 3)]
        for result in stale:
            cache.put(key_of(result), result)
        clock.advance(11.0)
        fresh = make_result(seeker=9)
        cache.put(key_of(fresh), fresh)
        # The dead entries are gone without any get having touched them.
        assert len(cache) == 1
        assert cache.statistics.expirations == 3
        assert cache.statistics.evictions == 0

    def test_expired_entries_do_not_evict_live_ones(self):
        clock = FakeClock()
        cache = ResultCache(capacity=2, ttl_seconds=10.0, clock=clock)
        dead = make_result(seeker=1)
        cache.put(key_of(dead), dead)
        clock.advance(11.0)
        live_a = make_result(seeker=2)
        live_b = make_result(seeker=3)
        cache.put(key_of(live_a), live_a)
        cache.put(key_of(live_b), live_b)
        # Capacity pressure resolves against the dead entry, not live_a.
        assert cache.get(key_of(live_a)) is live_a
        assert cache.get(key_of(live_b)) is live_b
        assert cache.statistics.evictions == 0
        assert cache.statistics.expirations == 1

    def test_sweep_stops_at_first_live_entry(self):
        clock = FakeClock()
        cache = ResultCache(capacity=8, ttl_seconds=10.0, clock=clock)
        old = make_result(seeker=1)
        cache.put(key_of(old), old)
        clock.advance(6.0)
        young = make_result(seeker=2)
        cache.put(key_of(young), young)
        clock.advance(5.0)  # old (11s) dead, young (5s) alive
        cache.put(key_of(make_result(seeker=3)), make_result(seeker=3))
        assert cache.get(key_of(old)) is None
        assert cache.get(key_of(young)) is young
        assert cache.statistics.expirations == 1


class TestOverwritePromotion:
    """An overwriting put must refresh the key's LRU (and expiry) position."""

    def test_overwrite_moves_key_to_back_of_lru(self):
        cache = ResultCache(capacity=2)
        a, b = make_result(seeker=1), make_result(seeker=2)
        cache.put(key_of(a), a)
        cache.put(key_of(b), b)
        refreshed = make_result(seeker=1)
        cache.put(key_of(refreshed), refreshed)  # overwrite: promote a
        c = make_result(seeker=3)
        cache.put(key_of(c), c)  # evicts b, the true LRU
        assert cache.get(key_of(refreshed)) is refreshed
        assert cache.get(key_of(b)) is None
        assert cache.statistics.evictions == 1

    def test_overwrite_refreshes_ttl(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl_seconds=10.0, clock=clock)
        first = make_result(seeker=1)
        cache.put(key_of(first), first)
        clock.advance(8.0)
        second = make_result(seeker=1)
        cache.put(key_of(second), second)
        clock.advance(8.0)  # 16s after first, 8s after overwrite
        assert cache.get(key_of(second)) is second
        assert cache.statistics.expirations == 0
