"""Tests for the serving-layer result cache (LRU + TTL + invalidation)."""

import pytest

from repro.core.query import Query, QueryResult, ScoredItem
from repro.service import CacheKey, ResultCache


def make_result(seeker=0, tags=("jazz",), k=3, algorithm="social-first"):
    query = Query(seeker=seeker, tags=tuple(tags), k=k)
    items = [ScoredItem(item_id=i, score=1.0 - i / 10.0) for i in range(k)]
    return QueryResult(query=query, items=items, algorithm=algorithm)


def key_of(result):
    return CacheKey.for_query(result.query, result.algorithm)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCacheKey:
    def test_tag_order_is_normalised(self):
        a = CacheKey.for_query(Query(seeker=1, tags=("b", "a"), k=5), "ta")
        b = CacheKey.for_query(Query(seeker=1, tags=("a", "b"), k=5), "ta")
        assert a == b

    def test_distinct_requests_distinct_keys(self):
        base = Query(seeker=1, tags=("a",), k=5)
        assert CacheKey.for_query(base, "ta") != CacheKey.for_query(base, "nra")
        assert (CacheKey.for_query(Query(seeker=2, tags=("a",), k=5), "ta")
                != CacheKey.for_query(base, "ta"))
        assert (CacheKey.for_query(Query(seeker=1, tags=("a",), k=6), "ta")
                != CacheKey.for_query(base, "ta"))


class TestGetPut:
    def test_roundtrip_and_counters(self):
        cache = ResultCache(capacity=4)
        result = make_result()
        key = key_of(result)
        assert cache.get(key) is None
        cache.put(key, result)
        assert cache.get(key) is result
        assert cache.statistics.hits == 1
        assert cache.statistics.misses == 1
        assert cache.statistics.hit_rate == 0.5

    def test_capacity_zero_disables_cache(self):
        cache = ResultCache(capacity=0)
        result = make_result()
        cache.put(key_of(result), result)
        assert cache.get(key_of(result)) is None
        assert len(cache) == 0


class TestLRU:
    def test_least_recently_used_is_evicted(self):
        cache = ResultCache(capacity=2)
        a, b, c = (make_result(seeker=s) for s in (0, 1, 2))
        cache.put(key_of(a), a)
        cache.put(key_of(b), b)
        cache.get(key_of(a))  # refresh a → b is now LRU
        cache.put(key_of(c), c)
        assert cache.get(key_of(a)) is a
        assert cache.get(key_of(b)) is None
        assert cache.get(key_of(c)) is c
        assert cache.statistics.evictions == 1

    def test_eviction_cleans_secondary_indexes(self):
        cache = ResultCache(capacity=1)
        a = make_result(seeker=0, tags=("jazz",))
        b = make_result(seeker=1, tags=("rock",))
        cache.put(key_of(a), a)
        cache.put(key_of(b), b)  # evicts a
        assert cache.invalidate_tags(["jazz"]) == 0
        assert cache.invalidate_seekers([0]) == 0


class TestTTL:
    def test_entry_expires_after_ttl(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl_seconds=10.0, clock=clock)
        result = make_result()
        cache.put(key_of(result), result)
        clock.advance(9.9)
        assert cache.get(key_of(result)) is result
        clock.advance(0.2)
        assert cache.get(key_of(result)) is None
        assert cache.statistics.expirations == 1

    def test_zero_ttl_never_expires(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl_seconds=0.0, clock=clock)
        result = make_result()
        cache.put(key_of(result), result)
        clock.advance(1e9)
        assert cache.get(key_of(result)) is result


class TestInvalidation:
    def test_invalidate_by_tag_is_selective(self):
        cache = ResultCache(capacity=8)
        jazz = make_result(seeker=0, tags=("jazz", "vinyl"))
        rock = make_result(seeker=0, tags=("rock",))
        cache.put(key_of(jazz), jazz)
        cache.put(key_of(rock), rock)
        assert cache.invalidate_tags(["jazz"]) == 1
        assert cache.get(key_of(jazz)) is None
        assert cache.get(key_of(rock)) is rock
        assert cache.statistics.invalidations == 1

    def test_invalidate_by_seeker_is_selective(self):
        cache = ResultCache(capacity=8)
        mine = make_result(seeker=3)
        theirs = make_result(seeker=4)
        cache.put(key_of(mine), mine)
        cache.put(key_of(theirs), theirs)
        assert cache.invalidate_seekers([3]) == 1
        assert cache.get(key_of(mine)) is None
        assert cache.get(key_of(theirs)) is theirs

    def test_unknown_tag_or_seeker_is_noop(self):
        cache = ResultCache(capacity=8)
        result = make_result()
        cache.put(key_of(result), result)
        assert cache.invalidate_tags(["nope"]) == 0
        assert cache.invalidate_seekers([999]) == 0
        assert cache.get(key_of(result)) is result

    def test_clear_empties_everything(self):
        cache = ResultCache(capacity=8)
        for seeker in range(3):
            result = make_result(seeker=seeker)
            cache.put(key_of(result), result)
        assert cache.clear() == 3
        assert len(cache) == 0
        assert cache.statistics.invalidations == 3


class TestGenerationGuard:
    """Puts from computations that straddle an invalidation must be dropped."""

    def test_put_with_stale_generation_is_dropped(self):
        cache = ResultCache(capacity=8)
        result = make_result(seeker=0, tags=("jazz",))
        generation = cache.generation
        # An invalidation event lands while the result is being computed.
        cache.invalidate_tags(["jazz"])
        cache.put(key_of(result), result, generation=generation)
        assert cache.get(key_of(result)) is None

    def test_put_with_current_generation_is_stored(self):
        cache = ResultCache(capacity=8)
        result = make_result()
        cache.put(key_of(result), result, generation=cache.generation)
        assert cache.get(key_of(result)) is result

    def test_every_invalidation_kind_bumps_generation(self):
        cache = ResultCache(capacity=8)
        start = cache.generation
        cache.invalidate_tags(["x"])
        cache.invalidate_seekers([1])
        cache.clear()
        assert cache.generation == start + 3
