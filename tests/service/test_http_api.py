"""Tests for the stdlib JSON HTTP front end (``repro serve``)."""

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import QueryService, ServiceConfig, SocialSearchEngine
from repro.service.http_api import ServiceHTTPServer
from repro.workload import tiny_dataset


@pytest.fixture()
def server():
    """A live server on an ephemeral port over a fresh tiny dataset."""
    dataset = tiny_dataset(seed=3)
    engine = SocialSearchEngine(dataset)
    service = QueryService(engine, ServiceConfig(workers=2, port=0))
    httpd = ServiceHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd
    httpd.shutdown()
    httpd.server_close()
    service.close()
    thread.join(timeout=5.0)


def base_url(server):
    return f"http://127.0.0.1:{server.server_port}"


def get_json(server, path):
    with urllib.request.urlopen(base_url(server) + path, timeout=10.0) as response:
        return response.status, json.load(response)


def post_json(server, path, payload):
    request = urllib.request.Request(
        base_url(server) + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10.0) as response:
        return response.status, json.load(response)


class TestHealthAndMetrics:
    def test_health_reports_dataset(self, server):
        status, body = get_json(server, "/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["dataset"] == "tiny"
        assert body["workers"] == 2

    def test_stats_snapshot(self, server):
        tag = server.service.engine.dataset.tags()[0]
        get_json(server, f"/query?seeker=1&tags={tag}&k=3")
        status, body = get_json(server, "/stats")
        assert status == 200
        assert body["service"]["requests"] >= 1
        assert "result_cache" in body

    def test_metrics_prometheus_text(self, server):
        tag = server.service.engine.dataset.tags()[0]
        get_json(server, f"/query?seeker=1&tags={tag}&k=3")
        with urllib.request.urlopen(base_url(server) + "/metrics",
                                    timeout=10.0) as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode("utf-8")
        assert "# TYPE repro_service_requests gauge" in text
        assert "repro_service_requests 1" in text
        assert "# TYPE repro_service_latency_seconds histogram" in text
        assert 'repro_service_latency_seconds_bucket{le="+Inf"} 1' in text


class TestQueryEndpoint:
    def test_get_query(self, server):
        tag = server.service.engine.dataset.tags()[0]
        status, body = get_json(server, f"/query?seeker=1&tags={tag}&k=3")
        assert status == 200
        assert body["query"] == {"seeker": 1, "tags": [tag], "k": 3}
        assert body["outcome"] == "computed"
        assert len(body["items"]) <= 3
        assert all({"item_id", "score"} <= set(item) for item in body["items"])

    def test_post_query_and_cache_hit(self, server):
        tag = server.service.engine.dataset.tags()[0]
        payload = {"seeker": 2, "tags": [tag], "k": 4}
        status, first = post_json(server, "/query", payload)
        assert status == 200 and first["outcome"] == "computed"
        _, second = post_json(server, "/query", payload)
        assert second["outcome"] == "hit"
        assert second["items"] == first["items"]

    def test_explicit_algorithm(self, server):
        tag = server.service.engine.dataset.tags()[0]
        _, body = get_json(server, f"/query?seeker=1&tags={tag}&k=3&algorithm=exact")
        assert body["algorithm"] == "exact"

    def test_concurrent_requests(self, server):
        tags = server.service.engine.dataset.tags()

        def fetch(i):
            return get_json(server, f"/query?seeker={i % 6}&tags={tags[i % 3]}&k=3")[0]

        with ThreadPoolExecutor(max_workers=8) as pool:
            statuses = list(pool.map(fetch, range(24)))
        assert statuses == [200] * 24

    def test_missing_seeker_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(server, "/query?tags=jazz")
        assert excinfo.value.code == 400
        assert "seeker" in json.load(excinfo.value)["error"]

    def test_bad_seeker_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(server, "/query?seeker=notanumber&tags=jazz")
        assert excinfo.value.code == 400

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(server, "/nope")
        assert excinfo.value.code == 404


class TestUpdateEndpoint:
    def test_update_invalidates_served_results(self, server):
        dataset = server.service.engine.dataset
        tag = dataset.tags()[0]
        path = f"/query?seeker=1&tags={tag}&k=5"
        get_json(server, path)
        _, warm = get_json(server, path)
        assert warm["outcome"] == "hit"

        new_item = max(dataset.items.ids()) + 1
        actions = [{"user_id": u, "item_id": new_item, "tag": tag,
                    "timestamp": 1_000_000 + u}
                   for u in range(dataset.num_users) if u != 1]
        status, summary = post_json(server, "/update", {"actions": actions})
        assert status == 200
        assert summary["applied"] is True
        assert summary["actions_added"] == len(actions)

        _, fresh = get_json(server, path)
        assert fresh["outcome"] == "computed"
        assert new_item in [item["item_id"] for item in fresh["items"]]

    def test_friendship_update(self, server):
        dataset = server.service.engine.dataset
        neighbours = set(dataset.graph.neighbour_ids(1).tolist())
        stranger = next(u for u in range(dataset.num_users)
                        if u != 1 and u not in neighbours)
        status, summary = post_json(
            server, "/update", {"friendships": [[1, stranger, 1.0]]})
        assert status == 200
        assert summary["edges_added"] == 1

    def test_empty_update_is_noop(self, server):
        status, summary = post_json(server, "/update", {})
        assert status == 200
        assert summary["applied"] is False


class TestExplainEndpoint:
    def test_get_explain_returns_plan(self, server):
        tag = server.service.engine.dataset.tags()[0]
        status, body = get_json(server, f"/explain?seeker=1&tags={tag}&k=3")
        assert status == 200
        assert body["query"] == {"seeker": 1, "tags": [tag], "k": 3}
        for key in ("executor", "backing", "proximity_path", "scoring_path",
                    "partitions", "fan_out", "reason"):
            assert key in body

    def test_post_explain_matches_get(self, server):
        tag = server.service.engine.dataset.tags()[0]
        _, via_get = get_json(server, f"/explain?seeker=1&tags={tag}&k=3")
        _, via_post = post_json(server, "/explain",
                                {"seeker": 1, "tags": [tag], "k": 3})
        assert via_post == via_get

    def test_explain_does_not_touch_metrics(self, server):
        tag = server.service.engine.dataset.tags()[0]
        before = server.service.metrics.to_dict()["requests"]
        get_json(server, f"/explain?seeker=1&tags={tag}")
        assert server.service.metrics.to_dict()["requests"] == before

    def test_explain_requires_seeker(self, server):
        with pytest.raises(urllib.error.HTTPError) as error:
            get_json(server, "/explain?tags=jazz")
        assert error.value.code == 400

    def test_stats_carry_plan_block(self, server):
        _, body = get_json(server, "/stats")
        assert body["plan"]["backing"] == "python"
        assert body["plan"]["partitions"] == 1


class TestRequestIds:
    def test_every_response_carries_request_id(self, server):
        with urllib.request.urlopen(base_url(server) + "/health",
                                    timeout=10.0) as response:
            rid = response.headers["X-Request-Id"]
        assert rid and len(rid) == 16

    def test_client_supplied_id_is_echoed(self, server):
        request = urllib.request.Request(
            base_url(server) + "/health",
            headers={"X-Request-Id": "my-custom-id-42"})
        with urllib.request.urlopen(request, timeout=10.0) as response:
            assert response.headers["X-Request-Id"] == "my-custom-id-42"

    def test_errors_carry_request_id_too(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(server, "/query?tags=jazz")
        assert excinfo.value.headers["X-Request-Id"]


class TestTraceEndpoints:
    def test_trace_404_when_tracing_disabled(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(server, "/trace/deadbeef")
        assert excinfo.value.code == 404
        assert "disabled" in json.load(excinfo.value)["error"]

    def test_traces_404_when_tracing_disabled(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(server, "/traces")
        assert excinfo.value.code == 404

    def test_trace_round_trip_via_request_id(self, server):
        from repro.obs.trace import Tracer, use

        tag = server.service.engine.dataset.tags()[0]
        with use(Tracer(sample_rate=1.0)) as tracer:
            request = urllib.request.Request(
                base_url(server) + f"/query?seeker=1&tags={tag}&k=3",
                headers={"X-Request-Id": "trace-me-000001"})
            with urllib.request.urlopen(request, timeout=10.0) as response:
                body = json.load(response)
                assert body["request_id"] == "trace-me-000001"
            status, trace = get_json(server, "/trace/trace-me-000001")
            assert status == 200
            assert trace["trace_id"] == "trace-me-000001"
            span_names = [span["name"] for span in trace["spans"]]
            assert "request" in span_names
            assert "service.execute" in span_names
            assert "engine.run" in span_names

            _, listing = get_json(server, "/traces")
            assert "trace-me-000001" in [
                entry["trace_id"] for entry in listing["traces"]]
        assert tracer.get("trace-me-000001") is not None

    def test_unknown_trace_is_404(self, server):
        from repro.obs.trace import Tracer, use

        with use(Tracer(sample_rate=1.0)):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get_json(server, "/trace/nope")
            assert excinfo.value.code == 404
