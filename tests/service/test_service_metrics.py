"""Tests for the serving-side metrics collector."""

import pytest

from repro.service import ServiceMetrics, percentile


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.99) == 0.0

    def test_known_values(self):
        values = list(range(1, 101))  # 1..100
        assert percentile(values, 0.0) == 1
        assert percentile(values, 1.0) == 100
        assert percentile(values, 0.5) == 51  # nearest-rank on 0-based index

    def test_order_independent(self):
        assert percentile([5, 1, 3], 1.0) == 5

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestServiceMetrics:
    def test_request_outcomes_counted(self):
        metrics = ServiceMetrics()
        metrics.record_request("hit")
        metrics.record_request("miss")
        metrics.record_request("coalesced")
        assert metrics.requests == 3
        assert metrics.cache_hits == 1
        assert metrics.coalesced == 1
        assert metrics.cache_hit_rate == pytest.approx(1 / 3)

    def test_rejects_unknown_outcome(self):
        metrics = ServiceMetrics()
        with pytest.raises(ValueError, match="unknown request outcome"):
            metrics.record_request("stale")
        assert metrics.requests == 0  # rejected before counting

    def test_qps_uses_uptime(self):
        clock = FakeClock()
        metrics = ServiceMetrics(clock=clock)
        for _ in range(10):
            metrics.record_request("miss")
        clock.now = 2.0
        assert metrics.qps == pytest.approx(5.0)

    def test_latency_percentiles_in_ms(self):
        metrics = ServiceMetrics()
        for value in (0.001, 0.002, 0.010):
            metrics.record_latency(value)
        snapshot = metrics.latency_percentiles()
        assert snapshot["p50_ms"] == pytest.approx(2.0)
        assert snapshot["p99_ms"] == pytest.approx(10.0)

    def test_window_bounds_reservoir(self):
        metrics = ServiceMetrics(window=4)
        for value in (1.0, 1.0, 1.0, 0.1, 0.1, 0.1, 0.1):
            metrics.record_latency(value)
        assert metrics.latency_percentiles()["p99_ms"] == pytest.approx(100.0)

    def test_update_counters_and_snapshot(self):
        metrics = ServiceMetrics()
        metrics.record_update(entries_invalidated=3)
        metrics.record_error()
        snapshot = metrics.to_dict()
        assert snapshot["updates_observed"] == 1
        assert snapshot["entries_invalidated"] == 3
        assert snapshot["errors"] == 1
        assert {"qps", "p50_ms", "p95_ms", "p99_ms", "cache_hit_rate"} <= set(snapshot)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            ServiceMetrics(window=0)
