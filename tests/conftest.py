"""Shared fixtures for the test suite.

The heavier fixtures (synthetic datasets, engines) are session-scoped: they
are deterministic and read-only for the tests that use them, so building
them once keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro import (
    DatasetConfig,
    EngineConfig,
    ProximityConfig,
    ScoringConfig,
    SocialSearchEngine,
    WorkloadConfig,
)
from repro.graph import SocialGraph
from repro.storage import Dataset, TaggingAction
from repro.workload import build_dataset, generate_workload


@pytest.fixture(scope="session")
def small_graph() -> SocialGraph:
    """A hand-built 6-user graph with known structure.

    Topology (weights in parentheses)::

        0 --(1.0)-- 1 --(0.5)-- 2
        |           |
        (0.8)       (0.25)
        |           |
        3 --(1.0)-- 4           5 (isolated)
    """
    edges = [
        (0, 1, 1.0),
        (1, 2, 0.5),
        (0, 3, 0.8),
        (1, 4, 0.25),
        (3, 4, 1.0),
    ]
    return SocialGraph.from_edges(6, edges)


@pytest.fixture(scope="session")
def hand_dataset(small_graph) -> Dataset:
    """A tiny hand-written dataset over :func:`small_graph`.

    Items 100..104; tags "jazz", "rock", "vinyl".  User 5 is socially
    isolated but active, user 0 is the usual seeker in tests.
    """
    actions = [
        TaggingAction(user_id=1, item_id=100, tag="jazz", timestamp=1),
        TaggingAction(user_id=1, item_id=101, tag="jazz", timestamp=2),
        TaggingAction(user_id=2, item_id=100, tag="jazz", timestamp=3),
        TaggingAction(user_id=2, item_id=102, tag="rock", timestamp=4),
        TaggingAction(user_id=3, item_id=101, tag="jazz", timestamp=5),
        TaggingAction(user_id=3, item_id=103, tag="vinyl", timestamp=6),
        TaggingAction(user_id=4, item_id=100, tag="vinyl", timestamp=7),
        TaggingAction(user_id=4, item_id=102, tag="jazz", timestamp=8),
        TaggingAction(user_id=5, item_id=104, tag="jazz", timestamp=9),
        TaggingAction(user_id=5, item_id=104, tag="rock", timestamp=10),
        TaggingAction(user_id=0, item_id=103, tag="jazz", timestamp=11),
    ]
    return Dataset.build(small_graph, actions, name="hand")


@pytest.fixture(scope="session")
def synthetic_dataset() -> Dataset:
    """A small synthetic dataset shared across algorithm tests."""
    config = DatasetConfig(
        name="test-synthetic",
        num_users=60,
        num_items=120,
        num_tags=15,
        num_actions=900,
        graph_model="barabasi-albert",
        avg_degree=6.0,
        homophily=0.5,
        seed=42,
    )
    return build_dataset(config)


@pytest.fixture(scope="session")
def holdout_dataset() -> Dataset:
    """A synthetic dataset with a 20% per-user holdout for quality tests."""
    config = DatasetConfig(
        name="test-holdout",
        num_users=60,
        num_items=120,
        num_tags=15,
        num_actions=900,
        graph_model="barabasi-albert",
        avg_degree=6.0,
        homophily=0.7,
        seed=43,
    )
    return build_dataset(config, holdout_fraction=0.2)


@pytest.fixture(scope="session")
def engine(synthetic_dataset) -> SocialSearchEngine:
    """Default engine (social-first, shortest-path proximity, alpha 0.5)."""
    return SocialSearchEngine(synthetic_dataset)


@pytest.fixture(scope="session")
def workload(synthetic_dataset):
    """A small deterministic workload over the synthetic dataset."""
    return generate_workload(
        synthetic_dataset,
        WorkloadConfig(num_queries=8, k=5, seed=5),
    )


@pytest.fixture()
def engine_factory(synthetic_dataset):
    """Factory building engines with custom alpha / algorithm / proximity."""

    def factory(alpha: float = 0.5, algorithm: str = "social-first",
                measure: str = "shortest-path", early_termination: bool = True,
                cache_size: int = 128) -> SocialSearchEngine:
        config = EngineConfig(
            algorithm=algorithm,
            scoring=ScoringConfig(alpha=alpha),
            proximity=ProximityConfig(measure=measure, cache_size=cache_size),
            early_termination=early_termination,
        )
        return SocialSearchEngine(synthetic_dataset, config)

    return factory
