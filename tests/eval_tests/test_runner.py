"""Tests for the experiment runner and parameter sweeps."""

import pytest

from repro.config import EngineConfig, ScoringConfig, WorkloadConfig
from repro.core import SocialSearchEngine
from repro.errors import EvaluationError
from repro.eval import ExperimentRunner, sweep
from repro.workload import generate_workload, queries_with_k


class TestExperimentRunner:
    def test_reports_every_algorithm(self, engine, workload):
        runner = ExperimentRunner(engine)
        report = runner.run(workload[:4], ["exact", "social-first"])
        assert set(report.reports) == {"exact", "social-first"}
        assert report.dataset_name == engine.dataset.name

    def test_rows_contain_latency_and_access_columns(self, engine, workload):
        runner = ExperimentRunner(engine)
        report = runner.run(workload[:4], ["social-first"])
        row = report.rows()[0]
        assert row["algorithm"] == "social-first"
        assert row["queries"] == 4
        assert row["mean_latency_ms"] >= 0.0
        assert "sequential_per_query" in row
        assert "overlap_with_exact" in row

    def test_agreement_with_exact_is_perfect_for_exact(self, engine, workload):
        runner = ExperimentRunner(engine)
        report = runner.run(workload[:4], ["exact"])
        assert report.report("exact").row()["overlap_with_exact"] == pytest.approx(1.0)

    def test_no_reference_skips_agreement_columns(self, engine, workload):
        runner = ExperimentRunner(engine)
        report = runner.run(workload[:2], ["social-first"], compare_to_reference=False)
        assert "overlap_with_exact" not in report.rows()[0]

    def test_quality_metrics_present_with_holdout(self, holdout_dataset):
        engine = SocialSearchEngine(holdout_dataset)
        queries = generate_workload(holdout_dataset, WorkloadConfig(num_queries=6, seed=3))
        runner = ExperimentRunner(engine)
        report = runner.run(queries, ["social-first", "global"])
        row = report.report("social-first").row()
        assert "precision_at_k" in row
        assert 0.0 <= row["ndcg_at_k"] <= 1.0

    def test_empty_inputs_rejected(self, engine, workload):
        runner = ExperimentRunner(engine)
        with pytest.raises(EvaluationError):
            runner.run([], ["exact"])
        with pytest.raises(EvaluationError):
            runner.run(workload[:1], [])


class TestSweep:
    def test_sweep_produces_row_per_value_per_algorithm(self, engine, workload):
        rows = sweep(
            engine_factory=lambda k: engine,
            parameter_values=[1, 3],
            queries_factory=lambda k, eng: queries_with_k(workload[:3], k),
            algorithms=["exact", "social-first"],
            parameter_name="k",
        )
        assert len(rows) == 4
        assert {row["k"] for row in rows} == {1, 3}
        assert all("mean_latency_ms" in row for row in rows)

    def test_sweep_parameter_reaches_engine_factory(self, synthetic_dataset, workload):
        seen = []

        def factory(alpha):
            seen.append(alpha)
            config = EngineConfig(scoring=ScoringConfig(alpha=alpha))
            return SocialSearchEngine(synthetic_dataset, config)

        sweep(
            engine_factory=factory,
            parameter_values=[0.0, 1.0],
            queries_factory=lambda alpha, eng: workload[:2],
            algorithms=["social-first"],
            parameter_name="alpha",
            compare_to_reference=False,
        )
        assert seen == [0.0, 1.0]
