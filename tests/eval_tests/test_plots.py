"""Tests for the ASCII chart helpers."""

import pytest

from repro.errors import EvaluationError
from repro.eval import ascii_bar_chart, ascii_line_chart, series_from_rows


class TestBarChart:
    def test_bars_scale_with_values(self):
        chart = ascii_bar_chart({"exact": 100.0, "social-first": 25.0}, width=20)
        lines = chart.splitlines()
        exact_line = next(line for line in lines if line.startswith("exact"))
        social_line = next(line for line in lines if line.startswith("social-first"))
        assert exact_line.count("#") > social_line.count("#")

    def test_title_and_values_rendered(self):
        chart = ascii_bar_chart({"a": 1.0}, title="Figure X")
        assert chart.splitlines()[0] == "Figure X"
        assert "1" in chart

    def test_empty_data(self):
        assert "(no data)" in ascii_bar_chart({})

    def test_zero_values_have_empty_bars(self):
        chart = ascii_bar_chart({"a": 0.0, "b": 2.0})
        a_line = next(line for line in chart.splitlines() if line.startswith("a"))
        assert "#" not in a_line

    def test_invalid_width(self):
        with pytest.raises(EvaluationError):
            ascii_bar_chart({"a": 1.0}, width=0)


class TestLineChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_line_chart({
            "exact": [(1, 10.0), (2, 20.0)],
            "social": [(1, 5.0), (2, 6.0)],
        })
        assert "legend:" in chart
        assert "*" in chart
        assert "o" in chart

    def test_axis_labels_show_extremes(self):
        chart = ascii_line_chart({"s": [(0, 0.0), (10, 100.0)]})
        assert "100" in chart
        assert "0" in chart

    def test_empty_series(self):
        assert "(no data)" in ascii_line_chart({})

    def test_invalid_dimensions(self):
        with pytest.raises(EvaluationError):
            ascii_line_chart({"s": [(0, 1.0)]}, width=1)

    def test_single_point_series(self):
        chart = ascii_line_chart({"s": [(5, 5.0)]})
        assert "*" in chart


class TestSeriesFromRows:
    ROWS = [
        {"algorithm": "a", "k": 2, "latency": 4.0},
        {"algorithm": "a", "k": 1, "latency": 2.0},
        {"algorithm": "b", "k": 1, "latency": 3.0},
    ]

    def test_groups_and_sorts_by_x(self):
        series = series_from_rows(self.ROWS, "k", "latency")
        assert series["a"] == [(1.0, 2.0), (2.0, 4.0)]
        assert series["b"] == [(1.0, 3.0)]

    def test_missing_column_raises(self):
        with pytest.raises(EvaluationError):
            series_from_rows(self.ROWS, "nope", "latency")

    def test_feeds_into_line_chart(self):
        series = series_from_rows(self.ROWS, "k", "latency")
        chart = ascii_line_chart(series, title="latency vs k")
        assert "latency vs k" in chart
