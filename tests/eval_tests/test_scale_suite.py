"""Tests for the corpus-scale bench suite (``bench --suite scale``)."""

import pytest

from repro.eval.scale import arena_workload, format_scale_report, run_scale_suite
from repro.storage.arena import Arena
from repro.storage.arena_stream import build_arena_streaming
from repro.workload.datasets import scaled_config


@pytest.fixture(scope="module")
def report():
    """One tiny sweep shared by the assertions below."""
    return run_scale_suite(sizes=(300,), num_queries=4, rounds=1,
                           chunk_size=256, equivalence_chunk_sizes=(7, 256),
                           target_p50_ms=10_000.0)


class TestRunScaleSuite:
    def test_report_shape(self, report):
        assert report["suite"] == "scale"
        assert report["workload"]["sizes"] == [300]
        assert len(report["entries"]) == 1

    def test_entry_carries_build_and_serve_numbers(self, report):
        entry = report["entries"][0]
        assert entry["num_users"] == 300
        build = entry["build"]
        assert build["streaming_seconds"] > 0.0
        assert build["streaming_peak_rss_mb"] >= 0.0
        assert build["arena_mb"] > 0.0
        assert build["actions_stored"] > 0
        serve = entry["serve"]
        assert serve["cold_start_ms"] > 0.0
        assert serve["p95_ms"] >= serve["p50_ms"] - 1e-9
        assert serve["queries"] == 4.0

    def test_memory_comparison_present(self, report):
        comparison = report["memory_comparison"]
        assert comparison["num_users"] == 300
        assert comparison["in_memory_build_peak_rss_mb"] >= 0.0
        assert comparison["rss_ratio"] > 0.0

    def test_equivalence_gate_passes(self, report):
        gate = report["equivalence"]
        assert gate["arena_bytes_identical"]
        assert gate["query_results_identical"]
        assert gate["query_mismatches"] == 0
        # clamped to the sweep maximum
        assert gate["num_users"] == 300
        assert report["equivalent"] is True

    def test_operating_point_from_sweep(self, report):
        point = report["operating_point"]
        assert point["max_users"] == 300
        assert point["target_p50_ms"] == 10_000.0

    def test_memory_block_present(self, report):
        assert report["memory"]["peak_rss_mb"] > 0.0

    def test_format_is_one_screen(self, report):
        text = format_scale_report(report)
        assert "corpus scale suite" in text
        assert "equivalence   OK" in text
        assert "operating pt" in text
        assert "300" in text

    def test_rejects_empty_sizes(self):
        with pytest.raises(ValueError):
            run_scale_suite(sizes=())


class TestArenaWorkload:
    def test_deterministic_and_in_domain(self, tmp_path):
        config = scaled_config(200, seed=23)
        path = build_arena_streaming(config, tmp_path / "wl.arena",
                                     chunk_size=512)
        arena = Arena.open(path)
        tags = {str(tag) for tag in arena.meta["tags"]}
        first = arena_workload(arena, 12, 5, seed=3)
        second = arena_workload(Arena.open(path), 12, 5, seed=3)
        assert [(q.seeker, q.tags, q.k) for q in first] == \
            [(q.seeker, q.tags, q.k) for q in second]
        for query in first:
            assert 0 <= query.seeker < config.num_users
            assert query.k == 5
            assert query.tags
            assert set(query.tags) <= tags
            assert len(set(query.tags)) == len(query.tags)
