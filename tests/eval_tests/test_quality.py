"""Quality meter: recall@k, rank correlation and workload aggregates.

The meter compares approximate answers against the exact ones; its numbers
feed the anytime bench suite's curves and the CI recall gate, so the
arithmetic is pinned on hand-built results with known overlaps.
"""

import pytest

from repro.core.query import Query, QueryResult, ScoredItem
from repro.eval.quality import (
    quality_summary,
    rank_correlation,
    recall_at_k,
    result_signature,
)


def _result(item_ids, scores=None, is_exact=True, error_bound=0.0):
    scores = scores or [1.0 - 0.1 * rank for rank in range(len(item_ids))]
    items = [ScoredItem(item_id=item_id, score=score)
             for item_id, score in zip(item_ids, scores)]
    query = Query(seeker=0, tags=("jazz",), k=len(item_ids) or 1)
    return QueryResult(query=query, items=items, algorithm="exact",
                       is_exact=is_exact, error_bound=error_bound)


class TestRecall:
    def test_identical_rankings_recall_one(self):
        exact = _result([1, 2, 3])
        assert recall_at_k(exact, _result([1, 2, 3])) == 1.0

    def test_order_does_not_matter(self):
        exact = _result([1, 2, 3])
        assert recall_at_k(exact, _result([3, 1, 2])) == 1.0

    def test_missing_items_lower_recall(self):
        exact = _result([1, 2, 3, 4])
        approx = _result([1, 2, 9, 8])
        assert recall_at_k(exact, approx) == pytest.approx(0.5)

    def test_k_prefix_is_what_counts(self):
        exact = _result([1, 2, 3, 4])
        # 2 appears in the approximate answer, but outside the top-2 cut.
        approx = _result([1, 9, 2, 4])
        assert recall_at_k(exact, approx, k=2) == pytest.approx(0.5)

    def test_empty_exact_answer_is_perfect(self):
        assert recall_at_k(_result([]), _result([5])) == 1.0


class TestRankCorrelation:
    def test_same_order_is_one(self):
        exact = _result([1, 2, 3, 4])
        assert rank_correlation(exact, _result([1, 2, 3, 4])) == 1.0

    def test_reversed_order_is_minus_one(self):
        exact = _result([1, 2, 3, 4])
        assert rank_correlation(exact, _result([4, 3, 2, 1])) == -1.0

    def test_only_common_items_are_compared(self):
        exact = _result([1, 2, 3])
        approx = _result([1, 9, 2])  # 1 before 2 in both: concordant
        assert rank_correlation(exact, approx) == 1.0


class TestQualitySummary:
    def test_aggregates_over_workload(self):
        exact = [_result([1, 2, 3, 4]), _result([5, 6, 7, 8])]
        approx = [_result([1, 2, 3, 4], is_exact=True, error_bound=0.0),
                  _result([5, 6, 9, 8], is_exact=False, error_bound=0.25)]
        summary = quality_summary(exact, approx)
        assert summary["queries"] == 2.0
        assert summary["recall_mean"] == pytest.approx(0.875)
        assert summary["recall_min"] == pytest.approx(0.75)
        assert summary["exact_fraction"] == pytest.approx(0.5)
        assert summary["error_bound_mean"] == pytest.approx(0.125)
        assert summary["error_bound_max"] == pytest.approx(0.25)

    def test_unbounded_results_do_not_enter_bound_stats(self):
        exact = [_result([1, 2])]
        approx = [_result([1, 2], is_exact=False, error_bound=None)]
        summary = quality_summary(exact, approx)
        assert summary["error_bound_mean"] == 0.0
        assert summary["error_bound_max"] == 0.0

    def test_workload_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            quality_summary([_result([1])], [])


class TestResultSignature:
    def test_signature_covers_ranking_scores_and_accounting(self):
        result = _result([1, 2], scores=[0.9, 0.4])
        signature = result_signature(result)
        assert signature["items"] == [(1, 0.9), (2, 0.4)]
        assert signature["accounting"] == result.accounting.to_dict()

    def test_score_changes_change_the_signature(self):
        left = _result([1, 2], scores=[0.9, 0.4])
        right = _result([1, 2], scores=[0.9, 0.3])
        assert result_signature(left) != result_signature(right)
