"""Tests for the memory-measurement helpers in ``repro.eval.timing``."""

import numpy as np
import pytest

from repro.eval.timing import (
    MemoryMeter,
    current_rss_bytes,
    measure_in_subprocess,
    memory_summary,
    peak_rss_bytes,
)


class TestRssProbes:
    def test_peak_rss_positive(self):
        assert peak_rss_bytes() > 1024 * 1024  # any python process is >1 MB

    def test_current_rss_positive_on_linux(self):
        assert current_rss_bytes() > 1024 * 1024

    def test_peak_is_at_least_current(self):
        assert peak_rss_bytes() >= current_rss_bytes() * 0.5

    def test_memory_summary_shape(self):
        summary = memory_summary()
        assert set(summary) == {"peak_rss_mb", "current_rss_mb"}
        assert summary["peak_rss_mb"] > 1.0


class TestMemoryMeter:
    def test_tracks_numpy_allocation(self):
        with MemoryMeter() as meter:
            block = np.ones(2 * 1024 * 1024, dtype=np.float64)  # 16 MB
            block[0] = 2.0
        assert meter.peak_bytes >= 12 * 1024 * 1024
        assert meter.peak_mb == pytest.approx(meter.peak_bytes / 2**20)

    def test_nested_meters_do_not_stop_outer_tracing(self):
        with MemoryMeter() as outer:
            with MemoryMeter() as inner:
                np.ones(1024 * 1024, dtype=np.float64)
            assert inner.peak_bytes > 0
        assert outer.peak_bytes >= 0


class TestMeasureInSubprocess:
    def test_returns_value_and_positive_duration(self):
        value, peak, seconds = measure_in_subprocess(lambda: 41 + 1)
        assert value == 42
        assert peak >= 0
        assert seconds >= 0.0

    def test_measures_child_allocation(self):
        def allocate():
            block = np.ones(8 * 1024 * 1024, dtype=np.float64)  # 64 MB
            return float(block.sum())

        value, peak, _seconds = measure_in_subprocess(allocate)
        assert value == float(8 * 1024 * 1024)
        assert peak >= 48 * 1024 * 1024  # most of the 64 MB must show up

    def test_child_peak_excludes_parent_baseline(self):
        # A no-op child should report (near) zero growth even though the
        # parent process has a large absolute peak.
        _value, peak, _seconds = measure_in_subprocess(lambda: None)
        assert peak < 32 * 1024 * 1024

    def test_propagates_child_errors(self):
        def boom():
            raise ValueError("from the child")

        with pytest.raises(RuntimeError, match="from the child"):
            measure_in_subprocess(boom)
