"""Tests for the ranking-quality metrics."""

import pytest

from repro.errors import EvaluationError
from repro.eval import (
    average_precision,
    binary_ndcg_at_k,
    kendall_tau,
    mean,
    ndcg_at_k,
    overlap_at_k,
    precision_at_k,
    rank_biased_overlap,
    recall_at_k,
    reciprocal_rank,
    summarize_metric,
)


class TestPrecisionRecall:
    def test_perfect_ranking(self):
        assert precision_at_k([1, 2, 3], {1, 2, 3}, 3) == 1.0
        assert recall_at_k([1, 2, 3], {1, 2, 3}, 3) == 1.0

    def test_partial_hits(self):
        assert precision_at_k([1, 9, 2, 8], {1, 2}, 4) == pytest.approx(0.5)
        assert recall_at_k([1, 9], {1, 2, 3, 4}, 2) == pytest.approx(0.25)

    def test_no_relevant(self):
        assert precision_at_k([1, 2], {9}, 2) == 0.0
        assert recall_at_k([1, 2], set(), 2) == 0.0

    def test_k_shorter_than_ranking(self):
        assert precision_at_k([9, 1, 2], {1, 2}, 1) == 0.0

    def test_invalid_k_rejected(self):
        with pytest.raises(EvaluationError):
            precision_at_k([1], {1}, 0)
        with pytest.raises(EvaluationError):
            recall_at_k([1], {1}, 0)

    def test_average_precision(self):
        # Relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
        assert average_precision([1, 9, 2], {1, 2}) == pytest.approx((1.0 + 2.0 / 3.0) / 2)
        assert average_precision([9, 8], {1}) == 0.0
        assert average_precision([1], set()) == 0.0

    def test_reciprocal_rank(self):
        assert reciprocal_rank([9, 1, 2], {1}) == pytest.approx(0.5)
        assert reciprocal_rank([9, 8], {1}) == 0.0


class TestNdcg:
    def test_perfect_binary_ranking_is_one(self):
        assert binary_ndcg_at_k([1, 2, 3], {1, 2, 3}, 3) == pytest.approx(1.0)

    def test_worse_position_lowers_ndcg(self):
        good = binary_ndcg_at_k([1, 9, 8], {1}, 3)
        bad = binary_ndcg_at_k([9, 8, 1], {1}, 3)
        assert good > bad > 0.0

    def test_graded_relevance_prefers_higher_gain_first(self):
        relevance = {1: 3.0, 2: 1.0}
        assert ndcg_at_k([1, 2], relevance, 2) > ndcg_at_k([2, 1], relevance, 2)

    def test_bounds(self):
        value = binary_ndcg_at_k([5, 1, 7], {1, 2}, 3)
        assert 0.0 <= value <= 1.0

    def test_empty_relevance_is_zero(self):
        assert ndcg_at_k([1, 2], {}, 2) == 0.0

    def test_invalid_k_rejected(self):
        with pytest.raises(EvaluationError):
            ndcg_at_k([1], {1: 1.0}, 0)


class TestRankAgreement:
    def test_overlap_identical(self):
        assert overlap_at_k([1, 2, 3], [3, 2, 1], 3) == 1.0

    def test_overlap_disjoint(self):
        assert overlap_at_k([1, 2], [3, 4], 2) == 0.0

    def test_overlap_short_reference(self):
        assert overlap_at_k([1, 2, 3], [1], 3) == 1.0

    def test_kendall_identical_order(self):
        assert kendall_tau([1, 2, 3, 4], [1, 2, 3, 4]) == pytest.approx(1.0)

    def test_kendall_reversed_order(self):
        assert kendall_tau([1, 2, 3, 4], [4, 3, 2, 1]) == pytest.approx(-1.0)

    def test_kendall_ignores_uncommon_items(self):
        assert kendall_tau([1, 2, 9], [1, 2, 8]) == pytest.approx(1.0)

    def test_kendall_single_common_item(self):
        assert kendall_tau([1, 9], [1, 8]) == 1.0

    def test_rbo_identical(self):
        assert rank_biased_overlap([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)

    def test_rbo_disjoint(self):
        assert rank_biased_overlap([1, 2], [3, 4]) == pytest.approx(0.0)

    def test_rbo_top_weighted(self):
        agree_top = rank_biased_overlap([1, 9, 8], [1, 5, 6])
        agree_bottom = rank_biased_overlap([9, 8, 1], [5, 6, 1])
        assert agree_top > agree_bottom

    def test_rbo_invalid_persistence(self):
        with pytest.raises(EvaluationError):
            rank_biased_overlap([1], [1], persistence=1.0)


class TestSummaries:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert mean([]) == 0.0

    def test_summarize_metric(self):
        summary = summarize_metric([0.5, 1.0])
        assert summary["mean"] == pytest.approx(0.75)
        assert summary["count"] == 2
        assert summarize_metric([])["count"] == 0
