"""Tests for the timing helpers and result-table formatting."""

import time

import pytest

from repro.eval import LatencyRecorder, Timer, format_series, format_table, select_columns


class TestTimer:
    def test_measures_elapsed_time(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed_seconds >= 0.005
        assert timer.elapsed_milliseconds == pytest.approx(timer.elapsed_seconds * 1000)


class TestLatencyRecorder:
    def test_summary_statistics(self):
        recorder = LatencyRecorder()
        for value in (0.01, 0.02, 0.03, 0.04):
            recorder.record(value)
        assert len(recorder) == 4
        assert recorder.mean == pytest.approx(0.025)
        assert recorder.maximum == pytest.approx(0.04)
        assert recorder.median == pytest.approx(0.02, abs=0.011)
        assert recorder.p95 >= recorder.median

    def test_empty_recorder(self):
        recorder = LatencyRecorder()
        assert recorder.mean == 0.0
        assert recorder.percentile(0.5) == 0.0
        assert recorder.summary()["count"] == 0.0

    def test_summary_in_milliseconds(self):
        recorder = LatencyRecorder()
        recorder.record(0.5)
        assert recorder.summary()["mean_ms"] == pytest.approx(500.0)


class TestTables:
    ROWS = [
        {"algorithm": "exact", "latency": 10.5, "k": 5},
        {"algorithm": "social-first", "latency": 2.25, "k": 5},
    ]

    def test_format_table_contains_all_cells(self):
        text = format_table(self.ROWS)
        assert "algorithm" in text
        assert "exact" in text
        assert "social-first" in text
        assert "10.500" in text

    def test_format_table_with_column_subset_and_title(self):
        text = format_table(self.ROWS, columns=["algorithm"], title="Table 2")
        assert text.splitlines()[0] == "Table 2"
        assert "latency" not in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_table_bool_rendering(self):
        text = format_table([{"flag": True}, {"flag": False}])
        assert "yes" in text
        assert "no" in text

    def test_format_series_groups_by_algorithm(self):
        rows = [
            {"algorithm": "a", "k": 1, "latency": 1.0},
            {"algorithm": "a", "k": 2, "latency": 2.0},
            {"algorithm": "b", "k": 1, "latency": 3.0},
        ]
        text = format_series(rows, x_column="k", y_column="latency", title="Fig 3")
        lines = text.splitlines()
        assert lines[0] == "Fig 3"
        assert any(line.startswith("a:") and "1:1.000, 2:2.000" in line for line in lines)
        assert any(line.startswith("b:") for line in lines)

    def test_select_columns(self):
        projected = select_columns(self.ROWS, ["k", "missing"])
        assert projected == [{"k": 5, "missing": ""}, {"k": 5, "missing": ""}]
