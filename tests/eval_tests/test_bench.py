"""Tests for the headless top-k benchmark suite."""

import json

import pytest

from repro.eval import format_report, run_topk_suite, write_report


@pytest.fixture(scope="module")
def report():
    """One tiny suite run shared by the assertions below."""
    return run_topk_suite(num_users=50, num_queries=3, k=5, rounds=1,
                          algorithms=("exact", "social-first"))


class TestRunTopkSuite:
    def test_report_shape(self, report):
        assert report["suite"] == "topk"
        assert report["dataset"]["num_users"] == 50
        assert report["workload"]["k"] == 5
        assert "speedup_vectorized_exact" in report

    def test_exact_measured_in_both_modes(self, report):
        modes = {(entry["algorithm"], entry["mode"])
                 for entry in report["entries"]}
        assert ("exact", "vectorized") in modes
        assert ("exact", "scalar") in modes
        assert ("social-first", "vectorized") in modes

    def test_entries_carry_latency_summary(self, report):
        for entry in report["entries"]:
            assert entry["queries"] > 0
            assert entry["p50_ms"] >= 0.0
            assert entry["p95_ms"] >= entry["p50_ms"] - 1e-9
            assert entry["qps"] > 0.0

    def test_speedup_is_qps_ratio(self, report):
        by_mode = {entry["mode"]: entry for entry in report["entries"]
                   if entry["algorithm"] == "exact"}
        expected = by_mode["vectorized"]["qps"] / by_mode["scalar"]["qps"]
        assert report["speedup_vectorized_exact"] == pytest.approx(expected)


class TestReportIO:
    def test_write_report_roundtrips(self, report, tmp_path):
        path = write_report(report, tmp_path / "results" / "BENCH_topk.json")
        assert path.exists()
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded["suite"] == "topk"
        assert loaded["speedup_vectorized_exact"] == pytest.approx(
            report["speedup_vectorized_exact"])

    def test_format_report_mentions_every_algorithm(self, report):
        text = format_report(report)
        assert "exact" in text
        assert "scalar" in text
        assert "speedup" in text


@pytest.fixture(scope="module")
def updates_report():
    from repro.eval.bench import run_updates_suite

    return run_updates_suite(num_users=50, num_queries=4, k=5, rounds=1,
                             update_batches=2, actions_per_batch=15,
                             algorithms=("exact",), seed=5)


class TestUpdatesSuite:
    def test_report_shape(self, updates_report):
        assert updates_report["suite"] == "updates"
        assert updates_report["dataset"]["num_users"] == 50
        for key in ("pre_update", "post_update", "p50_ratio", "updates",
                    "equivalence", "equivalent"):
            assert key in updates_report

    def test_equivalence_gate_passes(self, updates_report):
        assert updates_report["equivalent"] is True
        assert updates_report["equivalence"]["num_mismatches"] == 0
        assert updates_report["equivalence"]["paths"] \
            == ["online", "materialized", "batched"]

    def test_updates_actually_applied(self, updates_report):
        updates = updates_report["updates"]
        assert updates["actions_added"] == 30
        assert updates["epoch"] == 1  # the mid-trace compaction ran
        assert updates["shard_rows"] == 50  # shards survived the churn

    def test_format_updates_report(self, updates_report):
        from repro.eval.bench import format_updates_report

        text = format_updates_report(updates_report)
        assert "post-update" in text
        assert "equivalence" in text

    def test_report_is_json_serialisable(self, updates_report, tmp_path):
        from repro.eval.bench import write_report

        path = write_report(updates_report, tmp_path / "BENCH_updates.json")
        assert json.loads(path.read_text())["suite"] == "updates"
