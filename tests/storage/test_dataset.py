"""Tests for the dataset bundle, persistence and statistics."""

import pytest

from repro.errors import PersistenceError, StorageError
from repro.graph import SocialGraph
from repro.storage import (
    Dataset,
    TaggingAction,
    compute_dataset_statistics,
    graph_statistics_row,
    load_dataset,
    save_dataset,
)


class TestDatasetBuild:
    def test_counts(self, hand_dataset):
        assert hand_dataset.num_users == 6
        assert hand_dataset.num_items == 5
        assert hand_dataset.num_tags == 3
        assert hand_dataset.num_actions == 11

    def test_indexes_are_consistent_with_tagging(self, hand_dataset):
        assert hand_dataset.inverted_index.frequency(100, "jazz") == \
            hand_dataset.tagging.tag_frequency(100, "jazz")
        assert hand_dataset.social_index.items_for(1, "jazz") == (100, 101)

    def test_action_with_unknown_user_rejected(self, small_graph):
        with pytest.raises(StorageError):
            Dataset.build(small_graph, [TaggingAction(17, 1, "x")])

    def test_describe_mentions_name_and_sizes(self, hand_dataset):
        text = hand_dataset.describe()
        assert "hand" in text
        assert "6 users" in text

    def test_tags_and_active_users(self, hand_dataset):
        assert hand_dataset.tags() == ["jazz", "rock", "vinyl"]
        assert hand_dataset.active_users() == [0, 1, 2, 3, 4, 5]


class TestHoldout:
    def test_with_holdout_moves_actions_out_of_index(self, hand_dataset):
        split = hand_dataset.with_holdout(0.5)
        assert split.holdout is not None
        assert split.num_actions + len(split.holdout) == hand_dataset.num_actions
        assert split.num_actions < hand_dataset.num_actions

    def test_holdout_dataset_keeps_graph_and_name(self, hand_dataset):
        split = hand_dataset.with_holdout(0.3)
        assert split.graph is hand_dataset.graph
        assert split.name == hand_dataset.name


class TestPersistence:
    def test_roundtrip(self, hand_dataset, tmp_path):
        directory = save_dataset(hand_dataset, tmp_path / "snapshot")
        loaded = load_dataset(directory)
        assert loaded.name == hand_dataset.name
        assert loaded.num_users == hand_dataset.num_users
        assert loaded.num_actions == hand_dataset.num_actions
        assert loaded.graph == hand_dataset.graph
        assert loaded.inverted_index.frequency(100, "jazz") == \
            hand_dataset.inverted_index.frequency(100, "jazz")

    def test_roundtrip_with_holdout(self, hand_dataset, tmp_path):
        split = hand_dataset.with_holdout(0.5)
        directory = save_dataset(split, tmp_path / "snapshot")
        loaded = load_dataset(directory)
        assert loaded.holdout is not None
        assert len(split.holdout) > 0
        assert len(loaded.holdout) == len(split.holdout)

    def test_missing_snapshot_raises(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_dataset(tmp_path / "missing")

    def test_wrong_format_version_rejected(self, hand_dataset, tmp_path):
        directory = save_dataset(hand_dataset, tmp_path / "snapshot")
        meta = directory / "meta.json"
        meta.write_text(meta.read_text().replace('"format_version": 1',
                                                 '"format_version": 99'))
        with pytest.raises(PersistenceError):
            load_dataset(directory)

    def test_corrupted_actions_rejected(self, hand_dataset, tmp_path):
        directory = save_dataset(hand_dataset, tmp_path / "snapshot")
        (directory / "actions.jsonl").write_text("{broken\n")
        with pytest.raises(PersistenceError):
            load_dataset(directory)


class TestStatistics:
    def test_dataset_statistics(self, hand_dataset):
        stats = compute_dataset_statistics(hand_dataset)
        assert stats.num_users == 6
        assert stats.num_items == 5
        assert stats.num_tags == 3
        assert stats.num_actions == 11
        assert stats.max_tag_frequency == hand_dataset.inverted_index.max_frequency("jazz")
        assert stats.index_memory_bytes > 0
        assert stats.avg_actions_per_user == pytest.approx(11 / 6)

    def test_statistics_to_dict(self, hand_dataset):
        row = compute_dataset_statistics(hand_dataset).to_dict()
        assert row["name"] == "hand"

    def test_graph_statistics_row(self, hand_dataset):
        row = graph_statistics_row(hand_dataset)
        assert row["num_users"] == 6
        assert row["name"] == "hand"
