"""Tests for the append-only update log (repro.storage.wal)."""

import pytest

from repro.errors import PersistenceError
from repro.storage import Item, TaggingAction
from repro.storage.wal import (
    WAL_MAGIC,
    WriteAheadLog,
    scan_wal,
    torn_tail_offset,
    truncate_torn_tail,
)


@pytest.fixture()
def wal_path(tmp_path):
    return tmp_path / "wal-0.log"


class TestAppendAndScan:
    def test_fresh_file_starts_with_magic(self, wal_path):
        WriteAheadLog(wal_path, fsync="off").close()
        assert wal_path.read_bytes() == WAL_MAGIC

    def test_record_roundtrip_all_kinds(self, wal_path):
        actions = [TaggingAction(1, 100, "jazz", timestamp=7)]
        items = [Item(item_id=300, title="new-item")]
        with WriteAheadLog(wal_path, fsync="off") as wal:
            wal.append_actions(actions)
            wal.append("friendships", {"edges": [[0, 4, 0.5]]})
            wal.append("users", {"count": 2})
            wal.append("items", {"items": [item.to_dict() for item in items]})
            wal.append_epoch(3, folded=12)
        scan = scan_wal(wal_path)
        assert not scan.torn
        assert [record.kind for record in scan.records] == [
            "actions", "friendships", "users", "items", "epoch"]
        assert scan.records[0].actions() == actions
        assert scan.records[1].friendships() == [(0, 4, 0.5)]
        assert scan.records[2].payload["count"] == 2
        assert [item.item_id for item in scan.records[3].items()] == [300]
        assert scan.records[4].payload == {"epoch": 3, "folded": 12}

    def test_lsns_are_sequential_per_segment(self, wal_path):
        with WriteAheadLog(wal_path, fsync="off") as wal:
            assert [wal.append("users", {"count": i}) for i in range(3)] \
                == [0, 1, 2]

    def test_reopen_appends_after_existing_records(self, wal_path):
        with WriteAheadLog(wal_path, fsync="off") as wal:
            wal.append("users", {"count": 1})
        with WriteAheadLog(wal_path, fsync="off") as wal:
            wal.append("users", {"count": 2})
        counts = [record.payload["count"]
                  for record in scan_wal(wal_path).records]
        assert counts == [1, 2]

    def test_unknown_kind_rejected(self, wal_path):
        with WriteAheadLog(wal_path, fsync="off") as wal:
            with pytest.raises(PersistenceError):
                wal.append("bogus", {})

    def test_append_after_close_rejected(self, wal_path):
        wal = WriteAheadLog(wal_path, fsync="off")
        wal.close()
        wal.close()  # idempotent
        with pytest.raises(PersistenceError):
            wal.append("users", {"count": 1})

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "not-a-wal.log"
        path.write_bytes(b"GARBAGE!" + b"\x00" * 16)
        with pytest.raises(PersistenceError):
            scan_wal(path)

    def test_stats_accounting(self, wal_path):
        with WriteAheadLog(wal_path, fsync="off") as wal:
            wal.append("users", {"count": 1})
            stats = wal.stats()
        assert stats["records_appended"] == 1
        assert stats["bytes_appended"] > 0
        assert stats["fsync_policy"] == "off"


class TestTornTail:
    def _write(self, path, count):
        with WriteAheadLog(path, fsync="off") as wal:
            for index in range(count):
                wal.append("users", {"count": index})

    def test_short_payload_treated_as_end_of_log(self, wal_path):
        self._write(wal_path, 3)
        start = torn_tail_offset(wal_path)
        with wal_path.open("rb+") as handle:
            handle.truncate(start + 5)  # header survives, payload torn
        scan = scan_wal(wal_path)
        assert scan.torn
        assert len(scan.records) == 2
        assert scan.valid_bytes == start

    def test_corrupted_crc_treated_as_end_of_log(self, wal_path):
        self._write(wal_path, 2)
        blob = bytearray(wal_path.read_bytes())
        blob[-1] ^= 0xFF  # flip a payload byte of the final record
        wal_path.write_bytes(bytes(blob))
        scan = scan_wal(wal_path)
        assert scan.torn
        assert len(scan.records) == 1

    def test_truncate_torn_tail_then_append(self, wal_path):
        self._write(wal_path, 2)
        start = torn_tail_offset(wal_path)
        with wal_path.open("rb+") as handle:
            handle.truncate(start + 3)
        removed = truncate_torn_tail(wal_path)
        assert removed == 3
        assert truncate_torn_tail(wal_path) == 0  # already clean
        with WriteAheadLog(wal_path, fsync="off") as wal:
            wal.append("users", {"count": 99})
        scan = scan_wal(wal_path)
        assert not scan.torn
        assert [record.payload["count"] for record in scan.records] == [0, 99]

    def test_torn_tail_offset_requires_a_record(self, wal_path):
        WriteAheadLog(wal_path, fsync="off").close()
        with pytest.raises(PersistenceError):
            torn_tail_offset(wal_path)


class TestFsyncPolicies:
    def test_always_syncs_every_append(self, wal_path):
        with WriteAheadLog(wal_path, fsync="always") as wal:
            baseline = wal.fsyncs  # the fresh-file magic sync
            wal.append("users", {"count": 1})
            wal.append("users", {"count": 2})
            assert wal.fsyncs == baseline + 2

    def test_off_never_syncs_on_append(self, wal_path):
        with WriteAheadLog(wal_path, fsync="off") as wal:
            baseline = wal.fsyncs
            wal.append("users", {"count": 1})
            assert wal.fsyncs == baseline

    def test_interval_amortises_syncs(self, wal_path):
        with WriteAheadLog(wal_path, fsync="interval",
                           fsync_interval_seconds=3600.0) as wal:
            baseline = wal.fsyncs
            for index in range(5):
                wal.append("users", {"count": index})
            assert wal.fsyncs == baseline  # interval not yet elapsed
            wal.sync()
            assert wal.fsyncs == baseline + 1

    def test_unknown_policy_rejected(self, wal_path):
        with pytest.raises(PersistenceError):
            WriteAheadLog(wal_path, fsync="sometimes")
        with pytest.raises(PersistenceError):
            WriteAheadLog(wal_path, fsync="interval",
                          fsync_interval_seconds=-1.0)
