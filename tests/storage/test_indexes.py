"""Tests for the inverted, social and endorser indexes."""

import numpy as np
import pytest

from repro.errors import UnknownTagError
from repro.storage import (
    EndorserIndex,
    InvertedIndex,
    SocialIndex,
    TaggingAction,
    TaggingStore,
)


@pytest.fixture()
def tagging():
    store = TaggingStore()
    store.add_many([
        TaggingAction(1, 100, "jazz"),
        TaggingAction(2, 100, "jazz"),
        TaggingAction(3, 100, "jazz"),
        TaggingAction(1, 101, "jazz"),
        TaggingAction(2, 101, "jazz"),
        TaggingAction(1, 102, "jazz"),
        TaggingAction(2, 102, "rock"),
        TaggingAction(3, 103, "rock"),
    ])
    return store


@pytest.fixture()
def index(tagging):
    return InvertedIndex.build(tagging)


@pytest.fixture()
def social(tagging):
    return SocialIndex.build(tagging)


class TestInvertedIndex:
    def test_postings_sorted_by_decreasing_frequency(self, index):
        postings = index.postings("jazz")
        frequencies = [posting.frequency for posting in postings]
        assert frequencies == sorted(frequencies, reverse=True)
        assert postings[0].item_id == 100
        assert postings[0].frequency == 3

    def test_frequency_ties_broken_by_item_id(self, index):
        postings = index.postings("rock")
        assert [posting.item_id for posting in postings] == [102, 103]

    def test_max_frequency(self, index):
        assert index.max_frequency("jazz") == 3
        assert index.max_frequency("rock") == 1
        assert index.max_frequency("unknown") == 0

    def test_random_access_frequency(self, index):
        assert index.frequency(101, "jazz") == 2
        assert index.frequency(101, "rock") == 0

    def test_unknown_tag_postings_raise(self, index):
        with pytest.raises(UnknownTagError):
            index.postings("unknown")

    def test_unknown_tag_cursor_is_empty(self, index):
        cursor = index.cursor("unknown")
        assert cursor.exhausted()
        assert cursor.next() is None
        assert cursor.peek_frequency() == 0

    def test_cursor_consumes_in_order(self, index):
        cursor = index.cursor("jazz")
        read = []
        while not cursor.exhausted():
            assert cursor.peek_frequency() >= 0
            read.append(cursor.next().frequency)
        assert read == [3, 2, 1]
        assert cursor.remaining() == 0
        assert cursor.position == 3

    def test_list_length_and_num_postings(self, index):
        assert index.list_length("jazz") == 3
        assert index.list_length("rock") == 2
        assert index.num_postings() == 5

    def test_tags_and_contains(self, index):
        assert index.tags() == ["jazz", "rock"]
        assert "jazz" in index
        assert index.has_tag("rock")
        assert "funk" not in index

    def test_iter_all(self, index):
        entries = list(index.iter_all())
        assert len(entries) == index.num_postings()

    def test_memory_bytes_positive(self, index):
        assert index.memory_bytes() > 0

    def test_arrays_parallel_to_postings(self, index):
        postings = index.arrays("jazz")
        assert postings.item_ids.tolist() == [100, 101, 102]
        assert postings.frequencies.tolist() == [3, 2, 1]
        assert index.arrays("unknown").item_ids.shape == (0,)

    def test_next_block_consumes_in_batches(self, index):
        cursor = index.cursor("jazz")
        item_ids, frequencies = cursor.next_block(2)
        assert item_ids.tolist() == [100, 101]
        assert frequencies.tolist() == [3, 2]
        assert cursor.position == 2
        assert cursor.peek_frequency() == 1
        item_ids, frequencies = cursor.next_block(10)
        assert item_ids.tolist() == [102]
        assert cursor.exhausted()
        item_ids, _ = cursor.next_block(4)
        assert item_ids.shape == (0,)

    def test_next_block_interleaves_with_scalar_next(self, index):
        cursor = index.cursor("jazz")
        assert cursor.next().item_id == 100
        item_ids, _ = cursor.next_block(5)
        assert item_ids.tolist() == [101, 102]

    def test_next_block_rejects_negative(self, index):
        with pytest.raises(ValueError):
            index.cursor("jazz").next_block(-1)


class TestEndorserIndex:
    @pytest.fixture()
    def endorsers(self, tagging):
        return EndorserIndex.build(tagging)

    def test_tags_and_contains(self, endorsers):
        assert endorsers.tags() == ["jazz", "rock"]
        assert "jazz" in endorsers
        assert "funk" not in endorsers
        assert endorsers.for_tag("funk") is None

    def test_items_ascending_with_frequencies(self, endorsers):
        bundle = endorsers.for_tag("jazz")
        assert bundle.item_ids.tolist() == [100, 101, 102]
        assert bundle.frequencies.tolist() == [3, 2, 1]
        assert bundle.offsets.tolist() == [0, 3, 5, 6]

    def test_taggers_sorted_within_segments(self, endorsers):
        bundle = endorsers.for_tag("jazz")
        assert bundle.taggers_of(100).tolist() == [1, 2, 3]
        assert bundle.taggers_of(101).tolist() == [1, 2]
        assert bundle.taggers_of(999).shape == (0,)

    def test_social_mass_is_segmented_proximity_sum(self, endorsers):
        proximity = np.zeros(6)
        proximity[1] = 0.5
        proximity[2] = 0.25
        bundle = endorsers.for_tag("jazz")
        masses = bundle.social_mass(proximity)
        # jazz taggers: 100 -> {1,2,3}, 101 -> {1,2}, 102 -> {1}
        assert masses.tolist() == pytest.approx([0.75, 0.75, 0.5])

    def test_positions_of_marks_missing_items(self, endorsers):
        bundle = endorsers.for_tag("rock")
        positions, found = bundle.positions_of(np.array([100, 102, 103]))
        assert found.tolist() == [False, True, True]
        assert positions[found].tolist() == [0, 1]

    def test_seeker_flags(self, endorsers):
        bundle = endorsers.for_tag("jazz")
        assert bundle.seeker_flags(1).tolist() == [True, True, True]
        assert bundle.seeker_flags(3).tolist() == [True, False, False]
        assert bundle.seeker_flags(99).tolist() == [False, False, False]

    def test_candidate_items_union(self, endorsers):
        assert endorsers.candidate_items(("jazz", "rock")).tolist() == \
            [100, 101, 102, 103]
        assert endorsers.candidate_items(("funk",)).shape == (0,)

    def test_entry_counts_and_memory(self, endorsers, tagging):
        assert endorsers.num_entries() == tagging.num_distinct_triples()
        assert endorsers.memory_bytes() > 0
        assert len(endorsers) == 2


class TestSocialIndex:
    def test_items_for_user_and_tag(self, social):
        assert social.items_for(1, "jazz") == (100, 101, 102)
        assert social.items_for(2, "rock") == (102,)
        assert social.items_for(2, "vinyl") == ()
        assert social.items_for(42, "jazz") == ()

    def test_profile(self, social):
        profile = social.profile(3)
        assert profile == {"jazz": (100,), "rock": (103,)}
        assert social.profile(42) == {}

    def test_tags_for(self, social):
        assert social.tags_for(2) == ("jazz", "rock")

    def test_users(self, social):
        assert social.users() == [1, 2, 3]
        assert 1 in social
        assert len(social) == 3

    def test_num_entries_matches_distinct_triples(self, social, tagging):
        assert social.num_entries() == tagging.num_distinct_triples()

    def test_iter_entries(self, social, tagging):
        entries = set(social.iter_entries())
        assert (1, "jazz", 100) in entries
        assert len(entries) == tagging.num_distinct_triples()

    def test_memory_bytes_positive(self, social):
        assert social.memory_bytes() > 0


class TestIndexConsistency:
    def test_inverted_and_social_agree_on_frequencies(self, index, social, tagging):
        for tag in tagging.tags():
            for posting in index.postings(tag):
                taggers = [user for user in social.users()
                           if posting.item_id in social.items_for(user, tag)]
                assert len(taggers) == posting.frequency
