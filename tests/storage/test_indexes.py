"""Tests for the inverted index and the per-user social index."""

import pytest

from repro.errors import UnknownTagError
from repro.storage import InvertedIndex, SocialIndex, TaggingAction, TaggingStore


@pytest.fixture()
def tagging():
    store = TaggingStore()
    store.add_many([
        TaggingAction(1, 100, "jazz"),
        TaggingAction(2, 100, "jazz"),
        TaggingAction(3, 100, "jazz"),
        TaggingAction(1, 101, "jazz"),
        TaggingAction(2, 101, "jazz"),
        TaggingAction(1, 102, "jazz"),
        TaggingAction(2, 102, "rock"),
        TaggingAction(3, 103, "rock"),
    ])
    return store


@pytest.fixture()
def index(tagging):
    return InvertedIndex.build(tagging)


@pytest.fixture()
def social(tagging):
    return SocialIndex.build(tagging)


class TestInvertedIndex:
    def test_postings_sorted_by_decreasing_frequency(self, index):
        postings = index.postings("jazz")
        frequencies = [posting.frequency for posting in postings]
        assert frequencies == sorted(frequencies, reverse=True)
        assert postings[0].item_id == 100
        assert postings[0].frequency == 3

    def test_frequency_ties_broken_by_item_id(self, index):
        postings = index.postings("rock")
        assert [posting.item_id for posting in postings] == [102, 103]

    def test_max_frequency(self, index):
        assert index.max_frequency("jazz") == 3
        assert index.max_frequency("rock") == 1
        assert index.max_frequency("unknown") == 0

    def test_random_access_frequency(self, index):
        assert index.frequency(101, "jazz") == 2
        assert index.frequency(101, "rock") == 0

    def test_unknown_tag_postings_raise(self, index):
        with pytest.raises(UnknownTagError):
            index.postings("unknown")

    def test_unknown_tag_cursor_is_empty(self, index):
        cursor = index.cursor("unknown")
        assert cursor.exhausted()
        assert cursor.next() is None
        assert cursor.peek_frequency() == 0

    def test_cursor_consumes_in_order(self, index):
        cursor = index.cursor("jazz")
        read = []
        while not cursor.exhausted():
            assert cursor.peek_frequency() >= 0
            read.append(cursor.next().frequency)
        assert read == [3, 2, 1]
        assert cursor.remaining() == 0
        assert cursor.position == 3

    def test_list_length_and_num_postings(self, index):
        assert index.list_length("jazz") == 3
        assert index.list_length("rock") == 2
        assert index.num_postings() == 5

    def test_tags_and_contains(self, index):
        assert index.tags() == ["jazz", "rock"]
        assert "jazz" in index
        assert index.has_tag("rock")
        assert "funk" not in index

    def test_iter_all(self, index):
        entries = list(index.iter_all())
        assert len(entries) == index.num_postings()

    def test_memory_bytes_positive(self, index):
        assert index.memory_bytes() > 0


class TestSocialIndex:
    def test_items_for_user_and_tag(self, social):
        assert social.items_for(1, "jazz") == (100, 101, 102)
        assert social.items_for(2, "rock") == (102,)
        assert social.items_for(2, "vinyl") == ()
        assert social.items_for(42, "jazz") == ()

    def test_profile(self, social):
        profile = social.profile(3)
        assert profile == {"jazz": (100,), "rock": (103,)}
        assert social.profile(42) == {}

    def test_tags_for(self, social):
        assert social.tags_for(2) == ("jazz", "rock")

    def test_users(self, social):
        assert social.users() == [1, 2, 3]
        assert 1 in social
        assert len(social) == 3

    def test_num_entries_matches_distinct_triples(self, social, tagging):
        assert social.num_entries() == tagging.num_distinct_triples()

    def test_iter_entries(self, social, tagging):
        entries = set(social.iter_entries())
        assert (1, "jazz", 100) in entries
        assert len(entries) == tagging.num_distinct_triples()

    def test_memory_bytes_positive(self, social):
        assert social.memory_bytes() > 0


class TestIndexConsistency:
    def test_inverted_and_social_agree_on_frequencies(self, index, social, tagging):
        for tag in tagging.tags():
            for posting in index.postings(tag):
                taggers = [user for user in social.users()
                           if posting.item_id in social.items_for(user, tag)]
                assert len(taggers) == posting.frequency
