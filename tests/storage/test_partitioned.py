"""Tests for corpus partitioning (storage/partitioned.py)."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.partitioned import CorpusPartitions


def _all_items(dataset):
    items = set()
    for tag in dataset.endorser_index.tags():
        bundle = dataset.endorser_index.for_tag(tag)
        items.update(bundle.item_ids.tolist())
    return sorted(items)


class TestBuild:
    def test_every_item_is_assigned(self, synthetic_dataset):
        layout = CorpusPartitions.build(synthetic_dataset, 4, seed=3)
        items = np.asarray(_all_items(synthetic_dataset), dtype=np.int64)
        parts = layout.partition_of_items(items)
        assert parts.shape[0] == items.shape[0]
        assert ((parts >= 0) & (parts < 4)).all()
        assert sum(layout.partition_sizes()) == items.shape[0]

    def test_layout_is_deterministic_under_seed(self, synthetic_dataset):
        items = np.asarray(_all_items(synthetic_dataset), dtype=np.int64)
        first = CorpusPartitions.build(synthetic_dataset, 4, seed=3)
        second = CorpusPartitions.build(synthetic_dataset, 4, seed=3)
        assert (first.partition_of_items(items)
                == second.partition_of_items(items)).all()
        for user in range(synthetic_dataset.num_users):
            assert first.partition_of_user(user) \
                == second.partition_of_user(user)

    def test_no_partition_hoards_everything(self, synthetic_dataset):
        # Oversized communities are split before packing, so even a graph
        # that collapses into one community spreads over the partitions.
        layout = CorpusPartitions.build(synthetic_dataset, 4, seed=3)
        sizes = layout.partition_sizes()
        assert max(sizes) < sum(sizes)

    def test_single_partition_is_trivial(self, synthetic_dataset):
        layout = CorpusPartitions.build(synthetic_dataset, 1)
        items = np.asarray(_all_items(synthetic_dataset), dtype=np.int64)
        assert (layout.partition_of_items(items) == 0).all()

    def test_invalid_partition_count_rejected(self, synthetic_dataset):
        with pytest.raises(StorageError):
            CorpusPartitions.build(synthetic_dataset, 0)
        with pytest.raises(StorageError):
            CorpusPartitions.hashed(0)


class TestLookup:
    def test_unknown_items_hash(self):
        layout = CorpusPartitions.hashed(4)
        ids = np.asarray([0, 1, 5, 123456], dtype=np.int64)
        assert (layout.partition_of_items(ids) == ids % 4).all()
        assert layout.partition_of_item(7) == 3

    def test_unknown_users_hash(self, synthetic_dataset):
        layout = CorpusPartitions.build(synthetic_dataset, 4, seed=3)
        beyond = synthetic_dataset.num_users + 10
        assert layout.partition_of_user(beyond) == beyond % 4

    def test_to_dict_reports_layout(self, synthetic_dataset):
        layout = CorpusPartitions.build(synthetic_dataset, 3, seed=3)
        data = layout.to_dict()
        assert data["num_partitions"] == 3
        assert len(data["sizes"]) == 3
        assert data["mapped_items"] == sum(data["sizes"])


class TestRouting:
    def test_new_item_joins_first_taggers_partition(self, synthetic_dataset):
        layout = CorpusPartitions.build(synthetic_dataset, 4, seed=3)
        new_item = 10_000
        user = 5
        routed = layout.route_items({new_item: user})
        assert routed == 1
        assert layout.partition_of_item(new_item) \
            == layout.partition_of_user(user)

    def test_existing_items_never_migrate(self, synthetic_dataset):
        layout = CorpusPartitions.build(synthetic_dataset, 4, seed=3)
        item = _all_items(synthetic_dataset)[0]
        before = layout.partition_of_item(item)
        assert layout.route_items({item: 49}) == 0
        assert layout.partition_of_item(item) == before

    def test_unknown_tagger_falls_back_to_hash(self, synthetic_dataset):
        layout = CorpusPartitions.build(synthetic_dataset, 4, seed=3)
        new_item = 20_001
        assert layout.route_items({new_item: 999_999}) == 1
        assert layout.partition_of_item(new_item) == new_item % 4

    def test_single_partition_routing_is_noop(self, synthetic_dataset):
        layout = CorpusPartitions.build(synthetic_dataset, 1)
        assert layout.route_items({123: 4}) == 0
