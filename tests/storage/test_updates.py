"""Tests for incremental dataset maintenance."""

import pytest

from repro.errors import StorageError
from repro.storage import (
    Dataset,
    DatasetUpdater,
    Item,
    TaggingAction,
    replay_trace,
)
from repro.core import SocialSearchEngine, Query
from repro.workload import tiny_dataset


@pytest.fixture()
def live_dataset(small_graph):
    actions = [
        TaggingAction(1, 100, "jazz", timestamp=1),
        TaggingAction(2, 100, "jazz", timestamp=2),
        TaggingAction(3, 101, "rock", timestamp=3),
    ]
    return Dataset.build(small_graph, actions, name="live")


class TestAddActions:
    def test_new_action_updates_indexes(self, live_dataset):
        updater = DatasetUpdater(live_dataset)
        summary = updater.add_actions([TaggingAction(4, 100, "jazz", timestamp=9)])
        assert summary.actions_added == 1
        assert live_dataset.inverted_index.frequency(100, "jazz") == 3
        assert 100 in live_dataset.social_index.items_for(4, "jazz")
        assert summary.tags_touched == {"jazz"}

    def test_duplicate_action_ignored(self, live_dataset):
        updater = DatasetUpdater(live_dataset)
        summary = updater.add_actions([TaggingAction(1, 100, "jazz", timestamp=50)])
        assert summary.actions_added == 0
        assert summary.actions_ignored == 1
        assert live_dataset.inverted_index.frequency(100, "jazz") == 2

    def test_new_tag_creates_posting_list(self, live_dataset):
        DatasetUpdater(live_dataset).add_actions(
            [TaggingAction(2, 102, "vinyl", timestamp=8)]
        )
        assert live_dataset.inverted_index.has_tag("vinyl")
        assert live_dataset.inverted_index.max_frequency("vinyl") == 1

    def test_unknown_user_rejected(self, live_dataset):
        with pytest.raises(StorageError):
            DatasetUpdater(live_dataset).add_actions([TaggingAction(42, 1, "x")])

    def test_new_item_registered_in_catalogue(self, live_dataset):
        DatasetUpdater(live_dataset).add_actions([TaggingAction(1, 777, "jazz")])
        assert 777 in live_dataset.items


class TestGraphUpdates:
    def test_add_friendship_rebuilds_graph(self, live_dataset):
        updater = DatasetUpdater(live_dataset)
        assert not live_dataset.graph.has_edge(2, 3)
        summary = updater.add_friendships([(2, 3, 0.9)])
        assert summary.edges_added == 1
        assert live_dataset.graph.has_edge(2, 3)

    def test_duplicate_friendship_not_counted(self, live_dataset):
        updater = DatasetUpdater(live_dataset)
        summary = updater.add_friendships([(0, 1, 0.9)])
        assert summary.edges_added == 0

    def test_add_users_extends_domain(self, live_dataset):
        updater = DatasetUpdater(live_dataset)
        before = live_dataset.num_users
        summary = updater.add_users(3)
        assert summary.users_added == 3
        assert live_dataset.num_users == before + 3
        # The pre-existing edges survive the rebuild.
        assert live_dataset.graph.has_edge(0, 1)

    def test_add_negative_users_rejected(self, live_dataset):
        with pytest.raises(StorageError):
            DatasetUpdater(live_dataset).add_users(-1)

    def test_add_items(self, live_dataset):
        summary = DatasetUpdater(live_dataset).add_items(
            [Item(item_id=500, title="new"), Item(item_id=100, title="item-100")]
        )
        assert summary.items_added == 1
        assert 500 in live_dataset.items


class TestApplyAndReplay:
    def test_apply_mixed_batch_in_order(self, live_dataset):
        updater = DatasetUpdater(live_dataset)
        new_user = live_dataset.num_users
        summary = updater.apply(
            new_users=1,
            friendships=[(new_user, 0, 0.8)],
            actions=[TaggingAction(new_user, 100, "jazz", timestamp=99)],
            new_items=[Item(item_id=900, title="fresh")],
        )
        assert summary.users_added == 1
        assert summary.edges_added == 1
        assert summary.actions_added == 1
        assert summary.items_added == 1
        assert live_dataset.inverted_index.frequency(100, "jazz") == 3

    def test_updates_visible_to_queries(self, live_dataset):
        engine = SocialSearchEngine(live_dataset)
        query = Query(seeker=0, tags=("jazz",), k=3)
        before = engine.run(query, algorithm="exact")
        DatasetUpdater(live_dataset).add_actions(
            [TaggingAction(1, 555, "jazz", timestamp=77),
             TaggingAction(3, 555, "jazz", timestamp=78)]
        )
        after = engine.run(query, algorithm="exact")
        assert 555 in after.item_ids
        assert 555 not in before.item_ids

    def test_replay_trace_batches(self):
        dataset = tiny_dataset()
        base_actions = dataset.num_actions
        new_actions = [
            TaggingAction(user_id=index % dataset.num_users, item_id=1000 + index,
                          tag="tag-000", timestamp=10_000 + index)
            for index in range(25)
        ]
        summaries = replay_trace(dataset, new_actions, batch_size=10)
        assert len(summaries) == 3
        assert sum(summary.actions_added for summary in summaries) == 25
        assert dataset.num_actions == base_actions + 25

    def test_replay_invalid_batch_size(self):
        with pytest.raises(StorageError):
            replay_trace(tiny_dataset(), [], batch_size=0)

    def test_summary_to_dict(self, live_dataset):
        summary = DatasetUpdater(live_dataset).add_actions(
            [TaggingAction(1, 888, "rock", timestamp=5)]
        )
        data = summary.to_dict()
        assert data["actions_added"] == 1
        assert data["tags_touched"] == ["rock"]


class TestObservers:
    def test_subscriber_notified_per_public_call(self, live_dataset):
        updater = DatasetUpdater(live_dataset)
        observed = []
        updater.subscribe(observed.append)
        updater.add_actions([TaggingAction(4, 300, "jazz", timestamp=20)])
        updater.add_users(1)
        assert len(observed) == 2
        assert observed[0].tags_touched == {"jazz"}
        assert observed[1].users_added == 1

    def test_apply_notifies_once_with_merged_summary(self, live_dataset):
        updater = DatasetUpdater(live_dataset)
        observed = []
        updater.subscribe(observed.append)
        updater.apply(
            actions=[TaggingAction(4, 300, "jazz", timestamp=20)],
            new_users=1,
        )
        assert len(observed) == 1
        assert observed[0].actions_added == 1
        assert observed[0].users_added == 1

    def test_no_notification_when_nothing_changed(self, live_dataset):
        updater = DatasetUpdater(live_dataset)
        observed = []
        updater.subscribe(observed.append)
        # Duplicate action: ignored, dataset unchanged.
        updater.add_actions([TaggingAction(1, 100, "jazz", timestamp=99)])
        updater.apply()
        assert observed == []

    def test_unsubscribe_stops_notifications(self, live_dataset):
        updater = DatasetUpdater(live_dataset)
        observed = []
        updater.subscribe(observed.append)
        updater.unsubscribe(observed.append)
        updater.add_users(1)
        assert observed == []
        updater.unsubscribe(observed.append)  # double-unsubscribe is a no-op

    def test_summary_change_flags(self, live_dataset):
        updater = DatasetUpdater(live_dataset)
        tagging = updater.add_actions([TaggingAction(4, 300, "jazz", timestamp=20)])
        assert tagging.changed and not tagging.graph_rebuilt
        growth = updater.add_users(1)
        assert growth.changed and growth.graph_rebuilt


class TestIncrementalMaintenance:
    def test_indexes_maintained_in_place(self, live_dataset):
        """Updates refresh the touched tags, not rebuild whole indexes."""
        inverted = live_dataset.inverted_index
        social = live_dataset.social_index
        endorsers = live_dataset.endorser_index
        jazz_before = inverted.arrays("jazz")
        rock_before = inverted.arrays("rock")
        DatasetUpdater(live_dataset).add_actions(
            [TaggingAction(4, 100, "jazz", timestamp=9)])
        # Same index objects, refreshed in place...
        assert live_dataset.inverted_index is inverted
        assert live_dataset.social_index is social
        assert live_dataset.endorser_index is endorsers
        # ...with only the touched tag's arrays replaced.
        assert inverted.arrays("jazz") is not jazz_before
        assert inverted.arrays("rock") is rock_before

    def test_endorser_version_bumped(self, live_dataset):
        version = live_dataset.endorser_index.version
        DatasetUpdater(live_dataset).add_actions(
            [TaggingAction(4, 100, "jazz", timestamp=9)])
        assert live_dataset.endorser_index.version == version + 1

    def test_merged_entries_match_full_rebuild(self, live_dataset):
        from repro.storage import EndorserIndex, InvertedIndex, SocialIndex

        DatasetUpdater(live_dataset).add_actions([
            TaggingAction(4, 100, "jazz", timestamp=9),
            TaggingAction(0, 500, "jazz", timestamp=10),
            TaggingAction(2, 500, "fresh", timestamp=11),
        ])
        rebuilt = InvertedIndex.build(live_dataset.tagging)
        for tag in live_dataset.tagging.tags():
            ours = live_dataset.inverted_index.arrays(tag)
            theirs = rebuilt.arrays(tag)
            assert ours.item_ids.tolist() == theirs.item_ids.tolist()
            assert ours.frequencies.tolist() == theirs.frequencies.tolist()
            assert live_dataset.inverted_index.max_frequency(tag) \
                == rebuilt.max_frequency(tag)
        rebuilt_endorsers = EndorserIndex.build(live_dataset.tagging)
        for tag in live_dataset.tagging.tags():
            ours = live_dataset.endorser_index.for_tag(tag)
            theirs = rebuilt_endorsers.for_tag(tag)
            assert ours.item_ids.tolist() == theirs.item_ids.tolist()
            assert ours.offsets.tolist() == theirs.offsets.tolist()
            assert ours.taggers.tolist() == theirs.taggers.tolist()
        rebuilt_social = SocialIndex.build(live_dataset.tagging)
        for user in rebuilt_social.users():
            assert live_dataset.social_index.profile(user) \
                == rebuilt_social.profile(user)

    def test_in_memory_dataset_has_nothing_pending(self, live_dataset):
        updater = DatasetUpdater(live_dataset)
        updater.add_actions([TaggingAction(4, 100, "jazz", timestamp=9)])
        assert updater.pending_delta() == 0
        assert updater.compact() == 0
        assert updater.epoch == 0

    def test_inline_compact_threshold(self, tmp_path):
        dataset = tiny_dataset()
        path = tmp_path / "inline.arena"
        dataset.to_arena(path)
        live = Dataset.from_arena(path)
        updater = DatasetUpdater(live, compact_threshold=4)
        tag = live.tags()[0]
        for index in range(6):
            updater.add_actions([TaggingAction(
                user_id=index % live.num_users, item_id=70_000 + index,
                tag=tag, timestamp=index)])
        # The fourth action crossed the threshold and compacted inline.
        assert updater.epoch == 1
        assert updater.pending_delta() == 2


class TestCompactionFaultAtomicity:
    """Fault-injected regression: a failed compaction commits nothing.

    Compaction is staged (all fallible work) and then committed (pure
    attribute swaps); a crash between the two must leave the old epoch,
    the old overlays and identical merged reads behind — the exact window
    that used to be able to publish a half-folded store.
    """

    def _arena_backed(self, tmp_path):
        dataset = tiny_dataset()
        path = tmp_path / "atomic.arena"
        dataset.to_arena(path)
        live = Dataset.from_arena(path)
        updater = DatasetUpdater(live)
        tag = live.tags()[0]
        updater.add_actions([
            TaggingAction(user_id=index % live.num_users,
                          item_id=80_000 + index, tag=tag,
                          timestamp=index)
            for index in range(5)
        ])
        return live, updater, tag

    def _merged_reads(self, live, tag):
        arrays = live.inverted_index.arrays(tag)
        return (arrays.item_ids.tolist(), arrays.frequencies.tolist(),
                live.inverted_index.max_frequency(tag))

    @pytest.mark.parametrize("point", ["compact.stage", "compact.commit"])
    def test_crash_mid_compaction_commits_nothing(self, tmp_path, point):
        from repro.obs.faults import InjectedCrash, armed

        live, updater, tag = self._arena_backed(tmp_path)
        before = self._merged_reads(live, tag)
        pending = updater.pending_delta()
        assert pending == 5

        with armed(point):
            with pytest.raises(InjectedCrash):
                updater.compact()

        # Nothing committed: old epoch, overlays still pending, reads same.
        assert updater.epoch == 0
        assert updater.pending_delta() == pending
        assert self._merged_reads(live, tag) == before

        # The survivor path: the very next compaction folds cleanly.
        assert updater.compact() == pending
        assert updater.epoch == 1
        assert updater.pending_delta() == 0
        assert self._merged_reads(live, tag) == before
