"""Tests for atomic arena generations + crash recovery (repro.storage.durable)."""

import pytest

from repro.config import DurabilityConfig, ProximityConfig, ServiceConfig
from repro.core import SocialSearchEngine, Query
from repro.errors import PersistenceError
from repro.obs.faults import InjectedCrash, armed, faults
from repro.service import QueryService
from repro.storage import TaggingAction
from repro.storage.durable import (
    MANIFEST_NAME,
    DurableStore,
    read_manifest,
    write_manifest,
)
from repro.storage.wal import scan_wal


@pytest.fixture(autouse=True)
def clean_faults():
    faults.reset()
    yield
    faults.reset()


@pytest.fixture()
def store(hand_dataset, tmp_path):
    durable = DurableStore.initialise(hand_dataset, tmp_path / "db")
    yield durable
    durable.close()


def _query(dataset, seeker=0, tag="jazz", k=5):
    engine = SocialSearchEngine(dataset)
    return [(item.item_id, item.score)
            for item in engine.run(Query(seeker=seeker, tags=(tag,), k=k)).items]


class TestInitialise:
    def test_creates_generation_zero_layout(self, store):
        names = sorted(p.name for p in store.directory.iterdir())
        assert names == ["MANIFEST.json", "gen-0.arena", "wal-0.log"]
        manifest = read_manifest(store.directory)
        assert manifest["generation"] == 0
        assert manifest["epoch"] == 0

    def test_served_dataset_matches_the_source(self, hand_dataset, store):
        assert _query(store.dataset) == _query(hand_dataset)

    def test_refuses_to_overwrite_an_existing_store(self, hand_dataset, store):
        with pytest.raises(PersistenceError):
            DurableStore.initialise(hand_dataset, store.directory)

    def test_open_requires_a_manifest(self, tmp_path):
        with pytest.raises(PersistenceError):
            DurableStore.open(tmp_path / "empty")

    def test_manifest_validation(self, tmp_path):
        directory = tmp_path / "bad"
        directory.mkdir()
        (directory / MANIFEST_NAME).write_text("{\"format\": \"other\"}")
        with pytest.raises(PersistenceError):
            read_manifest(directory)
        write_manifest(directory, {"format": "repro-durable"})
        with pytest.raises(PersistenceError):
            read_manifest(directory)


class TestRecovery:
    def test_acked_updates_survive_a_reopen(self, store):
        store.updater.add_actions(
            [TaggingAction(0, 100, "rock", timestamp=100)])
        store.updater.add_friendships([(2, 3, 0.9)])
        directory = store.directory
        del store  # simulated kill: the WAL handle is simply abandoned

        recovered = DurableStore.open(directory)
        try:
            report = recovered.recovery
            assert report.records_replayed == 2
            assert report.actions_replayed == 1
            assert report.edges_replayed == 1
            assert recovered.dataset.tagging.contains(0, 100, "rock")
            assert recovered.dataset.graph.edge_weight(2, 3) \
                == pytest.approx(0.9)
        finally:
            recovered.close()

    def test_epoch_restored_from_manifest_plus_markers(self, store):
        store.updater.add_actions(
            [TaggingAction(0, 100, "rock", timestamp=100)])
        store.updater.compact()  # appends an epoch marker to the live WAL
        directory = store.directory
        store.close()

        recovered = DurableStore.open(directory)
        try:
            assert recovered.recovery.epoch_markers == 1
            assert recovered.updater.epoch == 1
        finally:
            recovered.close()

    def test_torn_final_record_is_truncated_not_replayed(self, store):
        store.updater.add_actions(
            [TaggingAction(0, 100, "rock", timestamp=100)])
        # An in-flight record: on disk but torn mid-write, never acked.
        store.wal.append_actions([TaggingAction(5, 104, "vinyl",
                                                timestamp=200)])
        from repro.obs.faults import tear_final_record
        tear_final_record(store.wal.path, keep_bytes=4)
        directory = store.directory
        del store

        recovered = DurableStore.open(directory)
        try:
            assert recovered.recovery.torn_tail_bytes > 0
            assert recovered.recovery.records_replayed == 1
            assert recovered.dataset.tagging.contains(0, 100, "rock")
            assert not recovered.dataset.tagging.contains(5, 104, "vinyl")
            # The truncated segment accepts new appends cleanly.
            recovered.updater.add_actions(
                [TaggingAction(1, 102, "rock", timestamp=300)])
            assert not scan_wal(recovered.wal.path).torn
        finally:
            recovered.close()


class TestCheckpoint:
    def test_publishes_a_new_generation_and_rotates_the_wal(self, store):
        store.updater.add_actions(
            [TaggingAction(0, 100, "rock", timestamp=100)])
        before = _query(store.dataset, tag="rock")
        summary = store.checkpoint()
        assert summary["published"]
        assert store.generation == 1
        manifest = read_manifest(store.directory)
        assert manifest["arena"] == "gen-1.arena"
        assert manifest["wal"] == "wal-1.log"
        # The old generation was garbage-collected (keep_generations=0)...
        assert sorted(summary["gc_removed"]) == ["gen-0.arena", "wal-0.log"]
        # ...the live dataset kept serving identical answers...
        assert _query(store.dataset, tag="rock") == before
        # ...and a reopen replays nothing: the arena already has it all.
        directory = store.directory
        store.close()
        recovered = DurableStore.open(directory)
        try:
            assert recovered.recovery.records_replayed == 0
            assert recovered.dataset.tagging.contains(0, 100, "rock")
            assert _query(recovered.dataset, tag="rock") == before
        finally:
            recovered.close()

    def test_skips_when_nothing_changed(self, store):
        assert store.checkpoint() == {"published": False, "generation": 0,
                                      "folded": 0}
        assert store.checkpoint(force=True)["published"]

    def test_keep_generations_retains_predecessors(self, hand_dataset,
                                                   tmp_path):
        directory = tmp_path / "db"
        store = DurableStore.initialise(
            hand_dataset, directory,
            config=DurabilityConfig(directory=str(directory),
                                    keep_generations=1))
        try:
            store.checkpoint(force=True)
            store.checkpoint(force=True)
            names = sorted(p.name for p in directory.iterdir())
            assert "gen-2.arena" in names and "gen-1.arena" in names
            assert "gen-0.arena" not in names
        finally:
            store.close()

    def test_checkpoint_on_closed_store_rejected(self, store):
        store.close()
        with pytest.raises(PersistenceError):
            store.checkpoint()


class TestCrashWindows:
    """Kill inside the publish protocol; every window must recover clean."""

    def _crash_checkpoint(self, store, point):
        store.updater.add_actions(
            [TaggingAction(0, 100, "rock", timestamp=100)])
        with armed(point):
            with pytest.raises(InjectedCrash):
                store.checkpoint(force=True)
        return store.directory

    @pytest.mark.parametrize("point", ["compact.stage", "compact.commit",
                                       "publish.after_arena",
                                       "publish.before_manifest",
                                       "arena.before_replace"])
    def test_kill_during_publish_loses_nothing(self, store, point):
        directory = self._crash_checkpoint(store, point)
        del store
        # The manifest still names generation 0: the acked update is in
        # its WAL segment, and any half-published files are strays.
        manifest = read_manifest(directory)
        assert manifest["generation"] == 0
        recovered = DurableStore.open(directory)
        try:
            assert recovered.dataset.tagging.contains(0, 100, "rock")
            assert recovered.generation == 0
            # Recovery swept the interrupted checkpoint's strays.
            survivors = {p.name for p in directory.iterdir()}
            assert survivors == {"MANIFEST.json", "gen-0.arena", "wal-0.log"}
            # The next checkpoint completes normally.
            assert recovered.checkpoint(force=True)["published"]
            assert recovered.generation == 1
        finally:
            recovered.close()


class TestObservability:
    def test_stats_block(self, store):
        store.updater.add_actions(
            [TaggingAction(0, 100, "rock", timestamp=100)])
        stats = store.stats()
        assert stats["generation"] == 0
        assert stats["wal"]["records_appended"] == 1
        assert stats["recovery"]["records_replayed"] == 0

    def test_service_exposes_durability_stats_and_metrics(self, store):
        engine = SocialSearchEngine(store.dataset)
        service = QueryService(
            engine, ServiceConfig(workers=1, cache_capacity=0,
                                  cache_ttl_seconds=0.0),
            durable=store)
        try:
            store.updater.add_actions(
                [TaggingAction(0, 100, "rock", timestamp=100)])
            snapshot = service.stats()
            assert snapshot["durability"]["wal"]["records_appended"] == 1
            # The durability block is flattened into namespaced gauges by
            # the service's pull collector; the WAL's own counters live in
            # the process-global registry.
            text = service.metrics_text()
            assert "durability_wal_records_appended 1" in text
            assert "durability_generation 0" in text
            from repro.obs.metrics import get_registry
            assert "wal_records_appended_total" in get_registry().expose_text()
        finally:
            service.close()
