"""Tests for the tagging relation store."""

import pytest

from repro.storage import TaggingAction, TaggingStore


@pytest.fixture()
def store():
    tagging = TaggingStore()
    tagging.add_many([
        TaggingAction(1, 100, "jazz", timestamp=1),
        TaggingAction(1, 101, "jazz", timestamp=2),
        TaggingAction(2, 100, "jazz", timestamp=3),
        TaggingAction(2, 102, "rock", timestamp=4),
        TaggingAction(3, 100, "vinyl", timestamp=5),
    ])
    return tagging


class TestTaggingStore:
    def test_length_counts_distinct_actions(self, store):
        assert len(store) == 5
        assert store.num_distinct_triples() == 5

    def test_duplicate_triple_ignored(self, store):
        added = store.add(TaggingAction(1, 100, "jazz", timestamp=99))
        assert added is False
        assert len(store) == 5

    def test_tag_frequency_counts_distinct_users(self, store):
        assert store.tag_frequency(100, "jazz") == 2
        assert store.tag_frequency(100, "vinyl") == 1
        assert store.tag_frequency(999, "jazz") == 0

    def test_taggers(self, store):
        assert store.taggers(100, "jazz") == frozenset({1, 2})
        assert store.taggers(100, "funk") == frozenset()

    def test_items_for_user_tag(self, store):
        assert store.items_for_user_tag(1, "jazz") == frozenset({100, 101})
        assert store.items_for_user_tag(1, "rock") == frozenset()

    def test_items_for_user(self, store):
        assert store.items_for_user(2) == frozenset({100, 102})

    def test_tags_for_user(self, store):
        assert store.tags_for_user(1) == {"jazz": 2}
        assert store.tags_for_user(42) == {}

    def test_items_for_tag(self, store):
        assert store.items_for_tag("jazz") == frozenset({100, 101})

    def test_tags_sorted(self, store):
        assert store.tags() == ["jazz", "rock", "vinyl"]

    def test_tag_popularity(self, store):
        assert store.tag_popularity() == {"jazz": 3, "rock": 1, "vinyl": 1}

    def test_users_and_items(self, store):
        assert store.users() == [1, 2, 3]
        assert store.items() == [100, 101, 102]

    def test_activity(self, store):
        assert store.activity(1) == 2
        assert store.activity(99) == 0

    def test_contains(self, store):
        assert store.contains(1, 100, "jazz")
        assert not store.contains(1, 100, "rock")

    def test_filter(self, store):
        jazz_only = store.filter(lambda action: action.tag == "jazz")
        assert len(jazz_only) == 3
        assert jazz_only.tags() == ["jazz"]

    def test_action_dict_roundtrip(self):
        action = TaggingAction(7, 8, "x", timestamp=3)
        assert TaggingAction.from_dict(action.to_dict()) == action


class TestHoldoutSplit:
    def test_split_fractions(self):
        tagging = TaggingStore()
        for index in range(10):
            tagging.add(TaggingAction(1, index, "t", timestamp=index))
        train, holdout = tagging.split_holdout(0.3)
        assert len(train) == 7
        assert len(holdout) == 3

    def test_holdout_takes_latest_actions(self):
        tagging = TaggingStore()
        for index in range(10):
            tagging.add(TaggingAction(1, index, "t", timestamp=index))
        train, holdout = tagging.split_holdout(0.2)
        assert holdout.items_for_user(1) == frozenset({8, 9})

    def test_every_user_keeps_at_least_one_action(self):
        tagging = TaggingStore()
        tagging.add(TaggingAction(1, 1, "t"))
        tagging.add(TaggingAction(2, 2, "t"))
        train, holdout = tagging.split_holdout(0.9)
        assert train.activity(1) >= 1
        assert train.activity(2) >= 1

    def test_invalid_fraction_rejected(self, store):
        with pytest.raises(ValueError):
            store.split_holdout(1.0)
        with pytest.raises(ValueError):
            store.split_holdout(-0.1)

    def test_split_partitions_actions(self, store):
        train, holdout = store.split_holdout(0.4)
        assert len(train) + len(holdout) == len(store)
