"""Tests for the item and user catalogues."""

import pytest

from repro.errors import DuplicateItemError, UnknownItemError, UnknownUserError
from repro.storage import Item, ItemStore, User, UserStore


class TestItemStore:
    def test_add_and_get(self):
        store = ItemStore()
        store.add(Item(item_id=3, title="Kind of Blue", url="http://example.org"))
        item = store.get(3)
        assert item.title == "Kind of Blue"
        assert item.url == "http://example.org"

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownItemError):
            ItemStore().get(99)

    def test_get_or_none(self):
        store = ItemStore()
        assert store.get_or_none(1) is None
        store.add(Item(item_id=1))
        assert store.get_or_none(1) is not None

    def test_re_adding_identical_item_is_noop(self):
        store = ItemStore()
        store.add(Item(item_id=1, title="a"))
        store.add(Item(item_id=1, title="a"))
        assert len(store) == 1

    def test_conflicting_payload_rejected(self):
        store = ItemStore()
        store.add(Item(item_id=1, title="a"))
        with pytest.raises(DuplicateItemError):
            store.add(Item(item_id=1, title="b"))

    def test_ensure_creates_placeholder(self):
        store = ItemStore()
        item = store.ensure(7)
        assert item.title == "item-7"
        assert 7 in store

    def test_iteration_sorted_by_id(self):
        store = ItemStore()
        store.add_many(iter([Item(item_id=5), Item(item_id=1), Item(item_id=3)]))
        assert [item.item_id for item in store] == [1, 3, 5]
        assert store.ids() == [1, 3, 5]

    def test_dict_roundtrip(self):
        item = Item(item_id=2, title="x", url=None, attributes={"lang": "en"})
        assert Item.from_dict(item.to_dict()) == item


class TestUserStore:
    def test_add_and_get(self):
        store = UserStore()
        store.add(User(user_id=4, name="dana"))
        assert store.get(4).name == "dana"

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownUserError):
            UserStore().get(11)

    def test_ensure_creates_placeholder(self):
        store = UserStore()
        assert store.ensure(2).name == "user-2"

    def test_with_placeholder_users(self):
        store = UserStore.with_placeholder_users(5)
        assert len(store) == 5
        assert store.ids() == [0, 1, 2, 3, 4]

    def test_overwrite_allowed(self):
        store = UserStore()
        store.add(User(user_id=1, name="a"))
        store.add(User(user_id=1, name="b"))
        assert store.get(1).name == "b"

    def test_dict_roundtrip(self):
        user = User(user_id=9, name="zoe", attributes={"country": "ie"})
        assert User.from_dict(user.to_dict()) == user

    def test_iteration_sorted(self):
        store = UserStore()
        store.add_many(iter([User(user_id=3), User(user_id=0)]))
        assert [user.user_id for user in store] == [0, 3]
