"""Round-trip tests for the memory-mapped index arena."""

import numpy as np
import pytest

from repro import SocialSearchEngine
from repro.config import EngineConfig, ProximityConfig, WorkloadConfig
from repro.errors import PersistenceError
from repro.proximity import MaterializedProximity
from repro.proximity.pagerank import PersonalizedPageRankProximity
from repro.storage import Dataset, build_arena, load_shards
from repro.storage.arena import Arena, attach_shards, write_arena
from repro.workload import generate_workload
from repro.workload.datasets import tiny_dataset


@pytest.fixture(scope="module")
def corpus():
    return tiny_dataset(holdout_fraction=0.2)


@pytest.fixture(scope="module")
def arena_path(corpus, tmp_path_factory):
    path = tmp_path_factory.mktemp("arena") / "tiny.arena"
    inner = PersonalizedPageRankProximity(corpus.graph, ProximityConfig(measure="ppr"))
    materialized = MaterializedProximity(inner)
    materialized.build()
    build_arena(corpus, path, proximity=materialized)
    return path


@pytest.fixture()
def mapped(arena_path):
    return Dataset.from_arena(arena_path)


class TestFormat:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.arena"
        path.write_bytes(b"not an arena at all" * 4)
        with pytest.raises(PersistenceError):
            Arena.open(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "short.arena"
        path.write_bytes(b"RPR")
        with pytest.raises(PersistenceError):
            Arena.open(path)

    def test_unknown_array_name_raises(self, arena_path):
        arena = Arena.open(arena_path)
        with pytest.raises(PersistenceError):
            arena.array("no/such/array")

    def test_write_and_reopen_raw_arrays(self, tmp_path):
        path = tmp_path / "raw.arena"
        payload = {
            "small": np.arange(7, dtype=np.int64),
            "floats": np.linspace(0.0, 1.0, 13),
            "empty": np.zeros(0, dtype=np.int64),
        }
        write_arena(path, {"hello": "world"}, payload)
        arena = Arena.open(path)
        assert arena.meta["hello"] == "world"
        for name, array in payload.items():
            np.testing.assert_array_equal(arena.array(name), array)


class TestRoundTrip:
    def test_structural_equality(self, corpus, mapped):
        assert mapped.graph == corpus.graph
        assert mapped.tags() == corpus.tags()
        assert mapped.num_actions == corpus.num_actions
        assert len(mapped.items) == len(corpus.items)
        assert len(mapped.users) == len(corpus.users)
        for tag in corpus.tags():
            ours = corpus.inverted_index.arrays(tag)
            theirs = mapped.inverted_index.arrays(tag)
            np.testing.assert_array_equal(ours.item_ids, theirs.item_ids)
            np.testing.assert_array_equal(ours.frequencies, theirs.frequencies)
            assert corpus.inverted_index.max_frequency(tag) \
                == mapped.inverted_index.max_frequency(tag)

    def test_endorser_index_round_trip(self, corpus, mapped):
        for tag in corpus.tags():
            ours = corpus.endorser_index.for_tag(tag)
            theirs = mapped.endorser_index.for_tag(tag)
            if ours is None:
                assert theirs is None
                continue
            np.testing.assert_array_equal(ours.item_ids, theirs.item_ids)
            np.testing.assert_array_equal(ours.offsets, theirs.offsets)
            np.testing.assert_array_equal(ours.taggers, theirs.taggers)

    def test_tagging_hot_paths(self, corpus, mapped):
        for tag in corpus.tags()[:5]:
            assert mapped.tagging.items_for_tag(tag) == corpus.tagging.items_for_tag(tag)
            for item_id in sorted(corpus.tagging.items_for_tag(tag))[:5]:
                assert list(mapped.tagging.taggers_sorted(item_id, tag)) \
                    == list(corpus.tagging.taggers_sorted(item_id, tag))
                assert mapped.tagging.tag_frequency(item_id, tag) \
                    == corpus.tagging.tag_frequency(item_id, tag)

    def test_random_access_frequency(self, corpus, mapped):
        tag = corpus.tags()[0]
        for item_id in list(corpus.tagging.items_for_tag(tag))[:5]:
            assert mapped.inverted_index.frequency(item_id, tag) \
                == corpus.inverted_index.frequency(item_id, tag)
        assert mapped.inverted_index.frequency(999999, tag) == 0

    def test_social_index_round_trip(self, corpus, mapped):
        for user in corpus.social_index.users():
            for tag in corpus.social_index.tags_for(user):
                assert mapped.social_index.items_for(user, tag) \
                    == corpus.social_index.items_for(user, tag)

    def test_holdout_preserved(self, corpus, mapped):
        assert mapped.holdout is not None
        assert sorted(a.to_dict().items() for a in mapped.holdout.actions()) \
            == sorted(a.to_dict().items() for a in corpus.holdout.actions())

    def test_cold_paths_materialise_lazily(self, corpus, mapped):
        # users()/tags_for_user trigger the replay fallback and must agree.
        assert mapped.tagging.users() == corpus.tagging.users()
        user = corpus.tagging.users()[0]
        assert mapped.tagging.tags_for_user(user) == corpus.tagging.tags_for_user(user)
        assert mapped.tagging.tag_popularity() == corpus.tagging.tag_popularity()


class TestQueryEquivalence:
    """The Figure-6 query mix must be answered identically from the arena."""

    @pytest.fixture(scope="class")
    def mix(self, corpus):
        return generate_workload(corpus, WorkloadConfig(num_queries=12, k=5, seed=3))

    @pytest.mark.parametrize("algorithm", ["exact", "social-first", "ta", "nra"])
    def test_rankings_and_accounting_identical(self, corpus, mapped, mix, algorithm):
        reference = SocialSearchEngine(corpus)
        arena_engine = SocialSearchEngine(mapped)
        for query in mix:
            want = reference.run(query, algorithm=algorithm)
            got = arena_engine.run(query, algorithm=algorithm)
            assert [item.item_id for item in want.items] \
                == [item.item_id for item in got.items]
            assert [item.score for item in want.items] \
                == [item.score for item in got.items]
            assert want.accounting.to_dict() == got.accounting.to_dict()

    def test_workload_generation_identical(self, corpus, mapped):
        config = WorkloadConfig(num_queries=6, k=4, seed=9)
        ours = [query.to_dict() for query in generate_workload(corpus, config)]
        theirs = [query.to_dict() for query in generate_workload(mapped, config)]
        assert ours == theirs


class TestLiveUpdates:
    """Regression: live updates on an arena-backed dataset must not be lost.

    The mapped arrays describe the pre-update corpus; mutations land in the
    delta overlay and every read merges it with the frozen arrays, so the
    new actions are visible immediately without retiring the fast path.
    """

    def test_added_action_survives_index_rebuild(self, arena_path):
        from repro.storage import DatasetUpdater, TaggingAction

        dataset = Dataset.from_arena(arena_path)
        tag = dataset.tags()[0]
        before = dataset.num_actions
        updater = DatasetUpdater(dataset)
        updater.add_actions([TaggingAction(user_id=2, item_id=9999, tag=tag)])
        assert dataset.num_actions == before + 1
        assert 9999 in dataset.tagging.items_for_tag(tag)
        assert dataset.tagging.tag_frequency(9999, tag) == 1
        assert list(dataset.tagging.taggers_sorted(9999, tag)) == [2]
        # The rebuilt derived indexes see the new action too.
        assert dataset.inverted_index.frequency(9999, tag) == 1
        assert 9999 in dataset.social_index.items_for(2, tag)
        # And the pre-existing corpus is still fully there.
        engine = SocialSearchEngine(dataset)
        result = engine.search(seeker=1, tags=[tag], k=5)
        assert result.items

    def test_new_tag_via_update_is_queryable(self, arena_path):
        from repro.storage import DatasetUpdater, TaggingAction

        dataset = Dataset.from_arena(arena_path)
        updater = DatasetUpdater(dataset)
        updater.add_actions([TaggingAction(user_id=1, item_id=7777,
                                           tag="brand-new-tag")])
        assert "brand-new-tag" in dataset.tags()
        engine = SocialSearchEngine(dataset)
        result = engine.search(seeker=2, tags=["brand-new-tag"], k=3)
        assert [item.item_id for item in result.items] == [7777]


class TestShards:
    def test_shards_round_trip(self, corpus, arena_path):
        loaded = load_shards(arena_path)
        assert loaded is not None
        labels, shards = loaded
        assert len(labels) == corpus.num_users
        assert sum(len(shard) for shard in shards) == corpus.num_users

    def test_attach_shards_serves_identical_vectors(self, corpus, arena_path):
        inner = PersonalizedPageRankProximity(corpus.graph,
                                              ProximityConfig(measure="ppr"))
        fresh = MaterializedProximity(
            PersonalizedPageRankProximity(corpus.graph,
                                          ProximityConfig(measure="ppr")))
        assert attach_shards(fresh, arena_path)
        for seeker in range(0, corpus.num_users, 5):
            np.testing.assert_array_equal(fresh.vector_array(seeker),
                                          inner.vector_array(seeker))
        assert fresh.statistics.refinements == 0

    def test_attach_shards_rejects_measure_mismatch(self, corpus, arena_path):
        from repro.proximity.shortest_path import ShortestPathProximity

        mismatched = MaterializedProximity(
            ShortestPathProximity(corpus.graph,
                                  ProximityConfig(measure="shortest-path")))
        with pytest.raises(PersistenceError):
            attach_shards(mismatched, arena_path)
        assert not mismatched.built

    def test_arena_without_shards(self, corpus, tmp_path):
        path = tmp_path / "plain.arena"
        build_arena(corpus, path)
        assert load_shards(path) is None
        engine_dataset = Dataset.from_arena(path)
        assert engine_dataset.graph == corpus.graph


class TestDeltaOverlay:
    """The write path: delta-merged reads, compaction, and thread safety."""

    def _live(self, arena_path):
        from repro.storage import DatasetUpdater

        dataset = Dataset.from_arena(arena_path)
        return dataset, DatasetUpdater(dataset)

    def test_updates_stay_in_the_delta(self, arena_path):
        from repro.storage import TaggingAction

        dataset, updater = self._live(arena_path)
        tag = dataset.tags()[0]
        before = len(dataset.tagging)
        updater.add_actions([TaggingAction(user_id=2, item_id=4242, tag=tag)])
        assert dataset.tagging.delta_size == 1
        assert len(dataset.tagging) == before + 1
        assert dataset.tagging.tag_frequency(4242, tag) == 1
        assert dataset.tagging.contains(2, 4242, tag)
        # A merged segment combines frozen taggers with delta taggers.
        item = sorted(dataset.tagging.items_for_tag(tag) - {4242})[0]
        frozen = list(dataset.tagging.taggers_sorted(item, tag))
        updater.add_actions([TaggingAction(user_id=0, item_id=item, tag=tag)])
        merged = list(dataset.tagging.taggers_sorted(item, tag))
        assert merged == sorted(set(frozen) | {0})

    def test_duplicate_of_frozen_action_rejected(self, arena_path):
        from repro.storage import TaggingAction

        dataset, updater = self._live(arena_path)
        existing = dataset.tagging.actions()[0]
        summary = updater.add_actions([TaggingAction(
            user_id=existing.user_id, item_id=existing.item_id,
            tag=existing.tag, timestamp=999_999)])
        assert summary.actions_added == 0
        assert summary.actions_ignored == 1
        assert dataset.tagging.delta_size == 0

    def test_compaction_folds_and_preserves_reads(self, arena_path):
        from repro.storage import TaggingAction

        dataset, updater = self._live(arena_path)
        tag = dataset.tags()[0]
        updater.add_actions([
            TaggingAction(user_id=1, item_id=8000 + i, tag=tag, timestamp=i)
            for i in range(5)
        ] + [TaggingAction(user_id=2, item_id=8000, tag="compaction-tag")])
        snapshot = {
            "len": len(dataset.tagging),
            "tags": dataset.tagging.tags(),
            "popularity": dataset.tagging.tag_popularity(),
            "freq": dataset.tagging.tag_frequency(8000, tag),
            "items": dataset.tagging.items_for_tag(tag),
            "profile": dataset.social_index.items_for(1, tag),
        }
        assert updater.pending_delta() == 6
        assert updater.compact() == 6
        assert updater.pending_delta() == 0
        assert updater.epoch == 1
        assert dataset.tagging.delta_size == 0
        assert dataset.social_index.overlay_size == 0
        assert snapshot == {
            "len": len(dataset.tagging),
            "tags": dataset.tagging.tags(),
            "popularity": dataset.tagging.tag_popularity(),
            "freq": dataset.tagging.tag_frequency(8000, tag),
            "items": dataset.tagging.items_for_tag(tag),
            "profile": dataset.social_index.items_for(1, tag),
        }
        # Nothing pending: a second compact is a no-op.
        assert updater.compact() == 0
        assert updater.epoch == 1

    def test_compact_refuses_inconsistent_endorsers(self, arena_path):
        from repro.errors import StorageError
        from repro.storage import TaggingAction

        dataset, _updater = self._live(arena_path)
        tag = dataset.tags()[0]
        # Bypassing the updater leaves the endorser index stale; folding the
        # delta against it would lose the actions.
        dataset.tagging.add(TaggingAction(user_id=1, item_id=31337, tag=tag))
        with pytest.raises(StorageError):
            dataset.tagging.compact(dataset.endorser_index)

    def test_concurrent_reads_during_mutation(self, arena_path):
        """S2 regression: readers racing the first add see consistent state."""
        import threading

        from repro.storage import DatasetUpdater, TaggingAction

        dataset = Dataset.from_arena(arena_path)
        updater = DatasetUpdater(dataset)
        tag = dataset.tags()[0]
        item = sorted(dataset.tagging.items_for_tag(tag))[0]
        base_frequency = dataset.tagging.tag_frequency(item, tag)
        base_len = len(dataset.tagging)
        errors = []
        observed_lengths = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    length = len(dataset.tagging)
                    assert base_len <= length <= base_len + 64
                    observed_lengths.append(length)
                    frequency = dataset.tagging.tag_frequency(item, tag)
                    assert frequency >= base_frequency
                    taggers = list(dataset.tagging.taggers_sorted(item, tag))
                    assert taggers == sorted(taggers)
                    dataset.tagging.contains(0, item, tag)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for i in range(64):
                updater.add_actions([TaggingAction(
                    user_id=i % dataset.num_users, item_id=60_000 + i,
                    tag=tag, timestamp=i)])
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
        assert not errors
        assert len(dataset.tagging) == base_len + 64

    def test_concurrent_cold_path_materialisation(self, arena_path):
        """Two threads racing the replay must not duplicate actions."""
        import threading

        dataset = Dataset.from_arena(arena_path)
        expected = len(dataset.tagging)
        results = []

        def cold_reader():
            results.append(len(dataset.tagging.actions()))

        threads = [threading.Thread(target=cold_reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert results == [expected] * 4
