"""Round-trip tests for the memory-mapped index arena."""

import numpy as np
import pytest

from repro import SocialSearchEngine
from repro.config import EngineConfig, ProximityConfig, WorkloadConfig
from repro.errors import PersistenceError
from repro.proximity import MaterializedProximity
from repro.proximity.pagerank import PersonalizedPageRankProximity
from repro.storage import Dataset, build_arena, load_shards
from repro.storage.arena import Arena, attach_shards, write_arena
from repro.workload import generate_workload
from repro.workload.datasets import tiny_dataset


@pytest.fixture(scope="module")
def corpus():
    return tiny_dataset(holdout_fraction=0.2)


@pytest.fixture(scope="module")
def arena_path(corpus, tmp_path_factory):
    path = tmp_path_factory.mktemp("arena") / "tiny.arena"
    inner = PersonalizedPageRankProximity(corpus.graph, ProximityConfig(measure="ppr"))
    materialized = MaterializedProximity(inner)
    materialized.build()
    build_arena(corpus, path, proximity=materialized)
    return path


@pytest.fixture()
def mapped(arena_path):
    return Dataset.from_arena(arena_path)


class TestFormat:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.arena"
        path.write_bytes(b"not an arena at all" * 4)
        with pytest.raises(PersistenceError):
            Arena.open(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "short.arena"
        path.write_bytes(b"RPR")
        with pytest.raises(PersistenceError):
            Arena.open(path)

    def test_unknown_array_name_raises(self, arena_path):
        arena = Arena.open(arena_path)
        with pytest.raises(PersistenceError):
            arena.array("no/such/array")

    def test_write_and_reopen_raw_arrays(self, tmp_path):
        path = tmp_path / "raw.arena"
        payload = {
            "small": np.arange(7, dtype=np.int64),
            "floats": np.linspace(0.0, 1.0, 13),
            "empty": np.zeros(0, dtype=np.int64),
        }
        write_arena(path, {"hello": "world"}, payload)
        arena = Arena.open(path)
        assert arena.meta["hello"] == "world"
        for name, array in payload.items():
            np.testing.assert_array_equal(arena.array(name), array)


class TestRoundTrip:
    def test_structural_equality(self, corpus, mapped):
        assert mapped.graph == corpus.graph
        assert mapped.tags() == corpus.tags()
        assert mapped.num_actions == corpus.num_actions
        assert len(mapped.items) == len(corpus.items)
        assert len(mapped.users) == len(corpus.users)
        for tag in corpus.tags():
            ours = corpus.inverted_index.arrays(tag)
            theirs = mapped.inverted_index.arrays(tag)
            np.testing.assert_array_equal(ours.item_ids, theirs.item_ids)
            np.testing.assert_array_equal(ours.frequencies, theirs.frequencies)
            assert corpus.inverted_index.max_frequency(tag) \
                == mapped.inverted_index.max_frequency(tag)

    def test_endorser_index_round_trip(self, corpus, mapped):
        for tag in corpus.tags():
            ours = corpus.endorser_index.for_tag(tag)
            theirs = mapped.endorser_index.for_tag(tag)
            if ours is None:
                assert theirs is None
                continue
            np.testing.assert_array_equal(ours.item_ids, theirs.item_ids)
            np.testing.assert_array_equal(ours.offsets, theirs.offsets)
            np.testing.assert_array_equal(ours.taggers, theirs.taggers)

    def test_tagging_hot_paths(self, corpus, mapped):
        for tag in corpus.tags()[:5]:
            assert mapped.tagging.items_for_tag(tag) == corpus.tagging.items_for_tag(tag)
            for item_id in sorted(corpus.tagging.items_for_tag(tag))[:5]:
                assert list(mapped.tagging.taggers_sorted(item_id, tag)) \
                    == list(corpus.tagging.taggers_sorted(item_id, tag))
                assert mapped.tagging.tag_frequency(item_id, tag) \
                    == corpus.tagging.tag_frequency(item_id, tag)

    def test_random_access_frequency(self, corpus, mapped):
        tag = corpus.tags()[0]
        for item_id in list(corpus.tagging.items_for_tag(tag))[:5]:
            assert mapped.inverted_index.frequency(item_id, tag) \
                == corpus.inverted_index.frequency(item_id, tag)
        assert mapped.inverted_index.frequency(999999, tag) == 0

    def test_social_index_round_trip(self, corpus, mapped):
        for user in corpus.social_index.users():
            for tag in corpus.social_index.tags_for(user):
                assert mapped.social_index.items_for(user, tag) \
                    == corpus.social_index.items_for(user, tag)

    def test_holdout_preserved(self, corpus, mapped):
        assert mapped.holdout is not None
        assert sorted(a.to_dict().items() for a in mapped.holdout.actions()) \
            == sorted(a.to_dict().items() for a in corpus.holdout.actions())

    def test_cold_paths_materialise_lazily(self, corpus, mapped):
        # users()/tags_for_user trigger the replay fallback and must agree.
        assert mapped.tagging.users() == corpus.tagging.users()
        user = corpus.tagging.users()[0]
        assert mapped.tagging.tags_for_user(user) == corpus.tagging.tags_for_user(user)
        assert mapped.tagging.tag_popularity() == corpus.tagging.tag_popularity()


class TestQueryEquivalence:
    """The Figure-6 query mix must be answered identically from the arena."""

    @pytest.fixture(scope="class")
    def mix(self, corpus):
        return generate_workload(corpus, WorkloadConfig(num_queries=12, k=5, seed=3))

    @pytest.mark.parametrize("algorithm", ["exact", "social-first", "ta", "nra"])
    def test_rankings_and_accounting_identical(self, corpus, mapped, mix, algorithm):
        reference = SocialSearchEngine(corpus)
        arena_engine = SocialSearchEngine(mapped)
        for query in mix:
            want = reference.run(query, algorithm=algorithm)
            got = arena_engine.run(query, algorithm=algorithm)
            assert [item.item_id for item in want.items] \
                == [item.item_id for item in got.items]
            assert [item.score for item in want.items] \
                == [item.score for item in got.items]
            assert want.accounting.to_dict() == got.accounting.to_dict()

    def test_workload_generation_identical(self, corpus, mapped):
        config = WorkloadConfig(num_queries=6, k=4, seed=9)
        ours = [query.to_dict() for query in generate_workload(corpus, config)]
        theirs = [query.to_dict() for query in generate_workload(mapped, config)]
        assert ours == theirs


class TestLiveUpdates:
    """Regression: live updates on an arena-backed dataset must not be lost.

    The mapped arrays describe the pre-update corpus; the first mutation
    has to replay the log into the in-memory store and stop answering
    reads from the arrays, or the rebuilt indexes silently drop the new
    actions.
    """

    def test_added_action_survives_index_rebuild(self, arena_path):
        from repro.storage import DatasetUpdater, TaggingAction

        dataset = Dataset.from_arena(arena_path)
        tag = dataset.tags()[0]
        before = dataset.num_actions
        updater = DatasetUpdater(dataset)
        updater.add_actions([TaggingAction(user_id=2, item_id=9999, tag=tag)])
        assert dataset.num_actions == before + 1
        assert 9999 in dataset.tagging.items_for_tag(tag)
        assert dataset.tagging.tag_frequency(9999, tag) == 1
        assert list(dataset.tagging.taggers_sorted(9999, tag)) == [2]
        # The rebuilt derived indexes see the new action too.
        assert dataset.inverted_index.frequency(9999, tag) == 1
        assert 9999 in dataset.social_index.items_for(2, tag)
        # And the pre-existing corpus is still fully there.
        engine = SocialSearchEngine(dataset)
        result = engine.search(seeker=1, tags=[tag], k=5)
        assert result.items

    def test_new_tag_via_update_is_queryable(self, arena_path):
        from repro.storage import DatasetUpdater, TaggingAction

        dataset = Dataset.from_arena(arena_path)
        updater = DatasetUpdater(dataset)
        updater.add_actions([TaggingAction(user_id=1, item_id=7777,
                                           tag="brand-new-tag")])
        assert "brand-new-tag" in dataset.tags()
        engine = SocialSearchEngine(dataset)
        result = engine.search(seeker=2, tags=["brand-new-tag"], k=3)
        assert [item.item_id for item in result.items] == [7777]


class TestShards:
    def test_shards_round_trip(self, corpus, arena_path):
        loaded = load_shards(arena_path)
        assert loaded is not None
        labels, shards = loaded
        assert len(labels) == corpus.num_users
        assert sum(len(shard) for shard in shards) == corpus.num_users

    def test_attach_shards_serves_identical_vectors(self, corpus, arena_path):
        inner = PersonalizedPageRankProximity(corpus.graph,
                                              ProximityConfig(measure="ppr"))
        fresh = MaterializedProximity(
            PersonalizedPageRankProximity(corpus.graph,
                                          ProximityConfig(measure="ppr")))
        assert attach_shards(fresh, arena_path)
        for seeker in range(0, corpus.num_users, 5):
            np.testing.assert_array_equal(fresh.vector_array(seeker),
                                          inner.vector_array(seeker))
        assert fresh.statistics.refinements == 0

    def test_attach_shards_rejects_measure_mismatch(self, corpus, arena_path):
        from repro.proximity.shortest_path import ShortestPathProximity

        mismatched = MaterializedProximity(
            ShortestPathProximity(corpus.graph,
                                  ProximityConfig(measure="shortest-path")))
        with pytest.raises(PersistenceError):
            attach_shards(mismatched, arena_path)
        assert not mismatched.built

    def test_arena_without_shards(self, corpus, tmp_path):
        path = tmp_path / "plain.arena"
        build_arena(corpus, path)
        assert load_shards(path) is None
        engine_dataset = Dataset.from_arena(path)
        assert engine_dataset.graph == corpus.graph
