"""Anytime/approximate serving properties.

The anytime tier may stop scanning early, but its contract is strict:

* the returned error bound is *admissible* — the true k-th exact score
  never exceeds the returned k-th score plus the bound, for every budget,
  on every corpus, through both the materialized and the unmaterialized
  proximity paths;
* a budget that covers the whole sweep is not "approximately exact", it is
  **bit-identical** to the exact scan — rankings, scores and access
  accounting — and says so (``is_exact``, zero bound);
* landmark triangulation never under-estimates a distance (the sketch
  stays admissible for pruning), checked at the distance level where no
  floor or hop-cap truncation can blur the comparison;
* landmark selection is a total order: equal-degree ties break by user id.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.config import DatasetConfig, EngineConfig, ProximityConfig, ScoringConfig
from repro.core import SocialSearchEngine
from repro.core.query import QueryBudget
from repro.eval.quality import result_signature
from repro.graph import SocialGraph
from repro.graph.traversal import dijkstra_iter
from repro.proximity.landmarks import LandmarkProximity, select_landmarks
from repro.workload import build_dataset
from repro.workload.sampler import dataset_workload

BUDGETS = (1, 8, 32, 1024)


@pytest.fixture(scope="module")
def corpus():
    return build_dataset(DatasetConfig(
        name="anytime-prop", num_users=80, num_items=240, num_tags=12,
        num_actions=1600, graph_model="community", avg_degree=6.0,
        homophily=0.7, tag_locality=0.8, seed=17))


def _partitioned_engine(dataset, alpha, materialize):
    engine = SocialSearchEngine(dataset, EngineConfig(
        algorithm="exact",
        scoring=ScoringConfig(alpha=alpha, vectorized=True),
        proximity=ProximityConfig(measure="ppr", materialize=materialize,
                                  cache_size=0 if not materialize else 128),
        partitions=4))
    if materialize:
        engine.proximity.build()
    return engine


class TestAnytimeBoundAdmissible:
    @pytest.mark.parametrize("alpha", [0.2, 0.5])
    @pytest.mark.parametrize("materialize", [True, False])
    def test_true_kth_never_exceeds_returned_plus_bound(
            self, corpus, alpha, materialize):
        engine = _partitioned_engine(corpus, alpha, materialize)
        queries = dataset_workload(corpus, num_queries=12, k=5, seed=3)
        for query in queries:
            exact = engine.run(query)
            if not exact.items:
                continue
            true_kth = exact.items[-1].score
            for cap in BUDGETS:
                result = engine.run(
                    replace(query, budget=QueryBudget(max_scanned=cap)))
                assert result.error_bound is not None
                assert result.error_bound >= 0.0
                returned_kth = (result.items[-1].score
                                if len(result.items) >= len(exact.items)
                                else 0.0)
                assert true_kth <= returned_kth + result.error_bound + 1e-9, (
                    f"bound not admissible: budget={cap} seeker="
                    f"{query.seeker} tags={query.tags}: true kth {true_kth} "
                    f"> returned {returned_kth} + bound {result.error_bound}")

    def test_exact_claims_are_bit_identical(self, corpus):
        """Whenever a budgeted scan says ``is_exact`` it must *be* exact."""
        engine = _partitioned_engine(corpus, 0.5, True)
        queries = dataset_workload(corpus, num_queries=12, k=5, seed=3)
        for query in queries:
            exact = engine.run(query)
            for cap in BUDGETS:
                result = engine.run(
                    replace(query, budget=QueryBudget(max_scanned=cap)))
                if result.is_exact:
                    assert result.error_bound == 0.0
                    assert result_signature(result) == result_signature(exact)


class TestFullBudgetBitIdentity:
    @pytest.mark.parametrize("alpha", [0.2, 0.5])
    @pytest.mark.parametrize("materialize", [True, False])
    def test_covering_budget_reproduces_exact_scan(
            self, corpus, alpha, materialize):
        engine = _partitioned_engine(corpus, alpha, materialize)
        queries = dataset_workload(corpus, num_queries=12, k=5, seed=3)
        cover = QueryBudget(max_scanned=corpus.num_items + 1)
        for query in queries:
            exact = engine.run(query)
            result = engine.run(replace(query, budget=cover))
            assert result.is_exact
            assert result.error_bound == 0.0
            assert result_signature(result) == result_signature(exact)


class TestLandmarkTriangulation:
    def _graphs(self):
        for seed in (1, 2, 3):
            dataset = build_dataset(DatasetConfig(
                name=f"tri-{seed}", num_users=40, num_items=60, num_tags=6,
                num_actions=300, graph_model="community", avg_degree=5.0,
                homophily=0.6, seed=seed))
            yield dataset.graph

    def test_triangulated_distance_never_below_true_distance(self):
        for graph in self._graphs():
            n = graph.num_users
            for count in (1, 3, 8):
                sketch = LandmarkProximity(graph, ProximityConfig(),
                                           num_landmarks=count)
                _ids, distances, _hops = sketch.sketch_arrays()
                for seeker in range(n):
                    true = np.full(n, np.inf, dtype=np.float64)
                    for node, dist, _hop in dijkstra_iter(graph, seeker):
                        true[node] = dist
                    estimated = (distances[:, seeker][:, None]
                                 + distances).min(axis=0)
                    # inf estimates (unreachable through any landmark) are
                    # trivially admissible over-estimates.
                    assert np.all(estimated >= true - 1e-9), (
                        f"triangulation under-estimated a distance: "
                        f"seeker={seeker}, landmarks={count}")


class TestLandmarkSelectionDeterministic:
    def test_equal_degree_ties_break_by_user_id(self):
        # A 6-cycle: every user has degree 2, so the order is pure
        # tie-breaking and must be ascending user id.
        edges = [(i, (i + 1) % 6, 1.0) for i in range(6)]
        graph = SocialGraph.from_edges(6, edges)
        assert select_landmarks(graph, 3, strategy="degree") == [0, 1, 2]

    def test_selection_is_reproducible(self):
        for seed in (1, 4):
            dataset = build_dataset(DatasetConfig(
                name=f"det-{seed}", num_users=50, num_items=80, num_tags=6,
                num_actions=400, graph_model="barabasi-albert",
                avg_degree=6.0, seed=seed))
            first = select_landmarks(dataset.graph, 8, strategy="degree")
            second = select_landmarks(dataset.graph, 8, strategy="degree")
            assert first == second
            sketch_a = LandmarkProximity(dataset.graph, ProximityConfig(),
                                         num_landmarks=8)
            sketch_b = LandmarkProximity(dataset.graph, ProximityConfig(),
                                         num_landmarks=8)
            for left, right in zip(sketch_a.sketch_arrays(),
                                   sketch_b.sketch_arrays()):
                assert np.array_equal(left, right)
