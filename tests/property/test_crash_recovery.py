"""Crash-recovery property: kill at every WAL record boundary, lose nothing.

The schedule is exhaustive, not sampled: a reference run counts how many
WAL records the update trace appends, then one fresh durable store per
boundary ``N`` is killed exactly at the ``N``-th append (both *before* the
record reaches the log and *after* it is durable but unacknowledged), plus
a torn-final-record run.  Every recovery must

* retain every acknowledged update (checked against the raw WAL bytes,
  independently of the recovery code), and
* answer queries **bit-identically** (rankings, scores, access accounting)
  to a dataset rebuilt from scratch from base + the durable log, across
  the online, materialized and batched execution paths.
"""

import pytest

from repro.config import EngineConfig, ProximityConfig, ScoringConfig
from repro.core import Query, SocialSearchEngine
from repro.graph import SocialGraphBuilder
from repro.obs.faults import InjectedCrash, faults, tear_final_record
from repro.storage import Dataset, TaggingAction
from repro.storage.durable import DurableStore, read_manifest
from repro.storage.wal import scan_wal

#: The update trace: batches of actions plus interleaved friendships over
#: the 6-user hand dataset (one WAL record per effective call).
BATCHES = [
    ([TaggingAction(0, 100, "rock", timestamp=101),
      TaggingAction(4, 103, "jazz", timestamp=102)], []),
    ([TaggingAction(2, 104, "vinyl", timestamp=103)], [(2, 5, 0.7)]),
    ([TaggingAction(5, 100, "rock", timestamp=104),
      TaggingAction(1, 102, "vinyl", timestamp=105)], [(0, 4, 0.4)]),
    ([TaggingAction(3, 104, "rock", timestamp=106)], []),
]

QUERIES = [Query(seeker=0, tags=("jazz",), k=5),
           Query(seeker=4, tags=("rock",), k=5),
           Query(seeker=2, tags=("vinyl", "jazz"), k=4)]


@pytest.fixture(autouse=True)
def clean_faults():
    faults.reset()
    yield
    faults.reset()


def _engine(dataset, materialize=False):
    engine = SocialSearchEngine(dataset, EngineConfig(
        algorithm="exact",
        scoring=ScoringConfig(alpha=0.5),
        proximity=ProximityConfig(measure="shortest-path",
                                  materialize=materialize, cache_size=0),
    ))
    if materialize:
        engine.proximity.build()
    return engine


def _signature(result):
    return ([(item.item_id, item.score) for item in result.items],
            result.accounting.to_dict())


def _apply_batches(store):
    """Drive the trace; returns the acked (actions, edges) prefix."""
    acked_actions, acked_edges = [], []
    for actions, edges in BATCHES:
        store.updater.add_actions(actions)
        acked_actions.extend(actions)
        if edges:
            store.updater.add_friendships(edges)
            acked_edges.extend(edges)
    return acked_actions, acked_edges


def _assert_recovery_exact(directory, hand_dataset, base_actions, base_edges,
                           acked_actions, acked_edges):
    """The two recovery properties, shared by every kill schedule."""
    # 1. Ack implies durable: scan the surviving WAL segment directly.
    manifest = read_manifest(directory)
    scan = scan_wal(directory / str(manifest["wal"]))
    durable_actions, durable_edges = [], []
    for record in scan.records:
        if record.kind == "actions":
            durable_actions.extend(record.actions())
        elif record.kind == "friendships":
            durable_edges.extend(record.friendships())
    durable_keys = {(a.user_id, a.item_id, a.tag) for a in durable_actions}
    base_keys = {(a.user_id, a.item_id, a.tag) for a in base_actions}
    for action in acked_actions:
        assert (action.user_id, action.item_id, action.tag) \
            in durable_keys | base_keys, f"acked action lost: {action}"
    durable_edge_keys = {(min(u, v), max(u, v)) for u, v, _ in durable_edges}
    base_edge_keys = {(min(u, v), max(u, v)) for u, v, _ in base_edges}
    for u, v, _ in acked_edges:
        assert (min(u, v), max(u, v)) in durable_edge_keys | base_edge_keys, \
            f"acked edge lost: ({u}, {v})"

    # 2. Bit-identical recovery: the reopened store answers exactly like a
    #    from-scratch rebuild of base + durable log, on every path.
    recovered = DurableStore.open(directory)
    try:
        builder = SocialGraphBuilder(hand_dataset.num_users)
        for u, v, w in base_edges:
            builder.add_edge(u, v, w)
        for u, v, w in durable_edges:
            builder.add_edge(u, v, w)
        fresh = Dataset.build(builder.build(),
                              list(base_actions) + durable_actions,
                              name="fresh")
        baseline = [_signature(_engine(fresh).run(q)) for q in QUERIES]
        online = _engine(recovered.dataset)
        served = _engine(recovered.dataset, materialize=True)
        observed = {
            "online": [_signature(online.run(q)) for q in QUERIES],
            "materialized": [_signature(served.run(q)) for q in QUERIES],
            "batched": [_signature(r) for r in served.run_batch(QUERIES)],
        }
        for path, signatures in observed.items():
            assert signatures == baseline, f"{path} diverged after recovery"
    finally:
        recovered.close()


def _reference_record_count(hand_dataset, tmp_path):
    store = DurableStore.initialise(hand_dataset, tmp_path / "reference")
    _apply_batches(store)
    count = store.wal.records_appended
    store.close()
    return count


@pytest.mark.parametrize("point", ["wal.before_append", "wal.after_append"])
def test_kill_at_every_record_boundary(point, hand_dataset, tmp_path):
    base_actions = list(hand_dataset.tagging.actions())
    base_edges = list(hand_dataset.graph.iter_edges())
    total_records = _reference_record_count(hand_dataset, tmp_path)
    assert total_records == 6  # 4 action batches + 2 friendship batches

    for boundary in range(total_records):
        directory = tmp_path / f"{point.replace('.', '-')}-{boundary}"
        store = DurableStore.initialise(hand_dataset, directory)
        acked_actions, acked_edges = [], []
        faults.arm(point, after=boundary)
        try:
            for actions, edges in BATCHES:
                store.updater.add_actions(actions)
                acked_actions.extend(actions)
                if edges:
                    store.updater.add_friendships(edges)
                    acked_edges.extend(edges)
        except InjectedCrash:
            pass
        else:
            pytest.fail(f"boundary {boundary}: the kill never fired")
        finally:
            faults.reset()
        del store  # abandoned mid-write, exactly like a killed process
        _assert_recovery_exact(directory, hand_dataset, base_actions,
                               base_edges, acked_actions, acked_edges)


def test_torn_final_record_recovers_to_the_acked_prefix(hand_dataset,
                                                        tmp_path):
    base_actions = list(hand_dataset.tagging.actions())
    base_edges = list(hand_dataset.graph.iter_edges())
    directory = tmp_path / "torn"
    store = DurableStore.initialise(hand_dataset, directory)
    acked_actions, acked_edges = _apply_batches(store)
    # One more record reaches the disk but is torn mid-write: the caller
    # never saw an acknowledgement, so recovery must drop it.
    store.wal.append_actions([TaggingAction(5, 101, "jazz",
                                            timestamp=999)])
    tear_final_record(store.wal.path, keep_bytes=6)
    del store
    _assert_recovery_exact(directory, hand_dataset, base_actions, base_edges,
                           acked_actions, acked_edges)

    reopened = DurableStore.open(directory)
    try:
        assert not reopened.dataset.tagging.contains(5, 101, "jazz")
    finally:
        reopened.close()
