"""Update-while-serving equivalence: live maintenance == fresh rebuild.

The write path's contract: after any interleaving of live updates (tagging
actions, friendships, user growth) applied through
:class:`~repro.storage.updates.DatasetUpdater` — with a
:class:`~repro.service.QueryService` watching it, so selective invalidation
and shard repair run exactly as they would in production — every observable
of a query answer (ranking, exact scores, access accounting) must be
identical to a dataset rebuilt from scratch from the merged action/edge
log.  That must hold for the online, materialized and batched execution
paths, and for both the in-memory and the arena-backed (delta-overlay)
storage.
"""

import numpy as np
import pytest

from repro import SocialSearchEngine
from repro.config import (
    DatasetConfig,
    EngineConfig,
    ProximityConfig,
    ScoringConfig,
    ServiceConfig,
    WorkloadConfig,
)
from repro.core.query import Query
from repro.graph import SocialGraphBuilder
from repro.service import QueryService
from repro.storage import Dataset, DatasetUpdater, TaggingAction
from repro.workload import build_dataset, generate_workload

ALGORITHMS = ("exact", "social-first", "ta")
NUM_USERS = 50


def _base_dataset():
    return build_dataset(DatasetConfig(
        name="update-equivalence",
        num_users=NUM_USERS,
        num_items=100,
        num_tags=12,
        num_actions=600,
        avg_degree=5.0,
        homophily=0.5,
        seed=19,
    ))


def _live_dataset(backing, base, tmp_path):
    if backing == "memory":
        # An independent rebuild so mutations never leak into ``base``.
        builder = SocialGraphBuilder(base.num_users)
        for u, v, w in base.graph.iter_edges():
            builder.add_edge(u, v, w)
        return Dataset.build(builder.build(), base.tagging.actions(),
                             name=base.name)
    path = tmp_path / "live.arena"
    base.to_arena(path)
    return Dataset.from_arena(path)


def _updates(base):
    """A deterministic interleaving of every update kind."""
    rng = np.random.default_rng(99)
    tags = base.tags()
    items = [item.item_id for item in base.items]
    new_user = base.num_users  # added mid-stream
    steps = []
    timestamp = 500_000
    for round_index in range(4):
        actions = []
        for _ in range(20):
            timestamp += 1
            actions.append(TaggingAction(
                user_id=int(rng.integers(0, base.num_users)),
                item_id=int(items[int(rng.integers(0, len(items)))])
                if rng.random() < 0.7 else 5_000 + timestamp,
                tag=str(tags[int(rng.integers(0, len(tags)))])
                if rng.random() < 0.9 else f"fresh-tag-{round_index}",
                timestamp=timestamp,
            ))
        steps.append(("actions", actions))
        if round_index == 1:
            steps.append(("users", 1))
            steps.append(("friendships", [(new_user, 0, 0.9),
                                          (new_user, 7, 0.4)]))
            timestamp += 1
            steps.append(("actions", [TaggingAction(
                user_id=new_user, item_id=items[0], tag=str(tags[0]),
                timestamp=timestamp)]))
        if round_index == 2:
            steps.append(("friendships", [
                (int(rng.integers(0, base.num_users)),
                 int(rng.integers(0, base.num_users)), 0.6)
                for _ in range(3)]))
    return steps


def _apply(updater, steps):
    added_actions, added_edges, added_users = [], [], 0
    for kind, payload in steps:
        if kind == "actions":
            updater.add_actions(payload)
            added_actions.extend(payload)
        elif kind == "friendships":
            payload = [(u, v, w) for u, v, w in payload if u != v]
            updater.add_friendships(payload)
            added_edges.extend(payload)
        elif kind == "users":
            updater.add_users(payload)
            added_users += payload
    return added_actions, added_edges, added_users


def _fresh_rebuild(base, added_actions, added_edges, added_users):
    builder = SocialGraphBuilder(base.num_users + added_users)
    for u, v, w in base.graph.iter_edges():
        builder.add_edge(u, v, w)
    for u, v, w in added_edges:
        builder.add_edge(u, v, w)
    return Dataset.build(builder.build(),
                         base.tagging.actions() + added_actions,
                         name=base.name)


def _signature(result):
    return ([item.item_id for item in result.items],
            [item.score for item in result.items],
            result.accounting.to_dict())


def _queries(dataset, new_user):
    queries = list(generate_workload(
        dataset, WorkloadConfig(num_queries=8, k=5, seed=7)))
    # The mid-stream user must be a first-class seeker too.
    queries.append(Query(seeker=new_user, tags=(dataset.tags()[0],), k=5))
    return queries


@pytest.mark.parametrize("backing", ("memory", "arena"))
@pytest.mark.parametrize("measure", ("katz", "ppr"))
def test_interleaved_updates_match_fresh_rebuild(backing, measure, tmp_path):
    base = _base_dataset()
    live = _live_dataset(backing, base, tmp_path)
    engine = SocialSearchEngine(live, EngineConfig(
        algorithm="exact",
        scoring=ScoringConfig(alpha=0.5),
        proximity=ProximityConfig(measure=measure, materialize=True),
    ))
    engine.proximity.build()
    updater = DatasetUpdater(live)
    with QueryService(engine, ServiceConfig(workers=1, cache_capacity=16),
                      updater=updater):
        added_actions, added_edges, added_users = _apply(updater, _updates(base))

    fresh = _fresh_rebuild(base, added_actions, added_edges, added_users)
    assert live.num_actions == fresh.num_actions
    assert live.graph == fresh.graph

    fresh_online = SocialSearchEngine(fresh, EngineConfig(
        algorithm="exact", scoring=ScoringConfig(alpha=0.5),
        proximity=ProximityConfig(measure=measure, cache_size=0)))
    live_online = SocialSearchEngine(live, EngineConfig(
        algorithm="exact", scoring=ScoringConfig(alpha=0.5),
        proximity=ProximityConfig(measure=measure, cache_size=0)))

    queries = _queries(fresh, base.num_users)
    for algorithm in ALGORITHMS:
        baseline = [_signature(fresh_online.run(q, algorithm=algorithm))
                    for q in queries]
        assert [_signature(live_online.run(q, algorithm=algorithm))
                for q in queries] == baseline, f"online/{algorithm}"
        assert [_signature(engine.run(q, algorithm=algorithm))
                for q in queries] == baseline, f"materialized/{algorithm}"
        assert [_signature(r)
                for r in engine.run_batch(queries, algorithm=algorithm)] \
            == baseline, f"batched/{algorithm}"


def test_arena_fast_path_survives_updates(tmp_path):
    """Updates must not collapse the arena store to the Python fallback."""
    base = _base_dataset()
    live = _live_dataset("arena", base, tmp_path)
    engine = SocialSearchEngine(live, EngineConfig(
        algorithm="exact",
        proximity=ProximityConfig(measure="katz", materialize=True)))
    engine.proximity.build()
    rows_before = engine.proximity.num_rows()
    updater = DatasetUpdater(live)
    action_steps = [
        ("actions", [a for a in payload if a.user_id < base.num_users])
        for kind, payload in _updates(base) if kind == "actions"
    ]
    with QueryService(engine, ServiceConfig(workers=1), updater=updater):
        recorded = sum(updater.add_actions(payload).actions_added
                       for _kind, payload in action_steps)
    # The delta overlay absorbed the actions; the frozen arrays still serve.
    assert recorded > 0
    assert live.tagging.delta_size == recorded
    # Tagging-only updates leave every shard row in place.
    assert engine.proximity.num_rows() == rows_before
    # Compaction folds the delta and changes no answer.
    query = generate_workload(live, WorkloadConfig(num_queries=1, k=5,
                                                   seed=7))[0]
    before = _signature(engine.run(query))
    assert updater.compact() == recorded
    assert updater.epoch == 1
    assert live.tagging.delta_size == 0
    assert _signature(engine.run(query)) == before


def test_compaction_mid_stream_is_equivalent(tmp_path):
    """Fold the delta halfway through the update stream; answers match."""
    base = _base_dataset()
    live = _live_dataset("arena", base, tmp_path)
    engine = SocialSearchEngine(live, EngineConfig(
        algorithm="exact",
        proximity=ProximityConfig(measure="katz", materialize=True)))
    engine.proximity.build()
    updater = DatasetUpdater(live)
    steps = _updates(base)
    middle = len(steps) // 2
    with QueryService(engine, ServiceConfig(workers=1), updater=updater):
        first = _apply(updater, steps[:middle])
        updater.compact()
        second = _apply(updater, steps[middle:])
    added_actions = first[0] + second[0]
    added_edges = first[1] + second[1]
    added_users = first[2] + second[2]
    fresh = _fresh_rebuild(base, added_actions, added_edges, added_users)
    fresh_online = SocialSearchEngine(fresh, EngineConfig(
        algorithm="exact",
        proximity=ProximityConfig(measure="katz", cache_size=0)))
    for query in _queries(fresh, base.num_users):
        assert _signature(engine.run(query)) \
            == _signature(fresh_online.run(query))
