"""Equivalence properties of partitioned scatter-gather execution.

The contract the planner/executor split rests on: corpus partitioning is
an *execution strategy*, never a different algorithm.  For every top-k
algorithm, every storage backing (python dict stores and the mmap arena),
and before and after live updates, an engine configured with P partitions
must return identical rankings, identical scores and identical access
accounting to the classic single-partition engine — whether queries run
one at a time or through the batched executor.
"""

import pytest

from repro import SocialSearchEngine
from repro.config import (
    DatasetConfig,
    EngineConfig,
    ProximityConfig,
    ScoringConfig,
    ServiceConfig,
    WorkloadConfig,
)
from repro.storage import Dataset, DatasetUpdater, TaggingAction
from repro.workload import build_dataset, generate_workload

ALGORITHMS = ("exact", "social-first", "ta", "nra", "hybrid")
PARTITION_COUNTS = (2, 3, 4)


def _signature(result):
    return ([item.item_id for item in result.items],
            [item.score for item in result.items],
            result.accounting.to_dict())


def _engine(dataset, partitions, materialize=True, measure="ppr",
            partition_layout=None):
    proximity = ProximityConfig(measure=measure, materialize=True) \
        if materialize else ProximityConfig(measure=measure, cache_size=16)
    engine = SocialSearchEngine(dataset, EngineConfig(
        algorithm="exact",
        scoring=ScoringConfig(alpha=0.5),
        proximity=proximity,
        partitions=partitions,
    ), partitions=partition_layout)
    if materialize:
        engine.proximity.build()
    return engine


@pytest.fixture(scope="module")
def mix(synthetic_dataset):
    return generate_workload(synthetic_dataset,
                             WorkloadConfig(num_queries=10, k=5, seed=7))


@pytest.fixture(scope="module")
def arena_dataset(synthetic_dataset, tmp_path_factory):
    """The same corpus served from the mmap index arena."""
    path = tmp_path_factory.mktemp("partition-arena") / "corpus.arena"
    synthetic_dataset.to_arena(path)
    return Dataset.from_arena(path)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_partitioned_identical_python_backing(synthetic_dataset, mix,
                                              algorithm):
    single = _engine(synthetic_dataset, 1)
    multi = _engine(synthetic_dataset, 4)
    baseline = [_signature(single.run(query, algorithm=algorithm))
                for query in mix]
    observed = [_signature(multi.run(query, algorithm=algorithm))
                for query in mix]
    batched = [_signature(result)
               for result in multi.run_batch(mix, algorithm=algorithm)]
    assert observed == baseline
    assert batched == baseline


@pytest.mark.parametrize("algorithm", ("exact", "social-first"))
def test_partitioned_identical_arena_backing(arena_dataset, mix, algorithm):
    single = _engine(arena_dataset, 1)
    multi = _engine(arena_dataset, 4)
    baseline = [_signature(single.run(query, algorithm=algorithm))
                for query in mix]
    observed = [_signature(multi.run(query, algorithm=algorithm))
                for query in mix]
    batched = [_signature(result)
               for result in multi.run_batch(mix, algorithm=algorithm)]
    assert observed == baseline
    assert batched == baseline


@pytest.mark.parametrize("partitions", PARTITION_COUNTS)
def test_partition_count_never_changes_answers(synthetic_dataset, mix,
                                               partitions):
    single = _engine(synthetic_dataset, 1)
    multi = _engine(synthetic_dataset, partitions)
    for query in mix:
        assert _signature(multi.run(query)) == _signature(single.run(query))
    assert multi.partition_executor is not None
    assert multi.partition_executor.statistics.searches >= len(mix)


def test_worker_pool_scatter_is_identical(synthetic_dataset, mix, monkeypatch):
    """The multi-core pool path (parallel per-shard scans) is also exact.

    CI runs on small corpora and often a single core, so ``pool_worthy``
    never fires naturally; force it by dropping the size gate and rebuilding
    the executor with several workers.
    """
    from repro.core.partition_exec import PartitionedExecutor

    monkeypatch.setattr(PartitionedExecutor, "PARALLEL_MIN_CANDIDATES", 1)
    single = _engine(synthetic_dataset, 1)
    multi = _engine(synthetic_dataset, 4)
    multi._partition_executor = PartitionedExecutor(
        synthetic_dataset, multi.proximity, multi.config, multi.partitions,
        workers=4)
    for query in mix:
        assert _signature(multi.run(query)) == _signature(single.run(query))
    stats = multi.partition_executor.statistics
    assert stats.parallel_searches > 0


def test_partitioned_without_materialized_bounds(synthetic_dataset, mix):
    """The scalar-bound fallback (no cluster bound vectors) is also exact."""
    single = _engine(synthetic_dataset, 1, materialize=False)
    multi = _engine(synthetic_dataset, 4, materialize=False)
    for query in mix:
        assert _signature(multi.run(query)) == _signature(single.run(query))


def test_partitioned_scalar_scoring_routes_single(synthetic_dataset, mix):
    """--scalar engines never fan out, and still answer identically."""
    scalar = SocialSearchEngine(synthetic_dataset, EngineConfig(
        algorithm="exact",
        scoring=ScoringConfig(alpha=0.5, vectorized=False),
        partitions=4))
    scalar_single = SocialSearchEngine(synthetic_dataset, EngineConfig(
        algorithm="exact",
        scoring=ScoringConfig(alpha=0.5, vectorized=False)))
    plan = scalar.planner.plan(mix[0])
    assert plan.executor == "algorithm"
    for query in mix[:3]:
        assert _signature(scalar.run(query)) \
            == _signature(scalar_single.run(query))


def test_partitioned_identical_after_live_updates():
    """Partitioned answers stay exact after tagging + friendship updates."""
    dataset = build_dataset(DatasetConfig(
        name="live", num_users=50, num_items=100, num_tags=12,
        num_actions=700, graph_model="community", avg_degree=6.0,
        homophily=0.6, tag_locality=0.5, seed=13))
    multi = _engine(dataset, 4)
    queries = generate_workload(dataset, WorkloadConfig(num_queries=8, k=5,
                                                        seed=11))
    # Drive the updates through a QueryService so invalidation, shard
    # repair and partition routing all run — the serving configuration.
    from repro.service import QueryService

    updater = DatasetUpdater(dataset)
    tags = dataset.tags()
    with QueryService(multi, ServiceConfig(workers=1, cache_capacity=0,
                                           cache_ttl_seconds=0.0,
                                           deduplicate=False),
                      updater=updater):
        actions = [
            TaggingAction(user_id=3, item_id=100 + offset, tag=tags[0],
                          timestamp=10_000 + offset)
            for offset in range(5)
        ] + [
            TaggingAction(user_id=7, item_id=5, tag=tags[1], timestamp=10_100),
            TaggingAction(user_id=11, item_id=200, tag="fresh-tag",
                          timestamp=10_101),
        ]
        updater.add_actions(actions)
        updater.add_friendships([(0, 49, 0.7), (5, 23, 1.0)])

        single = _engine(dataset, 1)
        for query in queries:
            assert _signature(multi.run(query)) \
                == _signature(single.run(query))
        batched = multi.run_batch(queries)
        assert [_signature(result) for result in batched] \
            == [_signature(single.run(query)) for query in queries]
        # The freshly written items were routed to real partitions (the
        # first endorser's community), not left to the hash fallback.
        layout = multi.partitions
        assert layout is not None
        assert layout.partition_of_item(200) == layout.partition_of_user(11)


def test_alpha_sweep_stays_equivalent(synthetic_dataset, mix):
    for alpha in (0.0, 0.3, 1.0):
        single = SocialSearchEngine(synthetic_dataset, EngineConfig(
            algorithm="exact", scoring=ScoringConfig(alpha=alpha),
            proximity=ProximityConfig(measure="ppr", materialize=True)))
        single.proximity.build()
        multi = SocialSearchEngine(synthetic_dataset, EngineConfig(
            algorithm="exact", scoring=ScoringConfig(alpha=alpha),
            proximity=ProximityConfig(measure="ppr", materialize=True),
            partitions=4))
        multi.proximity.build()
        for query in mix:
            assert _signature(multi.run(query)) == _signature(single.run(query))
