"""Equivalence gates for the build-path hot-spot rewrites.

Each vectorized fast path introduced for out-of-core scale is pinned
against a straightforward reference implementation of the code it
replaced: the optimisations must change *time*, never *output*.
"""

import random

import numpy as np

from repro.graph.graph import SocialGraph, SocialGraphBuilder
from repro.graph.partition import label_propagation
from repro.workload.distributions import ZipfSampler


class TestZipfSamplerCdfEquivalence:
    """The precomputed-cdf sampler must replay ``Generator.choice`` exactly."""

    def _probabilities(self, size: int, exponent: float) -> np.ndarray:
        weights = np.arange(1, size + 1, dtype=np.float64) ** -exponent
        return weights / weights.sum()

    def test_scalar_draws_match_choice(self):
        probabilities = self._probabilities(137, 1.1)
        sampler = ZipfSampler(137, 1.1, seed=9)
        reference = np.random.default_rng(9)
        expected = [int(reference.choice(137, p=probabilities))
                    for _ in range(400)]
        assert [sampler.sample() for _ in range(400)] == expected

    def test_vector_draws_match_choice(self):
        probabilities = self._probabilities(64, 1.4)
        sampler = ZipfSampler(64, 1.4, seed=41)
        reference = np.random.default_rng(41)
        expected = reference.choice(64, size=250, p=probabilities)
        assert sampler.sample_many(250) == [int(v) for v in expected]

    def test_rng_state_stays_in_lockstep(self):
        # Interleaving scalar and vector draws must consume the same number
        # of underlying uniforms as choice() would.
        sampler = ZipfSampler(50, 1.2, seed=77)
        sampler.sample()
        sampler.sample_many(10)
        sampler.sample()
        reference = np.random.default_rng(77)
        probabilities = self._probabilities(50, 1.2)
        reference.choice(50, p=probabilities)
        reference.choice(50, size=10, p=probabilities)
        reference.choice(50, p=probabilities)
        assert sampler.sample() == int(
            reference.choice(50, p=probabilities))


def _reference_csr(num_users, edges):
    """The pre-optimisation builder: per-node buckets, per-node sort."""
    adjacency = {u: [] for u in range(num_users)}
    for (u, v), w in edges.items():
        adjacency[u].append((v, w))
        adjacency[v].append((u, w))
    offsets = np.zeros(num_users + 1, dtype=np.int64)
    neighbours, weights = [], []
    for u in range(num_users):
        adjacency[u].sort()
        offsets[u + 1] = offsets[u] + len(adjacency[u])
        for v, w in adjacency[u]:
            neighbours.append(v)
            weights.append(w)
    return (offsets, np.array(neighbours, dtype=np.int64),
            np.array(weights, dtype=np.float64))


class TestGraphBuilderEquivalence:
    """The single-lexsort CSR build must equal the per-node construction."""

    def test_random_graphs_match_reference(self):
        rng = random.Random(5)
        for trial in range(5):
            num_users = rng.randint(2, 60)
            builder = SocialGraphBuilder(num_users)
            edges = {}
            for _ in range(rng.randint(0, 4 * num_users)):
                u, v = rng.sample(range(num_users), 2)
                w = rng.uniform(0.05, 1.0)
                builder.add_edge(u, v, w)
                key = (u, v) if u < v else (v, u)
                edges[key] = max(edges.get(key, 0.0), w)
            graph = builder.build()
            offsets, neighbours, weights = _reference_csr(num_users, edges)
            got_offsets, got_neighbours, got_weights = graph.csr_arrays()
            assert np.array_equal(got_offsets, offsets)
            assert np.array_equal(got_neighbours, neighbours)
            assert np.array_equal(got_weights, weights)


def _reference_label_propagation(graph, max_rounds, weighted, seed):
    """The pre-optimisation loop: per-node ``graph.neighbours`` slicing."""
    labels = list(range(graph.num_users))
    order = list(range(graph.num_users))
    rng = random.Random(seed) if seed is not None else None
    for _ in range(max_rounds):
        if rng is not None:
            rng.shuffle(order)
        changed = False
        for user in order:
            nbrs, ws = graph.neighbours(user)
            if nbrs.shape[0] == 0:
                continue
            scores = {}
            for position, neighbour in enumerate(nbrs.tolist()):
                label = labels[neighbour]
                value = float(ws[position]) if weighted else 1.0
                scores[label] = scores.get(label, 0.0) + value
            top = max(scores.values())
            best = min(label for label, score in scores.items()
                       if score >= top - 1e-12)
            if best != labels[user]:
                labels[user] = best
                changed = True
        if not changed:
            break
    return labels


class TestLabelPropagationEquivalence:
    """The hoisted-CSR propagation must match the per-node reference."""

    def _random_graph(self, seed):
        rng = random.Random(seed)
        num_users = rng.randint(3, 80)
        builder = SocialGraphBuilder(num_users)
        for _ in range(rng.randint(0, 3 * num_users)):
            u, v = rng.sample(range(num_users), 2)
            builder.add_edge(u, v, rng.uniform(0.1, 1.0))
        return builder.build()

    def test_matches_reference_all_variants(self):
        for seed in (1, 2, 3):
            graph = self._random_graph(seed)
            for weighted in (False, True):
                for visit_seed in (None, 5):
                    assert label_propagation(
                        graph, max_rounds=5, weighted=weighted,
                        seed=visit_seed) == _reference_label_propagation(
                            graph, 5, weighted, visit_seed)
