"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import ProximityConfig, ScoringConfig
from repro.core import Query, SocialSearchEngine
from repro.config import EngineConfig
from repro.core.topk.heap import TopKHeap
from repro.eval import binary_ndcg_at_k, kendall_tau, overlap_at_k, precision_at_k
from repro.graph import SocialGraph
from repro.proximity import ShortestPathProximity
from repro.storage import Dataset, TaggingAction

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

NUM_USERS = 8

edge_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=NUM_USERS - 1),
        st.integers(min_value=0, max_value=NUM_USERS - 1),
        st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    ),
    max_size=20,
)

action_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=NUM_USERS - 1),   # user
        st.integers(min_value=0, max_value=11),               # item
        st.sampled_from(["a", "b", "c"]),                     # tag
    ),
    min_size=1,
    max_size=40,
)

ranking_strategy = st.lists(st.integers(min_value=0, max_value=30), max_size=15,
                            unique=True)


def _graph_from(edges) -> SocialGraph:
    cleaned = [(u, v, w) for u, v, w in edges if u != v]
    return SocialGraph.from_edges(NUM_USERS, cleaned)


def _dataset_from(edges, actions) -> Dataset:
    graph = _graph_from(edges)
    records = [TaggingAction(user_id=u, item_id=i, tag=t, timestamp=index)
               for index, (u, i, t) in enumerate(actions)]
    return Dataset.build(graph, records, name="property")


# ---------------------------------------------------------------------------
# Heap properties
# ---------------------------------------------------------------------------

@given(st.lists(st.tuples(st.integers(min_value=0, max_value=100),
                          st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
                max_size=50),
       st.integers(min_value=1, max_value=10))
def test_heap_keeps_the_k_largest_scores(offers, k):
    heap = TopKHeap(k)
    best = {}
    for item_id, score in offers:
        heap.offer(item_id, score)
        best[item_id] = max(best.get(item_id, 0.0), score)
    expected = sorted(best.values(), reverse=True)[:k]
    got = sorted((score for _, score in heap.items()), reverse=True)
    assert len(got) == min(k, len(best))
    for expected_score, got_score in zip(expected, got):
        assert math.isclose(expected_score, got_score, abs_tol=1e-12)


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=100),
                          st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
                max_size=50),
       st.integers(min_value=1, max_value=10))
def test_heap_output_is_sorted_and_unique(offers, k):
    heap = TopKHeap(k)
    for item_id, score in offers:
        heap.offer(item_id, score)
    items = heap.items()
    scores = [score for _, score in items]
    ids = [item_id for item_id, _ in items]
    assert scores == sorted(scores, reverse=True)
    assert len(set(ids)) == len(ids)


# ---------------------------------------------------------------------------
# Graph / proximity properties
# ---------------------------------------------------------------------------

@given(edge_strategy)
@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
def test_graph_roundtrips_through_edge_list(edges):
    graph = _graph_from(edges)
    rebuilt = SocialGraph.from_edges(graph.num_users, graph.to_edge_list())
    assert rebuilt == graph


@given(edge_strategy, st.integers(min_value=0, max_value=NUM_USERS - 1))
@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
def test_proximity_stream_is_sorted_and_bounded(edges, seeker):
    graph = _graph_from(edges)
    proximity = ShortestPathProximity(graph, ProximityConfig())
    values = [value for _, value in proximity.iter_ranked(seeker)]
    assert values == sorted(values, reverse=True)
    assert all(0.0 < value <= 1.0 for value in values)


@given(edge_strategy, st.integers(min_value=0, max_value=NUM_USERS - 1))
@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
def test_proximity_symmetry_on_undirected_graph(edges, seeker):
    graph = _graph_from(edges)
    proximity = ShortestPathProximity(graph, ProximityConfig())
    vector = proximity.vector(seeker)
    for target, value in vector.items():
        assert math.isclose(proximity.proximity(target, seeker), value,
                            rel_tol=1e-9, abs_tol=1e-12)


# ---------------------------------------------------------------------------
# Algorithm agreement property
# ---------------------------------------------------------------------------

@given(edge_strategy, action_strategy,
       st.integers(min_value=0, max_value=NUM_USERS - 1),
       st.sampled_from([("a",), ("b",), ("a", "b"), ("a", "b", "c")]),
       st.integers(min_value=1, max_value=5),
       st.sampled_from([0.0, 0.3, 0.7, 1.0]))
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_every_algorithm_matches_exact_scores(edges, actions, seeker, tags, k, alpha):
    dataset = _dataset_from(edges, actions)
    config = EngineConfig(scoring=ScoringConfig(alpha=alpha))
    engine = SocialSearchEngine(dataset, config)
    query = Query(seeker=seeker, tags=tags, k=k)
    exact = engine.run(query, algorithm="exact")
    exact_scores = sorted(exact.scores, reverse=True)
    for algorithm in ("ta", "nra", "social-first", "hybrid"):
        result = engine.run(query, algorithm=algorithm)
        got = sorted(result.scores, reverse=True)
        assert len(got) == len(exact_scores)
        for expected, actual in zip(exact_scores, got):
            assert math.isclose(expected, actual, abs_tol=1e-9)


# ---------------------------------------------------------------------------
# Metric properties
# ---------------------------------------------------------------------------

@given(ranking_strategy, st.sets(st.integers(min_value=0, max_value=30), max_size=10),
       st.integers(min_value=1, max_value=15))
def test_precision_and_ndcg_bounded(ranking, relevant, k):
    assert 0.0 <= precision_at_k(ranking, relevant, k) <= 1.0
    assert 0.0 <= binary_ndcg_at_k(ranking, relevant, k) <= 1.0


@given(ranking_strategy, ranking_strategy)
def test_kendall_tau_symmetric_and_bounded(ranking_a, ranking_b):
    tau_ab = kendall_tau(ranking_a, ranking_b)
    tau_ba = kendall_tau(ranking_b, ranking_a)
    assert -1.0 <= tau_ab <= 1.0
    assert math.isclose(tau_ab, tau_ba, abs_tol=1e-12)


@given(ranking_strategy)
def test_ranking_agrees_perfectly_with_itself(ranking):
    assert kendall_tau(ranking, ranking) == 1.0
    if ranking:
        assert overlap_at_k(ranking, ranking, len(ranking)) == 1.0
