"""Streaming (out-of-core) arena builds must match the in-memory builder.

The contract is byte identity: at the same seed, ``build_arena_streaming``
must produce the **exact same file** as ``build_arena(build_dataset(...))``
for every chunk size — the streaming path is an execution strategy, not a
different format.  A second property pins the generator layer itself
(``generate_chunks`` vs ``generate``), and a resource test asserts the
20k-user streaming build stays within a bounded RSS delta.
"""

import hashlib
from pathlib import Path

import numpy as np
import pytest

from repro.config import DatasetConfig
from repro.errors import StorageError
from repro.eval.timing import measure_in_subprocess
from repro.graph import generate_graph
from repro.storage.arena import build_arena
from repro.storage.arena_stream import build_arena_streaming
from repro.workload.datasets import build_dataset, scaled_config
from repro.workload.tagging_model import TaggingModel

SEEDS = (3, 23)
CHUNK_SIZES = (1, 7, 1000)


def _config(seed: int) -> DatasetConfig:
    return DatasetConfig(
        name="stream-eq",
        num_users=60,
        num_items=150,
        num_tags=18,
        num_actions=900,
        avg_degree=6.0,
        homophily=0.6,
        tag_locality=0.3,
        seed=seed,
    )


def _sha256(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


@pytest.fixture(scope="module")
def reference_digests(tmp_path_factory):
    """In-memory arena digest per seed (built once for the whole module)."""
    root = tmp_path_factory.mktemp("stream-ref")
    digests = {}
    for seed in SEEDS:
        path = build_arena(build_dataset(_config(seed)),
                           root / f"ref-{seed}.arena")
        digests[seed] = _sha256(path)
    return digests


class TestByteIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_streaming_reproduces_in_memory_arena(self, tmp_path, seed,
                                                  chunk_size,
                                                  reference_digests):
        path = build_arena_streaming(_config(seed),
                                     tmp_path / "stream.arena",
                                     chunk_size=chunk_size)
        assert _sha256(path) == reference_digests[seed]

    def test_scaled_config_profile_matches(self, tmp_path):
        # The scale suite builds scaled_config corpora; pin that profile too.
        config = scaled_config(120, seed=23)
        reference = build_arena(build_dataset(config), tmp_path / "ref.arena")
        streamed = build_arena_streaming(config, tmp_path / "stream.arena",
                                         chunk_size=64)
        assert _sha256(streamed) == _sha256(reference)

    def test_scratch_directory_removed(self, tmp_path):
        path = tmp_path / "clean.arena"
        build_arena_streaming(_config(3), path, chunk_size=128)
        assert path.exists()
        assert not path.with_name(path.name + ".build").exists()
        assert not list(tmp_path.glob("*.tmp"))


class TestGenerateChunks:
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_chunks_concatenate_to_generate(self, chunk_size):
        config = _config(23)
        graph = generate_graph(config.graph_model, config.num_users,
                               config.avg_degree, seed=config.seed)
        actions = TaggingModel(graph, config).generate()
        batches = list(TaggingModel(graph, config).generate_chunks(chunk_size))
        assert all(len(batch["user_ids"]) <= chunk_size for batch in batches)
        users = np.concatenate([batch["user_ids"] for batch in batches])
        items = np.concatenate([batch["item_ids"] for batch in batches])
        ranks = np.concatenate([batch["tag_ranks"] for batch in batches])
        stamps = np.concatenate([batch["timestamps"] for batch in batches])
        tags = TaggingModel(graph, config).tags
        assert len(users) == len(actions)
        for index, action in enumerate(actions):
            assert action.user_id == users[index]
            assert action.item_id == items[index]
            assert action.tag == tags[ranks[index]]
            assert action.timestamp == stamps[index]

    def test_rejects_non_positive_chunk(self):
        config = _config(3)
        graph = generate_graph(config.graph_model, config.num_users,
                               config.avg_degree, seed=config.seed)
        with pytest.raises(Exception):
            list(TaggingModel(graph, config).generate_chunks(0))


class TestStreamingResources:
    def test_rejects_bad_chunk_size(self, tmp_path):
        with pytest.raises(StorageError):
            build_arena_streaming(_config(3), tmp_path / "bad.arena",
                                  chunk_size=0)

    def test_20k_build_stays_within_rss_budget(self, tmp_path):
        """A 20k-user corpus (~500k actions) must build out-of-core without
        approaching the in-memory builder's footprint.

        The measured streaming delta on the reference box is ~130 MB (graph
        generation + dedup keys + sort temporaries); 384 MB leaves ~3x head
        room against machine noise while still sitting far below the
        in-memory builder (>1 GB at this size).
        """
        config = scaled_config(20000)
        path = tmp_path / "scaled-20k.arena"
        _, peak_bytes, _seconds = measure_in_subprocess(
            lambda: str(build_arena_streaming(config, path,
                                              chunk_size=100000)))
        assert path.exists()
        assert peak_bytes < 384 * 1024 * 1024, \
            f"streaming build RSS delta {peak_bytes / 2**20:.0f} MB " \
            f"exceeds the 384 MB budget"
