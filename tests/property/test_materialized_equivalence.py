"""Equivalence properties of the offline/online proximity split.

The contract the tentpole rests on: serving proximity from materialized
shards, and executing queries through the batched shared-scan path, are
*execution strategies* — every observable of a query answer (ranking,
exact scores, access accounting) must be identical to the online path that
computes proximity per seeker on demand.
"""

import pytest

from repro import SocialSearchEngine
from repro.config import EngineConfig, ProximityConfig, ScoringConfig, WorkloadConfig
from repro.workload import generate_workload

#: Measures whose ranked stream is the canonical (-proximity, user) order,
#: making even the access *traces* of frontier algorithms reproducible from
#: shard rows.  (shortest-path streams via Dijkstra, whose equal-proximity
#: tie order is heap-dependent, so it is equivalence-tested at the ranking
#: level through the arena tests instead.)
DICT_ORDER_MEASURES = ("ppr", "katz")

ALGORITHMS = ("exact", "social-first", "ta", "nra", "hybrid")


def _engines(dataset, measure):
    online = SocialSearchEngine(dataset, EngineConfig(
        algorithm="social-first",
        scoring=ScoringConfig(alpha=0.5),
        proximity=ProximityConfig(measure=measure, cache_size=0),
    ))
    materialized = SocialSearchEngine(dataset, EngineConfig(
        algorithm="social-first",
        scoring=ScoringConfig(alpha=0.5),
        proximity=ProximityConfig(measure=measure, materialize=True),
    ))
    materialized.proximity.build()
    return online, materialized


def _signature(result):
    return ([item.item_id for item in result.items],
            [item.score for item in result.items],
            result.accounting.to_dict())


@pytest.fixture(scope="module")
def mix(synthetic_dataset):
    return generate_workload(synthetic_dataset,
                             WorkloadConfig(num_queries=10, k=5, seed=7))


@pytest.mark.parametrize("measure", DICT_ORDER_MEASURES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_online_materialized_batched_identical(synthetic_dataset, mix,
                                               measure, algorithm):
    online, materialized = _engines(synthetic_dataset, measure)
    baseline = [_signature(online.run(query, algorithm=algorithm))
                for query in mix]
    shard_served = [_signature(materialized.run(query, algorithm=algorithm))
                    for query in mix]
    batched = [_signature(result)
               for result in materialized.run_batch(mix, algorithm=algorithm)]
    assert shard_served == baseline
    assert batched == baseline


@pytest.mark.parametrize("alpha", [0.0, 0.3, 1.0])
def test_equivalence_across_alpha(synthetic_dataset, mix, alpha):
    def build(materialize):
        proximity = ProximityConfig(measure="ppr", materialize=materialize) \
            if materialize else ProximityConfig(measure="ppr", cache_size=0)
        engine = SocialSearchEngine(synthetic_dataset, EngineConfig(
            algorithm="exact",
            scoring=ScoringConfig(alpha=alpha),
            proximity=proximity,
        ))
        if materialize:
            engine.proximity.build()
        return engine

    online, materialized = build(False), build(True)
    for query in mix:
        want = _signature(online.run(query))
        assert _signature(materialized.run(query)) == want
    batched = materialized.run_batch(mix)
    assert [_signature(result) for result in batched] \
        == [_signature(online.run(query)) for query in mix]


def test_lazy_refinement_is_also_identical(synthetic_dataset, mix):
    """An *unbuilt* materialized measure (pure lazy refinement) must match."""
    online = SocialSearchEngine(synthetic_dataset, EngineConfig(
        algorithm="exact", proximity=ProximityConfig(measure="ppr", cache_size=0)))
    lazy = SocialSearchEngine(synthetic_dataset, EngineConfig(
        algorithm="exact", proximity=ProximityConfig(measure="ppr", materialize=True)))
    for query in mix:
        assert _signature(lazy.run(query)) == _signature(online.run(query))
    assert lazy.proximity.statistics.refinements > 0


def test_service_run_batch_matches_run_many(synthetic_dataset, mix):
    from repro.config import ServiceConfig
    from repro.service import QueryService

    engine = SocialSearchEngine(synthetic_dataset, EngineConfig(
        algorithm="exact", proximity=ProximityConfig(measure="ppr", materialize=True)))
    engine.proximity.build()
    trace = list(mix) * 2
    with QueryService(engine, ServiceConfig(workers=2, cache_capacity=0,
                                            cache_ttl_seconds=0.0,
                                            deduplicate=False)) as service:
        sequential = service.run_many(trace)
    with QueryService(engine, ServiceConfig(workers=2, cache_capacity=64)) as service:
        batched = service.run_batch(trace)
        # Second pass: everything is a cache hit and still identical.
        repeated = service.run_batch(trace)
    want = [_signature(result) for result in sequential]
    assert [_signature(result) for result in batched] == want
    assert [_signature(result) for result in repeated] == want
