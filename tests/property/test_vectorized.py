"""Property-based equivalence tests: vectorized kernels vs the scalar path.

The vectorized scoring layer (endorser-index reductions, ``score_block``,
the ``argpartition`` exact top-k) must be a pure performance change: same
scores to float precision, identical rankings, identical access accounting.
These tests drive both paths over random datasets, seekers, tag sets and
alpha values and require exact agreement.
"""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import EngineConfig, ProximityConfig, ScoringConfig
from repro.core import Query, SocialSearchEngine
from repro.core.scoring import ScoringModel
from repro.core.topk.exact import select_topk
from repro.graph import SocialGraph
from repro.proximity import ShortestPathProximity
from repro.storage import Dataset, TaggingAction

NUM_USERS = 8

edge_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=NUM_USERS - 1),
        st.integers(min_value=0, max_value=NUM_USERS - 1),
        st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    ),
    max_size=20,
)

action_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=NUM_USERS - 1),   # user
        st.integers(min_value=0, max_value=11),               # item
        st.sampled_from(["a", "b", "c"]),                     # tag
    ),
    min_size=1,
    max_size=40,
)

tag_sets = st.sampled_from([("a",), ("b",), ("a", "b"), ("a", "b", "c"),
                            ("c", "a"), ("nope",), ("a", "nope")])
alphas = st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0])


def _dataset_from(edges, actions) -> Dataset:
    cleaned = [(u, v, w) for u, v, w in edges if u != v]
    graph = SocialGraph.from_edges(NUM_USERS, cleaned)
    records = [TaggingAction(user_id=u, item_id=i, tag=t, timestamp=index)
               for index, (u, i, t) in enumerate(actions)]
    return Dataset.build(graph, records, name="property")


# ---------------------------------------------------------------------------
# score_block vs exact_score
# ---------------------------------------------------------------------------

@given(edge_strategy, action_strategy,
       st.integers(min_value=0, max_value=NUM_USERS - 1), tag_sets, alphas)
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_score_block_matches_scalar_exact_score(edges, actions, seeker, tags, alpha):
    dataset = _dataset_from(edges, actions)
    proximity = ShortestPathProximity(dataset.graph, ProximityConfig())
    scoring = ScoringModel(dataset, proximity, ScoringConfig(alpha=alpha))

    vector = scoring.proximity_vector(seeker)
    dense = scoring.proximity_vector_array(seeker)
    candidates = scoring.candidate_block(tags)
    block = scoring.score_block(seeker, candidates, tags, proximity=dense)

    assert len(block) == candidates.shape[0]
    for position, item_id in enumerate(candidates.tolist()):
        breakdown = scoring.exact_score(seeker, int(item_id), tags, vector)
        assert math.isclose(block.scores[position], breakdown.score, abs_tol=1e-12)
        assert math.isclose(block.textual[position], breakdown.textual, abs_tol=1e-12)
        assert math.isclose(block.social[position], breakdown.social, abs_tol=1e-12)


@given(edge_strategy, st.integers(min_value=0, max_value=NUM_USERS - 1))
@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
def test_vector_array_is_dense_form_of_vector(edges, seeker):
    cleaned = [(u, v, w) for u, v, w in edges if u != v]
    graph = SocialGraph.from_edges(NUM_USERS, cleaned)
    proximity = ShortestPathProximity(graph, ProximityConfig())
    vector = proximity.vector(seeker)
    dense = proximity.vector_array(seeker)
    assert dense.shape == (NUM_USERS,)
    assert dense[seeker] == 0.0
    for user in range(NUM_USERS):
        assert math.isclose(dense[user], vector.get(user, 0.0), abs_tol=0.0)


# ---------------------------------------------------------------------------
# Vectorized exact search vs the scalar reference
# ---------------------------------------------------------------------------

@given(edge_strategy, action_strategy,
       st.integers(min_value=0, max_value=NUM_USERS - 1), tag_sets,
       st.integers(min_value=1, max_value=6), alphas)
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_vectorized_exact_identical_to_scalar(edges, actions, seeker, tags, k, alpha):
    dataset = _dataset_from(edges, actions)
    vectorized = SocialSearchEngine(
        dataset, EngineConfig(scoring=ScoringConfig(alpha=alpha, vectorized=True)))
    scalar = SocialSearchEngine(
        dataset, EngineConfig(scoring=ScoringConfig(alpha=alpha, vectorized=False)))
    query = Query(seeker=seeker, tags=tags, k=k)

    fast = vectorized.run(query, algorithm="exact")
    reference = scalar.run(query, algorithm="exact")

    assert fast.item_ids == reference.item_ids
    for fast_item, reference_item in zip(fast.items, reference.items):
        assert math.isclose(fast_item.score, reference_item.score, abs_tol=1e-12)
        assert math.isclose(fast_item.textual, reference_item.textual, abs_tol=1e-12)
        assert math.isclose(fast_item.social, reference_item.social, abs_tol=1e-12)
    assert fast.accounting.to_dict() == reference.accounting.to_dict()
    assert fast.terminated_early == reference.terminated_early


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=50),
                          st.floats(min_value=0.0, max_value=1.0,
                                    allow_nan=False)),
                min_size=0, max_size=40, unique_by=lambda pair: pair[0]),
       st.integers(min_value=1, max_value=8))
def test_select_topk_matches_sorted_selection(entries, k):
    item_ids = np.array([item for item, _ in entries], dtype=np.int64)
    scores = np.array([score for _, score in entries], dtype=np.float64)
    order = np.argsort(item_ids)
    item_ids, scores = item_ids[order], scores[order]

    chosen = select_topk(item_ids, scores, k)
    got = [(int(item_ids[i]), float(scores[i])) for i in chosen]
    expected = sorted(((int(i), float(s)) for i, s in zip(item_ids, scores)),
                      key=lambda pair: (-pair[1], pair[0]))[:k]
    assert got == expected


# ---------------------------------------------------------------------------
# Endorser-index reductions
# ---------------------------------------------------------------------------

@given(edge_strategy, action_strategy,
       st.integers(min_value=0, max_value=NUM_USERS - 1),
       st.sampled_from(["a", "b", "c"]))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_endorser_index_mass_matches_python_sum(edges, actions, seeker, tag):
    dataset = _dataset_from(edges, actions)
    proximity = ShortestPathProximity(dataset.graph, ProximityConfig())
    dense = proximity.vector_array(seeker)
    bundle = dataset.endorser_index.for_tag(tag)
    if bundle is None:
        assert all(action[2] != tag for action in actions)
        return
    masses = bundle.social_mass(dense)
    for position, item_id in enumerate(bundle.item_ids.tolist()):
        taggers = dataset.tagging.taggers(int(item_id), tag)
        expected = sum(dense[tagger] for tagger in sorted(taggers))
        assert math.isclose(masses[position], expected, abs_tol=1e-12)
        assert bundle.frequencies[position] == len(taggers)


# ---------------------------------------------------------------------------
# Incremental candidate bounds vs naive rescan
# ---------------------------------------------------------------------------

def _naive_max_bound(pool, scoring, tags, next_tf, frontier, excluded):
    best = 0.0
    for candidate in pool:
        if candidate.item_id in excluded:
            continue
        best = max(best, candidate.upper_bound(scoring, tags, next_tf, frontier))
    return best


def _checking_algorithm(base_cls):
    """Subclass an interleaving algorithm so every termination check also
    verifies the lazy bound heap against a naive full rescan — the strongest
    form of the property, because it exercises the exact call pattern
    (monotone next_tf / frontier decay, knowledge refinement) the
    incremental structure relies on."""
    from repro.core.topk.sources import next_frequencies

    class Checking(base_cls):
        mismatches = []

        def _should_stop(self, query, heap, pool, exact_scores, textual_sources,
                         frontier):
            next_tf = next_frequencies(textual_sources)
            frontier_proximity = frontier.next_proximity()
            for excluded in (frozenset(), frozenset(heap.item_ids())):
                fast = pool.max_upper_bound_excluding(
                    self._scoring, query.tags, next_tf, frontier_proximity,
                    excluded)
                naive = _naive_max_bound(pool, self._scoring, query.tags,
                                         next_tf, frontier_proximity, excluded)
                if not math.isclose(fast, naive, abs_tol=1e-12):
                    self.mismatches.append((fast, naive))
            return super()._should_stop(query, heap, pool, exact_scores,
                                        textual_sources, frontier)

    return Checking


@given(edge_strategy, action_strategy,
       st.integers(min_value=0, max_value=NUM_USERS - 1), tag_sets,
       st.integers(min_value=1, max_value=5), alphas)
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_incremental_bound_matches_naive_rescan(edges, actions, seeker, tags,
                                                k, alpha):
    from repro.core.topk.nra import NoRandomAccess
    from repro.core.topk.social_first import SocialFirst

    dataset = _dataset_from(edges, actions)
    config = EngineConfig(scoring=ScoringConfig(alpha=alpha), batch_size=2)
    proximity = ShortestPathProximity(dataset.graph, ProximityConfig())
    query = Query(seeker=seeker, tags=tags, k=k)
    for base_cls in (NoRandomAccess, SocialFirst):
        algorithm = _checking_algorithm(base_cls)(dataset, proximity, config)
        algorithm.search(query)
        assert algorithm.mismatches == []
