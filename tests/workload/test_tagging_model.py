"""Tests for the homophily-driven tagging generator."""

import pytest

from repro.config import DatasetConfig
from repro.errors import WorkloadError
from repro.graph import generate_graph
from repro.workload import TaggingModel, generate_actions


def _config(**overrides):
    defaults = dict(num_users=50, num_items=100, num_tags=10, num_actions=800,
                    avg_degree=6.0, seed=5, name="model-test")
    defaults.update(overrides)
    return DatasetConfig(**defaults)


@pytest.fixture(scope="module")
def graph():
    return generate_graph("barabasi-albert", 50, 6.0, seed=5)


class TestTaggingModel:
    def test_generates_requested_number_of_actions(self, graph):
        actions = TaggingModel(graph, _config()).generate()
        assert len(actions) == 800

    def test_actions_reference_valid_entities(self, graph):
        config = _config()
        for action in TaggingModel(graph, config).generate(300):
            assert 0 <= action.user_id < config.num_users
            assert 0 <= action.item_id < config.num_items
            assert action.tag.startswith("tag-")

    def test_deterministic_under_seed(self, graph):
        a = TaggingModel(graph, _config()).generate(200)
        b = TaggingModel(graph, _config()).generate(200)
        assert a == b

    def test_different_seed_differs(self, graph):
        a = TaggingModel(graph, _config(seed=5)).generate(200)
        b = TaggingModel(graph, _config(seed=6)).generate(200)
        assert a != b

    def test_timestamps_strictly_increasing(self, graph):
        actions = TaggingModel(graph, _config()).generate(300)
        timestamps = [action.timestamp for action in actions]
        assert timestamps == sorted(timestamps)
        assert len(set(timestamps)) == len(timestamps)

    def test_graph_mismatch_rejected(self, graph):
        with pytest.raises(WorkloadError):
            TaggingModel(graph, _config(num_users=49))

    def test_invalid_action_count_rejected(self, graph):
        with pytest.raises(WorkloadError):
            TaggingModel(graph, _config()).generate(0)

    def test_tag_popularity_is_skewed(self, graph):
        actions = TaggingModel(graph, _config(num_actions=3000)).generate()
        counts = {}
        for action in actions:
            counts[action.tag] = counts.get(action.tag, 0) + 1
        ordered = sorted(counts.values(), reverse=True)
        assert ordered[0] > 3 * ordered[-1]

    def test_convenience_wrapper(self, graph):
        actions = generate_actions(graph, _config(), num_actions=100)
        assert len(actions) == 100


class TestHomophilyEffect:
    @staticmethod
    def _friend_overlap(graph, actions):
        """Fraction of actions whose (item, tag) was already used by a friend."""
        seen = {}
        copied = 0
        for action in actions:
            pair = (action.item_id, action.tag)
            friends = set(graph.neighbour_ids(action.user_id).tolist())
            if friends & seen.get(pair, set()):
                copied += 1
            seen.setdefault(pair, set()).add(action.user_id)
        return copied / len(actions)

    def test_homophily_increases_friend_overlap(self, graph):
        low = TaggingModel(graph, _config(homophily=0.0, num_actions=2000)).generate()
        high = TaggingModel(graph, _config(homophily=0.9, num_actions=2000)).generate()
        assert self._friend_overlap(graph, high) > self._friend_overlap(graph, low)
