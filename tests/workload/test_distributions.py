"""Tests for the seeded samplers."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload import (
    UniformSampler,
    WeightedSampler,
    ZipfSampler,
    make_tag_vocabulary,
    poisson_at_least_one,
    truncated_power_law,
)


class TestZipfSampler:
    def test_values_in_domain(self):
        sampler = ZipfSampler(10, 1.1, seed=1)
        values = sampler.sample_many(500)
        assert all(0 <= value < 10 for value in values)

    def test_deterministic_under_seed(self):
        assert ZipfSampler(10, 1.1, seed=3).sample_many(50) == \
            ZipfSampler(10, 1.1, seed=3).sample_many(50)

    def test_head_is_more_popular_than_tail(self):
        values = ZipfSampler(50, 1.2, seed=5).sample_many(5000)
        counts = np.bincount(values, minlength=50)
        assert counts[0] > counts[-1]

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(20, 1.5, seed=0)
        assert sampler.probabilities.sum() == pytest.approx(1.0)
        assert sampler.num_values == 20

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(0, 1.0)
        with pytest.raises(WorkloadError):
            ZipfSampler(5, 0.0)
        with pytest.raises(WorkloadError):
            ZipfSampler(5, 1.0).sample_many(-1)


class TestUniformSampler:
    def test_values_in_domain(self):
        values = UniformSampler(7, seed=2).sample_many(200)
        assert all(0 <= value < 7 for value in values)

    def test_deterministic(self):
        assert UniformSampler(7, seed=4).sample_many(20) == \
            UniformSampler(7, seed=4).sample_many(20)

    def test_invalid_domain_rejected(self):
        with pytest.raises(WorkloadError):
            UniformSampler(0)


class TestWeightedSampler:
    def test_zero_weight_entries_never_sampled(self):
        sampler = WeightedSampler([0.0, 1.0, 0.0], seed=1)
        assert set(sampler.sample_many(200)) == {1}

    def test_invalid_weights_rejected(self):
        with pytest.raises(WorkloadError):
            WeightedSampler([])
        with pytest.raises(WorkloadError):
            WeightedSampler([-1.0, 2.0])
        with pytest.raises(WorkloadError):
            WeightedSampler([0.0, 0.0])

    def test_single_sample_in_domain(self):
        assert WeightedSampler([1.0, 1.0], seed=2).sample() in (0, 1)


class TestHelpers:
    def test_poisson_at_least_one(self):
        rng = np.random.default_rng(0)
        values = [poisson_at_least_one(rng, 2.5) for _ in range(200)]
        assert all(value >= 1 for value in values)
        assert poisson_at_least_one(rng, 0.5) == 1

    def test_truncated_power_law_in_range(self):
        rng = np.random.default_rng(1)
        values = [truncated_power_law(rng, 1.5, 10) for _ in range(200)]
        assert all(1 <= value <= 10 for value in values)
        assert truncated_power_law(rng, 1.5, 1) == 1

    def test_make_tag_vocabulary(self):
        tags = make_tag_vocabulary(3)
        assert tags == ["tag-000", "tag-001", "tag-002"]
        assert len(set(make_tag_vocabulary(1500))) == 1500
        with pytest.raises(WorkloadError):
            make_tag_vocabulary(0)
