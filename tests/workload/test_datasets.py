"""Tests for the synthetic dataset builders."""

import pytest

from repro.config import DatasetConfig
from repro.workload import (
    build_dataset,
    delicious_like,
    flickr_like,
    homophily_sweep_dataset,
    scaled_dataset,
    tiny_dataset,
    variant,
)


class TestBuildDataset:
    def test_respects_config_sizes(self):
        config = DatasetConfig(num_users=30, num_items=60, num_tags=8,
                               num_actions=300, seed=1, name="sized")
        dataset = build_dataset(config)
        assert dataset.num_users == 30
        assert dataset.num_items == 60
        assert dataset.num_tags <= 8
        assert dataset.num_actions <= 300  # duplicates are dropped
        assert dataset.name == "sized"

    def test_deterministic_under_seed(self):
        config = DatasetConfig(num_users=30, num_items=60, num_tags=8,
                               num_actions=300, seed=9)
        a = build_dataset(config)
        b = build_dataset(config)
        assert a.graph == b.graph
        assert a.tagging.actions() == b.tagging.actions()

    def test_holdout_fraction_creates_ground_truth(self):
        config = DatasetConfig(num_users=30, num_items=60, num_tags=8,
                               num_actions=400, seed=2)
        dataset = build_dataset(config, holdout_fraction=0.25)
        assert dataset.holdout is not None
        assert len(dataset.holdout) > 0

    def test_variant_helper(self):
        config = DatasetConfig(num_users=30)
        changed = variant(config, num_users=60, homophily=0.9)
        assert changed.num_users == 60
        assert changed.homophily == 0.9
        assert config.num_users == 30


class TestNamedCorpora:
    def test_tiny_dataset_is_small_and_fast(self):
        dataset = tiny_dataset()
        assert dataset.num_users == 40
        assert dataset.num_actions > 0

    def test_delicious_like_scales(self):
        small = delicious_like(scale=0.1, seed=1)
        assert small.name == "delicious-like"
        assert small.num_users == 40
        assert small.num_tags > 0

    def test_flickr_like_scales(self):
        small = flickr_like(scale=0.1, seed=1)
        assert small.name == "flickr-like"
        assert small.num_users == 30

    def test_scaled_dataset_grows_with_users(self):
        small = scaled_dataset(40, seed=3)
        large = scaled_dataset(120, seed=3)
        assert large.num_users == 3 * small.num_users
        assert large.num_actions > small.num_actions

    def test_homophily_sweep_dataset_has_holdout(self):
        dataset = homophily_sweep_dataset(0.5, scale=0.1, seed=4)
        assert dataset.holdout is not None
        assert "homophily" in dataset.name
