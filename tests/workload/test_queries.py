"""Tests for query workload generation and traces."""

import pytest

from repro.config import WorkloadConfig
from repro.errors import PersistenceError, WorkloadError
from repro.workload import (
    QueryWorkloadGenerator,
    generate_workload,
    load_queries,
    queries_with_k,
    save_queries,
)


class TestQueryWorkloadGenerator:
    def test_generates_requested_number(self, synthetic_dataset):
        queries = generate_workload(synthetic_dataset,
                                    WorkloadConfig(num_queries=25, seed=1))
        assert len(queries) == 25

    def test_deterministic_under_seed(self, synthetic_dataset):
        a = generate_workload(synthetic_dataset, WorkloadConfig(num_queries=10, seed=3))
        b = generate_workload(synthetic_dataset, WorkloadConfig(num_queries=10, seed=3))
        assert a == b

    def test_queries_reference_dataset_entities(self, synthetic_dataset):
        tags = set(synthetic_dataset.tags())
        for query in generate_workload(synthetic_dataset,
                                       WorkloadConfig(num_queries=30, seed=2)):
            assert 0 <= query.seeker < synthetic_dataset.num_users
            assert set(query.tags) <= tags
            assert query.k == 10

    def test_k_override(self, synthetic_dataset):
        queries = generate_workload(synthetic_dataset,
                                    WorkloadConfig(num_queries=5, seed=2), k=3)
        assert all(query.k == 3 for query in queries)

    def test_profile_strategy_uses_seeker_tags(self, synthetic_dataset):
        config = WorkloadConfig(num_queries=40, seed=4, tag_strategy="profile",
                                tags_per_query=1.0)
        hits = 0
        total = 0
        for query in generate_workload(synthetic_dataset, config):
            profile = set(synthetic_dataset.tagging.tags_for_user(query.seeker))
            if profile:
                total += 1
                if set(query.tags) & profile:
                    hits += 1
        assert total > 0
        assert hits / total > 0.8

    def test_uniform_and_popular_strategies_run(self, synthetic_dataset):
        for strategy in ("uniform", "popular"):
            queries = generate_workload(
                synthetic_dataset,
                WorkloadConfig(num_queries=5, seed=6, tag_strategy=strategy),
            )
            assert len(queries) == 5

    def test_uniform_seeker_strategy(self, synthetic_dataset):
        queries = generate_workload(
            synthetic_dataset,
            WorkloadConfig(num_queries=10, seed=7, seeker_strategy="uniform"),
        )
        assert len(queries) == 10

    def test_invalid_count_rejected(self, synthetic_dataset):
        generator = QueryWorkloadGenerator(synthetic_dataset)
        with pytest.raises(WorkloadError):
            generator.generate(num_queries=0)

    def test_queries_with_k_rewrites_k(self, workload):
        rewritten = queries_with_k(workload, 3)
        assert all(query.k == 3 for query in rewritten)
        assert [q.tags for q in rewritten] == [q.tags for q in workload]


class TestQueryTrace:
    def test_roundtrip(self, workload, tmp_path):
        path = tmp_path / "trace.jsonl"
        written = save_queries(workload, path)
        loaded = load_queries(path)
        assert written == len(workload)
        assert loaded == list(workload)

    def test_malformed_trace_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"seeker": 1}\n')
        with pytest.raises(PersistenceError):
            load_queries(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_queries(tmp_path / "missing.jsonl")


class TestHistogramDrivenGeneration:
    """The generator's sampling now runs off action histograms.

    The refactor must be invisible: for every strategy combination and
    seed, the histogram-driven generator draws the exact workload the
    per-user profile-scan construction used to draw (same RNG sequence,
    same probability arrays), so pinned seeds and committed benchmarks
    keep their workloads.
    """

    def _legacy_generator(self, dataset, config):
        import numpy as np

        generator = QueryWorkloadGenerator.__new__(QueryWorkloadGenerator)
        generator._dataset = dataset
        generator._config = config
        generator._rng = np.random.default_rng(config.seed)
        generator._tags = dataset.tags()
        popularity = dataset.tagging.tag_popularity()
        weights = np.array([popularity.get(tag, 0) + 1.0
                            for tag in generator._tags], dtype=np.float64)
        generator._tag_probabilities = weights / weights.sum()
        generator._active_users = dataset.active_users()
        activity = np.array(
            [dataset.tagging.activity(user) + 1.0
             for user in generator._active_users], dtype=np.float64)
        generator._activity_probabilities = activity / activity.sum()
        return generator

    @pytest.mark.parametrize("seeker_strategy", ["active", "uniform"])
    @pytest.mark.parametrize("tag_strategy", ["profile", "popular", "uniform"])
    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_bit_identical_to_profile_scan_construction(
            self, synthetic_dataset, seeker_strategy, tag_strategy, seed):
        config = WorkloadConfig(seed=seed, seeker_strategy=seeker_strategy,
                                tag_strategy=tag_strategy,
                                num_queries=25, k=5)
        legacy = self._legacy_generator(synthetic_dataset, config).generate()
        current = QueryWorkloadGenerator(synthetic_dataset, config).generate()
        assert current == legacy

    def test_generator_distributions_rejects_misaligned_histograms(self):
        import numpy as np

        from repro.workload.sampler import generator_distributions

        with pytest.raises(WorkloadError):
            generator_distributions(["a", "b"], np.ones(3), np.ones(3))

    def test_generator_distributions_active_users_are_nonzero_rows(self):
        import numpy as np

        from repro.workload.sampler import generator_distributions

        activity = np.array([0.0, 2.0, 0.0, 5.0])
        _tag_probs, active, probs = generator_distributions(
            ["a"], activity, np.array([7.0]))
        assert active.tolist() == [1, 3]
        assert probs == pytest.approx([3.0 / 9.0, 6.0 / 9.0])
