"""Tests for the fault-injection harness (repro.obs.faults)."""

import pytest

from repro.obs.faults import (
    InjectedCrash,
    InjectedFault,
    armed,
    fault_point,
    faults,
    tear_final_record,
)
from repro.storage.wal import WriteAheadLog, scan_wal


@pytest.fixture(autouse=True)
def clean_registry():
    faults.reset()
    yield
    faults.reset()


class TestFaultRegistry:
    def test_disarmed_point_is_a_no_op(self):
        fault_point("wal.before_append")  # must not raise

    def test_armed_point_raises_injected_crash(self):
        faults.arm("wal.before_append")
        with pytest.raises(InjectedCrash) as excinfo:
            fault_point("wal.before_append")
        assert excinfo.value.point == "wal.before_append"

    def test_injected_crash_is_not_an_exception(self):
        # A simulated kill must not be swallowed by broad except Exception.
        assert not issubclass(InjectedCrash, Exception)
        assert issubclass(InjectedFault, Exception)

    def test_custom_exception_payload(self):
        faults.arm("wal.fsync", exc=OSError("disk gone"))
        with pytest.raises(OSError, match="disk gone"):
            fault_point("wal.fsync")

    def test_after_skips_the_first_hits(self):
        faults.arm("p", after=2)
        fault_point("p")
        fault_point("p")
        with pytest.raises(InjectedCrash):
            fault_point("p")

    def test_times_fires_then_disarms(self):
        faults.arm("p", exc=InjectedFault("p"), times=2)
        with pytest.raises(InjectedFault):
            fault_point("p")
        with pytest.raises(InjectedFault):
            fault_point("p")
        fault_point("p")  # disarmed after two firings
        assert not faults.active

    def test_callback_runs_without_raising(self):
        seen = []
        faults.arm("p", callback=seen.append)
        fault_point("p")
        assert seen == ["p"]

    def test_hits_counted_while_armed(self):
        faults.arm("other")
        fault_point("p")
        fault_point("p")
        assert faults.hits("p") == 2

    def test_disarm_and_reset(self):
        faults.arm("p")
        faults.arm("q")
        assert faults.armed_points() == ["p", "q"]
        faults.disarm("p")
        assert faults.armed_points() == ["q"]
        faults.reset()
        assert not faults.active
        assert faults.armed_points() == []

    def test_invalid_schedules_rejected(self):
        with pytest.raises(ValueError):
            faults.arm("p", after=-1)
        with pytest.raises(ValueError):
            faults.arm("p", times=0)


class TestArmedContextManager:
    def test_disarms_on_exit(self):
        with armed("p"):
            assert faults.armed_points() == ["p"]
        assert faults.armed_points() == []

    def test_disarms_when_the_crash_propagates(self):
        with pytest.raises(InjectedCrash):
            with armed("p"):
                fault_point("p")
        assert not faults.active


class TestTearFinalRecord:
    def _wal_with_records(self, tmp_path, count=3):
        wal = WriteAheadLog(tmp_path / "wal.log", fsync="off")
        for index in range(count):
            wal.append("users", {"count": index})
        wal.close()
        return wal.path

    def test_tears_only_the_final_record(self, tmp_path):
        path = self._wal_with_records(tmp_path, count=3)
        removed = tear_final_record(path, keep_bytes=3)
        assert removed > 0
        scan = scan_wal(path)
        assert scan.torn
        assert [record.payload["count"] for record in scan.records] == [0, 1]

    def test_keep_zero_bytes_drops_the_record_cleanly(self, tmp_path):
        path = self._wal_with_records(tmp_path, count=2)
        tear_final_record(path, keep_bytes=0)
        scan = scan_wal(path)
        assert not scan.torn  # nothing of the record survives: clean tail
        assert len(scan.records) == 1

    def test_refuses_to_keep_the_record_intact(self, tmp_path):
        path = self._wal_with_records(tmp_path, count=1)
        with pytest.raises(ValueError):
            tear_final_record(path, keep_bytes=10_000)
