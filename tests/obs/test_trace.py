"""Tests for the hierarchical tracer."""

import json
import threading

import pytest

from repro.obs import (
    NULL_SPAN,
    Tracer,
    current_span,
    get_tracer,
    render_tree,
    set_tracer,
    span,
    stage_breakdown,
    use,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


class TestSpanTree:
    def test_nesting_follows_thread_context(self):
        tracer = Tracer()
        with tracer.trace("query") as root:
            with tracer.span("plan") as plan:
                assert plan.parent_id == root.span_id
                with tracer.span("route") as route:
                    assert route.parent_id == plan.span_id
            with tracer.span("execute") as execute:
                assert execute.parent_id == root.span_id
        trace = tracer.last()
        assert [s.name for s in trace.spans] == [
            "query", "plan", "route", "execute"]
        assert trace.root.name == "query"
        assert [s.name for s in trace.children_of(root.span_id)] == [
            "plan", "execute"]

    def test_durations_use_injected_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.trace("query"):
            with tracer.span("stage"):
                clock.advance(0.25)
            clock.advance(0.75)
        trace = tracer.last()
        assert trace.duration_seconds == pytest.approx(1.0)
        assert trace.find("stage").duration_seconds == pytest.approx(0.25)

    def test_attributes_set_and_add(self):
        tracer = Tracer()
        with tracer.trace("query") as root:
            root.set(algorithm="exact", k=10)
            root.add("items_scanned", 3)
            root.add("items_scanned", 4)
        trace = tracer.last()
        assert trace.root.attributes == {
            "algorithm": "exact", "k": 10, "items_scanned": 7}

    def test_exception_marks_error_and_finishes(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.trace("query"):
                raise RuntimeError("boom")
        trace = tracer.last()
        assert trace.root.attributes["error"] == "RuntimeError"
        assert trace.root.ended is not None

    def test_orphan_span_starts_its_own_trace(self):
        tracer = Tracer()
        with tracer.span("standalone"):
            pass
        assert tracer.last().root.name == "standalone"

    def test_explicit_parent_crosses_threads(self):
        tracer = Tracer()
        results = {}

        with tracer.trace("query") as root:
            parent = tracer.current()

            def worker():
                with tracer.span("shard.scan", parent=parent) as scan:
                    results["parent_id"] = scan.parent_id

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert results["parent_id"] == root.span_id
        assert tracer.last().find("shard.scan") is not None

    def test_null_parent_yields_null_span(self):
        tracer = Tracer()
        assert tracer.span("child", parent=NULL_SPAN) is NULL_SPAN


class TestSampling:
    def test_zero_rate_records_nothing(self):
        tracer = Tracer(sample_rate=0.0, seed=1)
        for _ in range(10):
            with tracer.trace("query"):
                with tracer.span("stage"):
                    pass
        assert tracer.roots_started == 10
        assert tracer.roots_sampled == 0
        assert tracer.last() is None

    def test_partial_rate_is_deterministic_with_seed(self):
        tracer = Tracer(sample_rate=0.5, seed=42)
        for _ in range(100):
            with tracer.trace("query"):
                pass
        assert tracer.roots_sampled == tracer.capacity or \
            0 < tracer.roots_sampled < 100

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)


class TestRingBuffer:
    def test_capacity_evicts_oldest(self):
        tracer = Tracer(capacity=2)
        ids = []
        for _ in range(3):
            with tracer.trace("query") as root:
                pass
            ids.append(root.trace.trace_id)
        assert tracer.get(ids[0]) is None
        assert tracer.get(ids[1]) is not None
        assert tracer.get(ids[2]) is not None
        assert [t.trace_id for t in tracer.recent()] == [ids[2], ids[1]]

    def test_external_trace_id_is_honoured(self):
        tracer = Tracer()
        with tracer.trace("query", trace_id="req-abc123"):
            pass
        assert tracer.get("req-abc123").trace_id == "req-abc123"

    def test_clear(self):
        tracer = Tracer()
        with tracer.trace("query"):
            pass
        tracer.clear()
        assert tracer.last() is None

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestGlobalTracer:
    def test_disabled_call_sites_return_null_span(self):
        assert get_tracer() is None
        assert span("anything") is NULL_SPAN
        assert current_span() is None
        with span("anything") as s:
            s.set(ignored=True).add("count")
        assert not s

    def test_use_installs_and_restores(self):
        tracer = Tracer()
        with use(tracer):
            assert get_tracer() is tracer
            with span("query"):
                pass
        assert get_tracer() is None
        assert tracer.last().root.name == "query"

    def test_set_tracer_returns_previous(self):
        tracer = Tracer()
        assert set_tracer(tracer) is None
        assert set_tracer(None) is tracer


class TestExport:
    def _sample_trace(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.trace("query", algorithm="exact"):
            with tracer.span("plan"):
                clock.advance(0.010)
            with tracer.span("execute") as ex:
                ex.add("items_scanned", 12)
                clock.advance(0.030)
        return tracer.last()

    def test_jsonl_round_trips(self):
        trace = self._sample_trace()
        rows = [json.loads(line)
                for line in trace.to_jsonl().strip().splitlines()]
        assert len(rows) == 3
        assert rows[0]["name"] == "query"
        assert rows[0]["parent_id"] is None
        assert rows[2]["attributes"]["items_scanned"] == 12

    def test_chrome_export_shape(self):
        trace = self._sample_trace()
        payload = json.loads(trace.to_chrome())
        events = payload["traceEvents"]
        assert len(events) == 3
        assert all(event["ph"] == "X" for event in events)
        root = next(e for e in events if e["name"] == "query")
        assert root["ts"] == 0.0
        assert root["dur"] == pytest.approx(40_000.0)  # 40 ms in us

    def test_to_dict_payload(self):
        trace = self._sample_trace()
        payload = trace.to_dict()
        assert payload["trace_id"] == trace.trace_id
        assert payload["duration_ms"] == pytest.approx(40.0)
        assert len(payload["spans"]) == 3


class TestRendering:
    def test_render_tree_shows_shares_and_coverage(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.trace("query"):
            with tracer.span("plan"):
                clock.advance(0.025)
            with tracer.span("execute"):
                clock.advance(0.075)
        text = render_tree(tracer.last())
        assert "plan" in text and "execute" in text
        assert "25.0%" in text
        assert "75.0%" in text
        assert "stage coverage: 100.0%" in text

    def test_stage_breakdown_aggregates_across_traces(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        for _ in range(2):
            with tracer.trace("query"):
                with tracer.span("execute"):
                    clock.advance(0.010)
        breakdown = stage_breakdown(tracer.recent())
        assert breakdown["execute"]["count"] == 2
        assert breakdown["execute"]["total_ms"] == pytest.approx(20.0)
        assert breakdown["execute"]["mean_ms"] == pytest.approx(10.0)
