"""Acceptance tests for the hot-path instrumentation.

Two contracts the observability layer must keep:

* **Zero interference** — running a query with the tracer installed must
  return bit-identical rankings, scores and access accounting to the
  untraced run (the traced per-shard sweep folds exactly like the
  untraced union scan).
* **Honest timings** — the recorded span tree must actually tile the
  query's wall time: the root's direct children cover >= 95% of the root
  span, every child fits inside its parent, and the per-shard scan
  counters add up (``items_in == items_scanned + items_pruned``).
"""

import time

import pytest

from repro.config import EngineConfig, ProximityConfig, ScoringConfig, WorkloadConfig
from repro.core.engine import SocialSearchEngine
from repro.obs.trace import Tracer, use
from repro.workload.datasets import scaled_dataset
from repro.workload.queries import generate_workload


@pytest.fixture(scope="module")
def corpus():
    dataset = scaled_dataset(120, seed=11, homophily=0.6)
    queries = generate_workload(
        dataset, WorkloadConfig(num_queries=12, k=10, seed=5))
    return dataset, queries


def partitioned_engine(dataset):
    engine = SocialSearchEngine(dataset, EngineConfig(
        algorithm="exact",
        scoring=ScoringConfig(vectorized=True),
        proximity=ProximityConfig(measure="ppr", materialize=True),
        partitions=4,
    ))
    engine.proximity.build()
    return engine


def signature(result):
    return ([(item.item_id, item.score) for item in result.items],
            result.accounting.to_dict())


class TestTracedEquivalence:
    def test_traced_run_is_bit_identical(self, corpus):
        dataset, queries = corpus
        untraced_engine = partitioned_engine(dataset)
        traced_engine = partitioned_engine(dataset)
        expected = [signature(untraced_engine.run(query)) for query in queries]
        with use(Tracer(sample_rate=1.0, capacity=len(queries))):
            observed = [signature(traced_engine.run(query))
                        for query in queries]
        assert observed == expected

    def test_partial_sampling_is_bit_identical(self, corpus):
        dataset, queries = corpus
        untraced_engine = partitioned_engine(dataset)
        sampled_engine = partitioned_engine(dataset)
        expected = [signature(untraced_engine.run(query)) for query in queries]
        with use(Tracer(sample_rate=0.5, seed=3)) as tracer:
            observed = [signature(sampled_engine.run(query))
                        for query in queries]
            assert 0 < tracer.roots_sampled < tracer.roots_started
        assert observed == expected


class TestSpanTreeHonesty:
    def test_stage_coverage_and_nesting(self, corpus):
        dataset, queries = corpus
        engine = partitioned_engine(dataset)
        for query in queries:  # warm the proximity cache first
            engine.run(query)
        with use(Tracer(sample_rate=1.0, capacity=len(queries))) as tracer:
            walls = []
            for query in queries:
                started = time.perf_counter()
                engine.run(query)
                walls.append(time.perf_counter() - started)
            traces = tracer.recent(limit=len(queries))
        assert len(traces) == len(queries)

        covered_total = 0.0
        wall_total = sum(walls)
        for trace in traces:
            root = trace.root
            assert root.name == "engine.run"
            # Every span nests inside its parent's interval.
            by_id = {span.span_id: span for span in trace.spans}
            for span in trace.spans:
                if span.parent_id is None:
                    continue
                parent = by_id[span.parent_id]
                assert parent.started <= span.started
                assert span.ended <= parent.ended + 1e-9
            covered_total += sum(
                child.duration_seconds
                for child in trace.children_of(root.span_id))
        # The root's direct children (plan.route + executor.search) tile
        # >= 95% of the recorded root spans in aggregate.
        root_total = sum(trace.root.duration_seconds for trace in traces)
        assert covered_total / root_total >= 0.95
        # ... and the recorded roots account for >= 90% of the measured
        # wall time (the remainder is the tracer's own bookkeeping).
        assert root_total / wall_total >= 0.90

    def test_shard_scan_counters_add_up(self, corpus):
        dataset, queries = corpus
        engine = partitioned_engine(dataset)
        with use(Tracer(sample_rate=1.0, capacity=len(queries))) as tracer:
            for query in queries:
                engine.run(query)
            traces = tracer.recent(limit=len(queries))
        shard_spans = [span for trace in traces for span in trace.spans
                       if span.name == "shard.scan"]
        probe_spans = [span for trace in traces for span in trace.spans
                       if span.name == "probe.scan"]
        assert shard_spans and probe_spans
        for span in shard_spans + probe_spans:
            attrs = span.attributes
            assert attrs["items_in"] == \
                attrs["items_scanned"] + attrs["items_pruned"]
        for span in shard_spans:
            assert "partition" in span.attributes
            assert "upper_bound" in span.attributes

    def test_executor_root_attributes(self, corpus):
        dataset, queries = corpus
        engine = partitioned_engine(dataset)
        with use(Tracer(sample_rate=1.0)) as tracer:
            engine.run(queries[0])
            trace = tracer.last()
        search = next(span for span in trace.spans
                      if span.name == "executor.search")
        attrs = search.attributes
        assert attrs["partitions"] == 4
        assert attrs["partitions_scanned"] + attrs["partitions_pruned"] >= 1
        assert attrs["candidates"] >= 0
