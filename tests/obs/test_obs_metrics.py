"""Tests for the metrics registry and Prometheus exposition."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, get_registry
from repro.obs.metrics import log_buckets


class TestCounter:
    def test_increments(self):
        counter = Counter("requests_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("requests_total").inc(-1)

    def test_rejects_bad_name(self):
        with pytest.raises(ValueError):
            Counter("bad name!")


class TestGauge:
    def test_set_and_inc(self):
        gauge = Gauge("cache_size")
        gauge.set(10)
        gauge.inc(-3)
        assert gauge.value == pytest.approx(7.0)


class TestHistogram:
    def test_observe_counts_and_sum(self):
        histogram = Histogram("latency_seconds")
        for value in (0.001, 0.002, 0.010):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(0.013)

    def test_percentile_is_bucket_upper_bound(self):
        histogram = Histogram("latency_seconds",
                              bounds=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.05):
            histogram.observe(value)
        assert histogram.percentile(0.0) == pytest.approx(0.001)
        assert histogram.percentile(0.5) == pytest.approx(0.01)
        assert histogram.percentile(1.0) == pytest.approx(0.1)

    def test_empty_percentile_is_zero(self):
        assert Histogram("latency_seconds").percentile(0.5) == 0.0

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            Histogram("latency_seconds").percentile(1.5)

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("latency_seconds", bounds=(0.1, 0.01))

    def test_log_buckets_are_exponential(self):
        bounds = log_buckets(start=1e-3, factor=10.0, count=3)
        assert bounds == pytest.approx((1e-3, 1e-2, 1e-1))
        with pytest.raises(ValueError):
            log_buckets(factor=1.0)


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry("test")
        first = registry.counter("requests_total")
        second = registry.counter("requests_total")
        assert first is second
        first.inc()
        assert second.value == 1

    def test_type_conflict_raises(self):
        registry = MetricsRegistry("test")
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")

    def test_namespace_prefixes_names(self):
        registry = MetricsRegistry("test")
        counter = registry.counter("requests_total")
        assert counter.name == "test_requests_total"
        assert registry.get("requests_total") is counter
        assert registry.get("test_requests_total") is counter

    def test_collectors_run_on_snapshot(self):
        registry = MetricsRegistry("test")
        source = {"hits": 0}

        def collect(reg):
            reg.gauge("cache_hits").set(source["hits"])

        registry.register_collector(collect)
        source["hits"] = 7
        assert registry.snapshot()["test_cache_hits"] == 7
        source["hits"] = 9
        assert registry.snapshot()["test_cache_hits"] == 9
        registry.unregister_collector(collect)
        source["hits"] = 11
        assert registry.snapshot()["test_cache_hits"] == 9

    def test_snapshot_includes_histogram_summary(self):
        registry = MetricsRegistry("test")
        registry.histogram("latency_seconds").observe(0.003)
        summary = registry.snapshot()["test_latency_seconds"]
        assert summary["count"] == 1
        assert summary["sum"] == pytest.approx(0.003)
        assert summary["p50"] > 0


class TestExposition:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry("test")
        registry.counter("requests_total", "Requests served.").inc(3)
        registry.gauge("cache_size").set(9)
        text = registry.expose_text()
        assert "# HELP test_requests_total Requests served." in text
        assert "# TYPE test_requests_total counter" in text
        assert "test_requests_total 3" in text
        assert "# TYPE test_cache_size gauge" in text
        assert "test_cache_size 9" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry("test")
        histogram = registry.histogram("latency_seconds",
                                       bounds=(0.001, 0.01))
        for value in (0.0005, 0.005, 5.0):
            histogram.observe(value)
        text = registry.expose_text()
        assert 'test_latency_seconds_bucket{le="0.001"} 1' in text
        assert 'test_latency_seconds_bucket{le="0.01"} 2' in text
        assert 'test_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "test_latency_seconds_count 3" in text

    def test_collectors_run_on_exposition(self):
        registry = MetricsRegistry("test")
        registry.register_collector(
            lambda reg: reg.gauge("pulled").set(5))
        assert "test_pulled 5" in registry.expose_text()


def test_default_registry_is_shared():
    assert get_registry() is get_registry()
    assert get_registry().namespace == "repro"
