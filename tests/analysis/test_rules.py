"""Per-rule flag/pass fixture tests for the static-analysis framework.

Each rule has a flagging fixture (must fire) and a passing fixture (must
stay silent under *every* rule) under ``tests/analysis/fixtures``.  The
fixtures double as living documentation of what each rule considers a
violation; module paths are taken relative to the fixtures directory so
path-scoped rules (``service/`` for hot-path) see the layout they scope
on.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import all_rules, get_rule, lint_paths, lint_source
from repro.analysis.runner import LintReport

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> (flagging fixture, passing fixture), paths relative to FIXTURES.
RULE_FIXTURES = {
    "guarded-by": ("flagging/guarded_flag.py", "passing/guarded_ok.py"),
    "byte-identity": ("flagging/arena_flag.py", "passing/arena_ok.py"),
    "durability-ordering": ("flagging/durable_flag.py",
                            "passing/durable_ok.py"),
    "rng-determinism": ("flagging/rng_flag.py", "passing/rng_ok.py"),
    "hot-path-materialisation": ("flagging/service/executor_flag.py",
                                 "passing/service/executor_ok.py"),
}


def lint_fixture(relative: str):
    report = lint_paths([FIXTURES / relative], root=FIXTURES)
    assert not report.errors, report.errors
    return report


def test_every_registered_rule_has_fixtures():
    assert {rule.rule_id for rule in all_rules()} == set(RULE_FIXTURES)


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_flagging_fixture_fires(rule_id):
    flagging, _ = RULE_FIXTURES[rule_id]
    report = lint_fixture(flagging)
    fired = {finding.rule for finding in report.findings}
    assert rule_id in fired
    # The fixture isolates its rule: nothing else may fire on it.
    assert fired == {rule_id}, report.findings


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_passing_fixture_is_clean(rule_id):
    _, passing = RULE_FIXTURES[rule_id]
    report = lint_fixture(passing)
    assert report.findings == [], report.findings


def test_finding_carries_location_and_formats():
    report = lint_fixture("flagging/rng_flag.py")
    finding = report.findings[0]
    assert finding.file == "flagging/rng_flag.py"
    assert finding.line > 0
    assert finding.format().startswith(
        f"{finding.file}:{finding.line}: [{finding.rule}]")


def test_guarded_by_flags_every_unlocked_mutation():
    report = lint_fixture("flagging/guarded_flag.py")
    lines = sorted(finding.line for finding in report.findings)
    # bump(), push() and the statement that slipped out of reset()'s with.
    assert len(lines) == 3


def test_guarded_by_message_suggests_lock_held_annotation():
    report = lint_fixture("flagging/guarded_flag.py")
    assert any("lock-held" in finding.message for finding in report.findings)


def test_justified_allow_suppresses():
    report = LintReport()
    findings = lint_source(
        "import numpy as np\n"
        "import random\n"
        "token = random.random()  "
        "# lint: allow(rng-determinism) -- demo snippet, not shipped\n",
        "snippet.py", report=report)
    assert findings == []
    assert report.suppressed == 1


def test_unjustified_allow_keeps_finding_with_reminder():
    findings = lint_source(
        "import numpy as np\n"
        "import random\n"
        "token = random.random()  # lint: allow(rng-determinism)\n",
        "snippet.py")
    assert len(findings) == 1
    assert "missing its mandatory" in findings[0].message


def test_allow_on_line_above_suppresses():
    report = LintReport()
    findings = lint_source(
        "import numpy as np\n"
        "import random\n"
        "# lint: allow(rng-determinism) -- fixture exercising line-above\n"
        "token = random.random()\n",
        "snippet.py", report=report)
    assert findings == []
    assert report.suppressed == 1


def test_hot_path_rule_scopes_on_module_path():
    source = "def handle(scores):\n    return scores.tolist()\n"
    rule = get_rule("hot-path-materialisation")
    assert lint_source(source, "service/handler.py", rules=[rule])
    assert not lint_source(source, "eval/report.py", rules=[rule])


def test_syntax_error_is_reported_not_raised():
    report = LintReport()
    findings = lint_source("def broken(:\n", "broken.py", report=report)
    assert findings == []
    assert report.errors and "broken.py" in report.errors[0]
