"""Baseline load/write/diff semantics: the grandfathering workflow."""

from __future__ import annotations

import json

from repro.analysis import (Finding, diff_against_baseline, load_baseline,
                            write_baseline)


def make_finding(message: str = "bad thing", file: str = "src/x.py",
                 line: int = 3, rule: str = "rng-determinism") -> Finding:
    return Finding(file=file, line=line, rule=rule, message=message)


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == []


def test_write_then_load_round_trip(tmp_path):
    path = tmp_path / "baseline.json"
    written = write_baseline(path, [make_finding()])
    assert written == 1
    entries = load_baseline(path)
    assert entries[0]["message"] == "bad thing"
    assert entries[0]["justification"] == ""
    payload = json.loads(path.read_text())
    assert payload["version"] == 1


def test_bare_list_baseline_is_accepted(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps([make_finding().to_dict()]))
    assert len(load_baseline(path)) == 1


def test_rewrite_preserves_justifications(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, [make_finding()])
    entries = load_baseline(path)
    entries[0]["justification"] = "third-party API forces it"
    path.write_text(json.dumps({"version": 1, "findings": entries}))
    # Re-writing from fresh findings (same key, different line) keeps it.
    write_baseline(path, [make_finding(line=99)], load_baseline(path))
    assert load_baseline(path)[0]["justification"] == \
        "third-party API forces it"


def test_diff_partitions_new_grandfathered_unjustified_stale():
    justified = make_finding("carried")
    unjustified = make_finding("not yet explained")
    fresh = make_finding("brand new")
    gone = make_finding("already fixed")
    baseline = [
        dict(justified.to_dict(), justification="legacy layout"),
        dict(unjustified.to_dict(), justification=""),
        dict(gone.to_dict(), justification="was real once"),
    ]
    diff = diff_against_baseline([justified, unjustified, fresh], baseline)
    assert diff.grandfathered == [justified]
    assert diff.unjustified == [unjustified]
    assert diff.new == [fresh]
    assert [entry["message"] for entry in diff.stale] == ["already fixed"]
    assert diff.failing == sorted({fresh, unjustified})


def test_matching_ignores_line_numbers():
    finding = make_finding(line=10)
    baseline = [dict(make_finding(line=200).to_dict(),
                     justification="line drift is fine")]
    diff = diff_against_baseline([finding], baseline)
    assert diff.grandfathered == [finding]
    assert diff.failing == []
