"""Exit-code and output contract of ``repro lint``."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import load_baseline
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
FLAGGING = str(FIXTURES / "flagging" / "rng_flag.py")
PASSING = str(FIXTURES / "passing" / "rng_ok.py")


def run_lint(*argv: str) -> int:
    return main(["lint", *argv])


def test_clean_path_exits_zero(tmp_path, capsys):
    code = run_lint(PASSING, "--baseline-file",
                    str(tmp_path / "baseline.json"))
    assert code == 0
    assert "0 failing" in capsys.readouterr().out


def test_findings_exit_nonzero(tmp_path, capsys):
    code = run_lint(FLAGGING, "--baseline-file",
                    str(tmp_path / "baseline.json"))
    assert code == 1
    assert "[rng-determinism]" in capsys.readouterr().out


def test_json_format_reports_findings(tmp_path, capsys):
    code = run_lint(FLAGGING, "--format", "json", "--baseline-file",
                    str(tmp_path / "baseline.json"))
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["failing"] == len(payload["new"]) > 0
    assert payload["files_scanned"] == 1


def test_baseline_write_then_justify_then_pass(tmp_path, capsys):
    baseline_file = tmp_path / "baseline.json"
    assert run_lint(FLAGGING, "--baseline", "write",
                    "--baseline-file", str(baseline_file)) == 0
    # Baselined but unjustified entries still fail the gate.
    assert run_lint(FLAGGING, "--baseline-file", str(baseline_file)) == 1
    assert "missing" not in capsys.readouterr().out  # gate, not allow text
    entries = load_baseline(baseline_file)
    for entry in entries:
        entry["justification"] = "fixture exercises the violation on purpose"
    baseline_file.write_text(json.dumps({"version": 1, "findings": entries}))
    assert run_lint(FLAGGING, "--baseline-file", str(baseline_file)) == 0
    out = capsys.readouterr().out
    assert "(baselined)" in out


def test_stale_baseline_entries_are_reported(tmp_path, capsys):
    baseline_file = tmp_path / "baseline.json"
    assert run_lint(FLAGGING, "--baseline", "write",
                    "--baseline-file", str(baseline_file)) == 0
    # The clean fixture fires nothing, so every entry is stale — but stale
    # alone does not fail the gate.
    assert run_lint(PASSING, "--baseline-file", str(baseline_file)) == 0
    assert "stale baseline entry" in capsys.readouterr().out


def test_rule_selection_runs_only_named_rules(tmp_path):
    baseline_file = str(tmp_path / "baseline.json")
    flagging_arena = str(FIXTURES / "flagging" / "arena_flag.py")
    assert run_lint(flagging_arena, "--rules", "byte-identity",
                    "--baseline-file", baseline_file) == 1
    assert run_lint(flagging_arena, "--rules", "rng-determinism",
                    "--baseline-file", baseline_file) == 0


def test_unknown_rule_exits_two(tmp_path, capsys):
    code = run_lint(PASSING, "--rules", "no-such-rule",
                    "--baseline-file", str(tmp_path / "baseline.json"))
    assert code == 2
    assert "known rules" in capsys.readouterr().err


def test_parse_error_exits_two(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def broken(:\n")
    code = run_lint(str(broken), "--baseline-file",
                    str(tmp_path / "baseline.json"))
    assert code == 2
    assert "parse error" in capsys.readouterr().out
