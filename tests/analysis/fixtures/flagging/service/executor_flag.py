"""Flagging fixture: materialisation shapes in a serve-path module."""


def handle(request, dataset, scores, item_ids):
    ranked = scores.tolist()  # corpus-sized array into a Python list
    lookup = dict(zip(item_ids, scores))  # corpus-sized dict builder
    workload = generate_workload(dataset)  # offline world in the serve path
    profile = dataset.tagging.tags_for_user(request.seeker)  # materialises
    return ranked, lookup, workload, profile
