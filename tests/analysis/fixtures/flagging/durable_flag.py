"""Flagging fixture: crash-unsafe publishing in a durable writer module."""

import os
from pathlib import Path


def publish(directory: str, payload: bytes) -> None:
    target = Path(directory) / "MANIFEST.json"
    tmp = target.with_suffix(".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
    os.rename(tmp, target)  # not the atomic-replace primitive


def publish_in_place(target: Path, payload: bytes) -> None:
    target.write_bytes(payload)  # truncates the destination in place


def publish_unfsynced(tmp: Path, target: Path) -> None:
    os.replace(tmp, target)  # rename may hit disk before the data


def recover(directory: str) -> None:
    try:
        publish(directory, b"")
    except BaseException:  # swallows InjectedCrash
        pass
