"""Flagging fixture: guarded attrs mutated outside their lock."""

import threading


class Counter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: _lock
        self._items = []  # guarded-by: _lock

    def bump(self) -> None:
        self._count += 1  # mutated without holding the lock

    def push(self, value) -> None:
        self._items.append(value)  # mutator call without the lock

    def reset(self) -> None:
        with self._lock:
            self._count = 0
        self._items = []  # second statement slipped outside the with
