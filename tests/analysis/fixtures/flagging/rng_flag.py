"""Flagging fixture: draws from the hidden global RNGs."""

import random

import numpy as np
from random import shuffle  # binds a global-state function


def sample(count: int):
    noise = np.random.rand(count)  # numpy's global RNG
    pick = random.random()  # stdlib's global RNG
    np.random.seed(0)  # reseeding the global stream
    return noise, pick
