"""Flagging fixture: byte-identity hazards in an arena-named module."""

import numpy as np


def pack(values):
    table = np.zeros(4)  # dtype left to numpy's default
    order = np.argsort(values)  # default introsort is not stable
    ranked = values.argsort()  # method form, same hazard
    return table, order, ranked
