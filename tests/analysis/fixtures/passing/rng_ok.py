"""Passing fixture: every draw flows through a seeded instance RNG."""

import random

import numpy as np
from random import Random  # seedable class: allowed


def sample(count: int, seed: int):
    rng = np.random.default_rng(seed)
    stdlib_rng = random.Random(seed)
    noise = rng.random(count)
    pick = stdlib_rng.random()
    return noise, pick
