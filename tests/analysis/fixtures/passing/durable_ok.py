"""Passing fixture: the tmp + fsync + os.replace publish sequence."""

import os
from pathlib import Path


def publish(directory: str, payload: bytes) -> None:
    target = Path(directory) / "MANIFEST.json"
    tmp = target.with_suffix(".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)


def cleanup_and_reraise(directory: str) -> None:
    try:
        publish(directory, b"")
    except BaseException:
        os.unlink(Path(directory) / "MANIFEST.tmp")
        raise


def narrow_handler(directory: str) -> bool:
    try:
        publish(directory, b"")
    except OSError:
        return False
    return True
