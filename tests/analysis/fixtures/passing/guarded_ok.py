"""Passing fixture: every guarded mutation holds the lock."""

import threading


class Counter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: _lock
        self._items = []  # guarded-by: _lock
        self._unguarded = 0  # no annotation, free to mutate anywhere

    def bump(self) -> None:
        with self._lock:
            self._count += 1

    def push(self, value) -> None:
        with self._lock:
            self._items.append(value)
            self._drain()

    def _drain(self) -> None:  # lock-held: _lock
        self._items.clear()
        self._count = 0

    def touch(self) -> None:
        self._unguarded += 1

    def snapshot(self) -> int:
        return self._count  # reads are deliberately unchecked
