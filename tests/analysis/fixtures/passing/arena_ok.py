"""Passing fixture: explicit dtypes and stable sorts in an arena module."""

import numpy as np


def pack(values):
    table = np.zeros(4, dtype=np.int64)
    order = np.argsort(values, kind="stable")
    ranked = values.argsort(kind="stable")
    mirrored = np.asarray(values)  # asarray keeps the input dtype: exempt
    return table, order, ranked, mirrored
