"""Passing fixture: the serve path stays array-native."""

import numpy as np


def handle(request, dataset, scores, item_ids, k):
    order = np.argsort(scores, kind="stable")[::-1][:k]
    top = [(int(item_ids[i]), float(scores[i]))
           for i in order.tolist()]  # lint: allow(hot-path-materialisation) -- k-sized top-k slice
    popularity = dataset.tagging.tag_popularity()  # array-native accessor
    return top, popularity
