"""The self-check CI runs: the repo's own sources pass the lint gate."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import diff_against_baseline, lint_paths, load_baseline

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_passes_the_gate_against_committed_baseline():
    report = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
    assert not report.errors, report.errors
    baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
    diff = diff_against_baseline(report.findings, baseline)
    assert diff.failing == [], [finding.format() for finding in diff.failing]
    # The committed baseline never carries entries that no longer fire.
    assert diff.stale == [], diff.stale


def test_committed_baseline_entries_are_all_justified():
    for entry in load_baseline(REPO_ROOT / "lint-baseline.json"):
        assert str(entry.get("justification", "")).strip(), entry
