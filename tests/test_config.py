"""Tests for configuration validation."""

import pytest

from repro.config import (
    DatasetConfig,
    EngineConfig,
    ExperimentConfig,
    ProximityConfig,
    ScoringConfig,
    WorkloadConfig,
    default_engine_config,
)
from repro.errors import ConfigurationError


class TestScoringConfig:
    def test_defaults_valid(self):
        config = ScoringConfig()
        assert config.alpha == 0.5
        assert config.include_seeker is False

    @pytest.mark.parametrize("alpha", [-0.1, 1.1, 2.0])
    def test_alpha_out_of_range_rejected(self, alpha):
        with pytest.raises(ConfigurationError):
            ScoringConfig(alpha=alpha)

    def test_proximity_floor_validated(self):
        with pytest.raises(ConfigurationError):
            ScoringConfig(proximity_floor=1.0)

    def test_to_dict(self):
        assert ScoringConfig(alpha=0.7).to_dict()["alpha"] == 0.7


class TestProximityConfig:
    def test_defaults_valid(self):
        assert ProximityConfig().measure == "shortest-path"

    @pytest.mark.parametrize("field,value", [
        ("measure", ""),
        ("decay", 0.0),
        ("decay", 1.5),
        ("damping", 1.0),
        ("max_hops", 0),
        ("katz_beta", 0.0),
        ("ppr_iterations", 0),
        ("ppr_tolerance", 0.0),
        ("cache_size", -1),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            ProximityConfig(**{field: value})


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.algorithm == "social-first"
        assert config.early_termination is True

    def test_batch_size_validated(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(batch_size=0)

    def test_to_dict_nested(self):
        data = EngineConfig().to_dict()
        assert data["scoring"]["alpha"] == 0.5
        assert data["proximity"]["measure"] == "shortest-path"
        assert data["partitions"] == 1
        assert data["partition_seed"] == 29

    def test_partitions_validated(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(partitions=0)
        assert EngineConfig(partitions=4).partitions == 4

    def test_default_engine_config_helper(self):
        config = default_engine_config(alpha=0.2, algorithm="nra", measure="ppr")
        assert config.scoring.alpha == 0.2
        assert config.algorithm == "nra"
        assert config.proximity.measure == "ppr"


class TestDatasetConfig:
    @pytest.mark.parametrize("field,value", [
        ("num_users", 1),
        ("num_items", 0),
        ("num_tags", 0),
        ("num_actions", 0),
        ("avg_degree", 0.0),
        ("homophily", 1.5),
        ("tag_locality", 1.5),
        ("tags_per_item", 0.5),
        ("name", ""),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            DatasetConfig(**{field: value})

    def test_to_dict(self):
        assert DatasetConfig(num_users=10).to_dict()["num_users"] == 10


class TestWorkloadConfig:
    def test_invalid_strategies_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(seeker_strategy="vip")
        with pytest.raises(ConfigurationError):
            WorkloadConfig(tag_strategy="trendy")

    def test_invalid_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(num_queries=0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(k=0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(tags_per_query=0.0)


class TestExperimentConfig:
    def test_defaults_compose(self):
        config = ExperimentConfig(name="fig3")
        assert config.dataset.num_users == 200
        assert config.to_dict()["name"] == "fig3"

    def test_holdout_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(holdout_fraction=1.0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(name="")
