"""Landmark sketch persistence and delta-overlay invalidation.

The sketch's dense arrays persist as the arena's ``landmark.*`` section —
attaching them must reproduce the in-memory sketch exactly, rebuilds must
be byte-identical (the arena invariant), and graph updates must route the
touched seekers to exact overlay rows instead of the frozen sketch.
"""

import numpy as np
import pytest

from repro.config import DatasetConfig, ProximityConfig
from repro.errors import PersistenceError
from repro.graph import SocialGraph
from repro.proximity.landmarks import LandmarkProximity
from repro.storage.arena import attach_landmarks, build_arena, load_landmarks
from repro.workload import build_dataset

CONFIG = DatasetConfig(
    name="landmark-arena", num_users=40, num_items=80, num_tags=8,
    num_actions=400, graph_model="community", avg_degree=5.0,
    homophily=0.6, seed=29)


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(CONFIG)


@pytest.fixture(scope="module")
def sketch(dataset):
    return LandmarkProximity(dataset.graph, ProximityConfig(),
                             num_landmarks=4)


class TestArenaRoundTrip:
    def test_attached_sketch_serves_identical_estimates(
            self, dataset, sketch, tmp_path):
        path = build_arena(dataset, tmp_path / "corpus.arena",
                           landmarks=sketch)
        attached = LandmarkProximity(dataset.graph, ProximityConfig(),
                                     num_landmarks=4)
        assert attach_landmarks(attached, path)
        for seeker in range(dataset.num_users):
            assert np.array_equal(attached.vector_array(seeker),
                                  sketch.vector_array(seeker))

    def test_metadata_round_trips(self, dataset, sketch, tmp_path):
        path = build_arena(dataset, tmp_path / "corpus.arena",
                           landmarks=sketch)
        loaded = load_landmarks(path)
        assert loaded is not None
        landmark_ids, distances, hops, meta = loaded
        assert landmark_ids.tolist() == sketch.landmarks
        assert distances.shape == (4, dataset.num_users)
        assert hops.shape == distances.shape
        assert meta["num_landmarks"] == 4
        assert meta["strategy"] == "degree"

    def test_rebuild_is_byte_identical(self, tmp_path):
        paths = []
        for name in ("a", "b"):
            fresh = build_dataset(CONFIG)
            fresh_sketch = LandmarkProximity(fresh.graph, ProximityConfig(),
                                             num_landmarks=4)
            paths.append(build_arena(fresh, tmp_path / f"{name}.arena",
                                     landmarks=fresh_sketch))
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_arena_without_sketch_attaches_nothing(self, dataset, tmp_path):
        path = build_arena(dataset, tmp_path / "bare.arena")
        assert load_landmarks(path) is None
        attached = LandmarkProximity(dataset.graph, ProximityConfig(),
                                     num_landmarks=4)
        assert not attach_landmarks(attached, path)

    def test_decay_mismatch_is_rejected(self, dataset, sketch, tmp_path):
        path = build_arena(dataset, tmp_path / "corpus.arena",
                           landmarks=sketch)
        other = LandmarkProximity(dataset.graph, ProximityConfig(decay=0.25),
                                  num_landmarks=4)
        with pytest.raises(PersistenceError):
            attach_landmarks(other, path)


class TestDeltaOverlay:
    def _sketch(self):
        edges = [(0, 1, 1.0), (1, 2, 0.5), (0, 3, 0.8), (3, 4, 1.0),
                 (2, 4, 0.6)]
        graph = SocialGraph.from_edges(5, edges)
        return graph, LandmarkProximity(graph, ProximityConfig(),
                                        num_landmarks=2)

    def test_invalidated_seeker_is_served_the_exact_row(self):
        graph, sketch = self._sketch()
        before = sketch.vector_array(2).copy()
        sketch.invalidate([2])
        assert sketch.stale_seekers == 1
        after = sketch.vector_array(2)
        # Exact rows dominate the admissible sketch under-estimates.
        assert np.all(after >= before - 1e-12)
        fresh = LandmarkProximity(graph, ProximityConfig(), num_landmarks=2)
        assert np.array_equal(after, fresh._exact_row(2))

    def test_untouched_seekers_keep_the_sketch_path(self):
        _graph, sketch = self._sketch()
        before = sketch.vector_array(0).copy()
        sketch.invalidate([2])
        assert np.array_equal(sketch.vector_array(0), before)

    def test_graph_update_grows_arrays_and_marks_stale(self):
        graph, sketch = self._sketch()
        grown = SocialGraph.from_edges(7, [(0, 1, 1.0), (1, 2, 0.5),
                                           (0, 3, 0.8), (3, 4, 1.0),
                                           (2, 4, 0.6), (5, 6, 1.0)])
        sketch.graph_updated(grown, affected=[1])
        assert sketch.stale_seekers == 1
        _ids, distances, hops = sketch.sketch_arrays()
        assert distances.shape[1] == 7
        assert hops.shape[1] == 7
        # New users are unreachable through the frozen sketch except via
        # their exact direct friendships.
        row = sketch.vector_array(5)
        assert row[6] > 0.0
        assert row[:5].sum() == 0.0
