"""Tests shared across every proximity measure plus measure-specific checks."""

import math

import pytest

from repro.config import ProximityConfig
from repro.errors import UnknownProximityError, UnknownUserError
from repro.proximity import (
    AdamicAdarProximity,
    CommonNeighboursProximity,
    JaccardProximity,
    KatzProximity,
    LandmarkProximity,
    MonteCarloPageRankProximity,
    PersonalizedPageRankProximity,
    ShortestPathProximity,
    available_proximities,
    create_proximity,
    select_landmarks,
)

ALL_MEASURES = [
    "shortest-path",
    "ppr",
    "ppr-mc",
    "katz",
    "common-neighbours",
    "adamic-adar",
    "jaccard",
    "landmark",
]


class TestRegistry:
    def test_all_measures_registered(self):
        for name in ALL_MEASURES:
            assert name in available_proximities()

    def test_create_by_name(self, small_graph):
        measure = create_proximity("shortest-path", small_graph)
        assert isinstance(measure, ShortestPathProximity)

    def test_unknown_name_raises(self, small_graph):
        with pytest.raises(UnknownProximityError):
            create_proximity("nope", small_graph)


@pytest.mark.parametrize("name", ALL_MEASURES)
class TestEveryMeasure:
    def test_values_in_unit_interval(self, small_graph, name):
        measure = create_proximity(name, small_graph)
        vector = measure.vector(0)
        assert all(0.0 <= value <= 1.0 for value in vector.values())

    def test_seeker_not_in_vector(self, small_graph, name):
        measure = create_proximity(name, small_graph)
        assert 0 not in measure.vector(0)

    def test_self_proximity_is_one(self, small_graph, name):
        measure = create_proximity(name, small_graph)
        assert measure.proximity(2, 2) == 1.0

    def test_isolated_user_has_empty_vector(self, small_graph, name):
        measure = create_proximity(name, small_graph)
        assert measure.vector(5) == {}

    def test_isolated_user_unreachable(self, small_graph, name):
        measure = create_proximity(name, small_graph)
        assert measure.proximity(0, 5) == 0.0

    def test_iter_ranked_is_non_increasing(self, small_graph, name):
        measure = create_proximity(name, small_graph)
        values = [value for _, value in measure.iter_ranked(0)]
        assert values == sorted(values, reverse=True)

    def test_iter_ranked_matches_vector(self, small_graph, name):
        measure = create_proximity(name, small_graph)
        ranked = dict(measure.iter_ranked(0))
        vector = measure.vector(0)
        assert set(ranked) == set(vector)
        for user, value in ranked.items():
            assert value == pytest.approx(vector[user], rel=1e-6, abs=1e-9)

    def test_unknown_user_raises(self, small_graph, name):
        measure = create_proximity(name, small_graph)
        with pytest.raises(UnknownUserError):
            measure.vector(17)

    def test_top_limits_results(self, small_graph, name):
        measure = create_proximity(name, small_graph)
        assert len(measure.top(0, 2)) <= 2

    def test_direct_friend_beats_stranger(self, small_graph, name):
        measure = create_proximity(name, small_graph)
        # User 1 is a direct strong friend of 0; user 2 is only reachable
        # through 1 over a weak tie.
        assert measure.proximity(0, 1) >= measure.proximity(0, 2)


class TestShortestPathProximity:
    def test_direct_edge_value(self, small_graph):
        config = ProximityConfig(decay=0.5)
        measure = ShortestPathProximity(small_graph, config)
        # prox(0, 1) = decay * weight = 0.5 * 1.0.
        assert measure.proximity(0, 1) == pytest.approx(0.5)
        assert measure.proximity(0, 3) == pytest.approx(0.5 * 0.8)

    def test_two_hop_path_uses_best_route(self, small_graph):
        config = ProximityConfig(decay=0.5)
        measure = ShortestPathProximity(small_graph, config)
        # Best path 0-3-4: 0.5^2 * 0.8 * 1.0.
        assert measure.proximity(0, 4) == pytest.approx(0.25 * 0.8)

    def test_max_hops_cuts_far_users(self, small_graph):
        measure = ShortestPathProximity(small_graph, ProximityConfig(max_hops=1))
        vector = measure.vector(0)
        assert set(vector) == {1, 3}

    def test_no_decay_keeps_pure_path_product(self, small_graph):
        measure = ShortestPathProximity(small_graph, ProximityConfig(decay=1.0))
        assert measure.proximity(0, 4) == pytest.approx(0.8)

    def test_path_proximity_helper(self):
        value = ShortestPathProximity.path_proximity([0.8, 1.0], decay=0.5)
        assert value == pytest.approx(0.25 * 0.8)


class TestPageRank:
    def test_power_iteration_mass_concentrates_on_neighbours(self, small_graph):
        measure = PersonalizedPageRankProximity(small_graph, ProximityConfig())
        vector = measure.vector(0)
        assert vector[1] == pytest.approx(1.0)  # strongest neighbour normalised to 1
        assert vector[1] >= vector[2]

    def test_monte_carlo_is_deterministic_per_seed(self, small_graph):
        a = MonteCarloPageRankProximity(small_graph, ProximityConfig(), seed=3)
        b = MonteCarloPageRankProximity(small_graph, ProximityConfig(), seed=3)
        assert a.vector(0) == b.vector(0)

    def test_monte_carlo_roughly_agrees_with_power_iteration(self, small_graph):
        exact = PersonalizedPageRankProximity(small_graph, ProximityConfig()).vector(0)
        sampled = MonteCarloPageRankProximity(small_graph, ProximityConfig(),
                                              num_walks=4000, seed=1).vector(0)
        # Both should agree that user 1 is the closest.
        assert max(exact, key=exact.get) == max(sampled, key=sampled.get)


class TestKatz:
    def test_truncation_limits_reach(self, small_graph):
        close = KatzProximity(small_graph, ProximityConfig(max_hops=1)).vector(0)
        far = KatzProximity(small_graph, ProximityConfig(max_hops=3)).vector(0)
        assert set(close) == {1, 3}
        assert set(far) >= set(close)

    def test_direct_neighbour_strongest(self, small_graph):
        vector = KatzProximity(small_graph, ProximityConfig()).vector(0)
        assert max(vector, key=vector.get) == 1


class TestNeighbourhood:
    def test_common_neighbours_counts_shared_friends(self, small_graph):
        vector = CommonNeighboursProximity(small_graph).vector(0)
        # 0 and 4 share friends 1 and 3 but are not adjacent; 2 shares only 1.
        assert vector[4] > vector[2]

    def test_adamic_adar_discounts_popular_friends(self, small_graph):
        vector = AdamicAdarProximity(small_graph).vector(0)
        assert vector[4] > 0.0

    def test_jaccard_in_unit_interval(self, small_graph):
        vector = JaccardProximity(small_graph).vector(0)
        assert all(0.0 <= value <= 1.0 for value in vector.values())

    def test_myopic_measures_ignore_three_hop_users(self):
        from repro.graph import SocialGraph
        chain = SocialGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        vector = CommonNeighboursProximity(chain).vector(0)
        assert 3 not in vector


class TestLandmarks:
    def test_select_by_degree_prefers_hubs(self, small_graph):
        landmarks = select_landmarks(small_graph, 2, strategy="degree")
        assert 1 in landmarks  # user 1 has the highest degree

    def test_select_random_is_deterministic(self, small_graph):
        a = select_landmarks(small_graph, 3, seed=5, strategy="random")
        b = select_landmarks(small_graph, 3, seed=5, strategy="random")
        assert a == b

    def test_landmark_estimates_upper_bounded_by_exact(self, small_graph):
        exact = ShortestPathProximity(small_graph, ProximityConfig())
        sketch = LandmarkProximity(small_graph, ProximityConfig(), num_landmarks=3)
        exact_vector = exact.vector(0)
        for user, estimate in sketch.vector(0).items():
            if user in exact_vector:
                assert estimate <= exact_vector[user] + 1e-6

    def test_memory_accounting_positive(self, small_graph):
        sketch = LandmarkProximity(small_graph, ProximityConfig(), num_landmarks=2)
        assert sketch.memory_bytes() > 0
