"""Tests for the materialized proximity shard layer."""

import numpy as np
import pytest

from repro.config import ProximityConfig
from repro.graph import SocialGraphBuilder
from repro.proximity import MaterializedProximity
from repro.proximity.pagerank import PersonalizedPageRankProximity


class CountingPPR(PersonalizedPageRankProximity):
    """PPR that counts online vector computations."""

    def __init__(self, graph, config=None):
        super().__init__(graph, config)
        self.array_calls = 0

    def vector_array(self, seeker):
        self.array_calls += 1
        return super().vector_array(seeker)


@pytest.fixture()
def inner(synthetic_dataset):
    return CountingPPR(synthetic_dataset.graph, ProximityConfig(measure="ppr"))


@pytest.fixture()
def built(inner):
    materialized = MaterializedProximity(inner)
    materialized.build()
    return materialized


class TestBuild:
    def test_build_covers_every_user(self, built, synthetic_dataset):
        assert built.built
        assert built.num_rows() == synthetic_dataset.num_users
        assert sum(len(shard) for shard in built.shards()) == synthetic_dataset.num_users

    def test_rows_are_bit_identical_to_online(self, built, inner, synthetic_dataset):
        for seeker in range(0, synthetic_dataset.num_users, 7):
            np.testing.assert_array_equal(built.vector_array(seeker),
                                          inner.vector_array(seeker))

    def test_vector_dict_matches_online(self, built, inner):
        assert built.vector(3) == inner.vector(3)

    def test_served_from_shard_without_recompute(self, inner):
        materialized = MaterializedProximity(inner)
        materialized.build()
        calls_after_build = inner.array_calls
        materialized.vector_array(5)
        materialized.vector(5)
        materialized.proximity(5, 9)
        assert inner.array_calls == calls_after_build
        assert materialized.statistics.shard_hits == 3
        assert materialized.statistics.refinements == 0

    def test_point_lookup_matches_online(self, built, inner):
        for target in (0, 1, 17, 42):
            assert built.proximity(2, target) == pytest.approx(
                inner.proximity(2, target))
        assert built.proximity(4, 4) == 1.0


class TestBounds:
    def test_cluster_bound_is_admissible(self, built, synthetic_dataset):
        for seeker in range(synthetic_dataset.num_users):
            bound = built.upper_bound_array(seeker)
            assert bound is not None
            assert np.all(bound >= built.vector_array(seeker) - 1e-15)

    def test_frontier_bound_equals_first_ranked(self, built):
        for seeker in (0, 5, 11):
            ranked = list(built.iter_ranked(seeker))
            bound = built.frontier_bound(seeker)
            if ranked:
                assert bound == ranked[0][1]
            else:
                assert bound == 0.0

    def test_unmaterialized_seeker_has_no_bound(self, inner):
        materialized = MaterializedProximity(inner)
        assert materialized.frontier_bound(0) is None
        assert materialized.upper_bound_array(0) is None


class TestLazyRefinement:
    def test_unbuilt_measure_refines_through_inner(self, inner):
        materialized = MaterializedProximity(inner)
        first = materialized.vector_array(4)
        second = materialized.vector_array(4)
        np.testing.assert_array_equal(first, second)
        # First call computes, second is served from the overlay.
        assert inner.array_calls == 1
        assert materialized.statistics.refinements == 1
        assert materialized.statistics.overlay_hits == 1

    def test_invalidate_marks_rows_stale(self, built, inner):
        calls = inner.array_calls
        assert built.invalidate([3]) == 1
        built.vector_array(3)          # refined online
        assert inner.array_calls == calls + 1
        assert built.upper_bound_array(3) is None
        built.vector_array(2)          # untouched seeker still shard-served
        assert inner.array_calls == calls + 1

    def test_rebind_drops_all_shards(self, built, synthetic_dataset):
        builder = SocialGraphBuilder(synthetic_dataset.graph.num_users)
        for u, v, w in synthetic_dataset.graph.iter_edges():
            builder.add_edge(u, v, w)
        built.rebind(builder.build())
        assert not built.built
        # Serving still works through lazy refinement on the new graph.
        assert built.vector_array(0).shape[0] == synthetic_dataset.graph.num_users
        assert built.statistics.refinements >= 1


class TestIntrospection:
    def test_cluster_of_matches_labels(self, built):
        labels = built.labels()
        for seeker in (0, 9, 23):
            assert built.cluster_of(seeker) == labels[seeker]

    def test_memory_and_entries_positive(self, built):
        assert built.num_entries() > 0
        assert built.memory_bytes() > 0

    def test_partial_build(self, inner):
        materialized = MaterializedProximity(inner)
        materialized.build(seekers=[0, 1, 2])
        assert materialized.num_rows() == 3
        assert materialized.frontier_bound(0) is not None
        assert materialized.frontier_bound(30) is None

    def test_statistics_to_dict(self, built):
        built.vector_array(0)
        stats = built.statistics.to_dict()
        assert stats["shard_hits"] == 1
        assert stats["lookups"] == 1
