"""Tests for the materialized proximity shard layer."""

import numpy as np
import pytest

from repro.config import ProximityConfig
from repro.graph import SocialGraphBuilder
from repro.proximity import MaterializedProximity
from repro.proximity.pagerank import PersonalizedPageRankProximity


class CountingPPR(PersonalizedPageRankProximity):
    """PPR that counts online vector computations."""

    def __init__(self, graph, config=None):
        super().__init__(graph, config)
        self.array_calls = 0

    def vector_array(self, seeker):
        self.array_calls += 1
        return super().vector_array(seeker)


@pytest.fixture()
def inner(synthetic_dataset):
    return CountingPPR(synthetic_dataset.graph, ProximityConfig(measure="ppr"))


@pytest.fixture()
def built(inner):
    materialized = MaterializedProximity(inner)
    materialized.build()
    return materialized


class TestBuild:
    def test_build_covers_every_user(self, built, synthetic_dataset):
        assert built.built
        assert built.num_rows() == synthetic_dataset.num_users
        assert sum(len(shard) for shard in built.shards()) == synthetic_dataset.num_users

    def test_rows_are_bit_identical_to_online(self, built, inner, synthetic_dataset):
        for seeker in range(0, synthetic_dataset.num_users, 7):
            np.testing.assert_array_equal(built.vector_array(seeker),
                                          inner.vector_array(seeker))

    def test_vector_dict_matches_online(self, built, inner):
        assert built.vector(3) == inner.vector(3)

    def test_served_from_shard_without_recompute(self, inner):
        materialized = MaterializedProximity(inner)
        materialized.build()
        calls_after_build = inner.array_calls
        materialized.vector_array(5)
        materialized.vector(5)
        materialized.proximity(5, 9)
        assert inner.array_calls == calls_after_build
        assert materialized.statistics.shard_hits == 3
        assert materialized.statistics.refinements == 0

    def test_point_lookup_matches_online(self, built, inner):
        for target in (0, 1, 17, 42):
            assert built.proximity(2, target) == pytest.approx(
                inner.proximity(2, target))
        assert built.proximity(4, 4) == 1.0


class TestBounds:
    def test_cluster_bound_is_admissible(self, built, synthetic_dataset):
        for seeker in range(synthetic_dataset.num_users):
            bound = built.upper_bound_array(seeker)
            assert bound is not None
            assert np.all(bound >= built.vector_array(seeker) - 1e-15)

    def test_frontier_bound_equals_first_ranked(self, built):
        for seeker in (0, 5, 11):
            ranked = list(built.iter_ranked(seeker))
            bound = built.frontier_bound(seeker)
            if ranked:
                assert bound == ranked[0][1]
            else:
                assert bound == 0.0

    def test_unmaterialized_seeker_has_no_bound(self, inner):
        materialized = MaterializedProximity(inner)
        assert materialized.frontier_bound(0) is None
        assert materialized.upper_bound_array(0) is None


class TestLazyRefinement:
    def test_unbuilt_measure_refines_through_inner(self, inner):
        materialized = MaterializedProximity(inner)
        first = materialized.vector_array(4)
        second = materialized.vector_array(4)
        np.testing.assert_array_equal(first, second)
        # First call computes, second is served from the overlay.
        assert inner.array_calls == 1
        assert materialized.statistics.refinements == 1
        assert materialized.statistics.overlay_hits == 1

    def test_invalidate_marks_rows_stale(self, built, inner):
        calls = inner.array_calls
        assert built.invalidate([3]) == 1
        built.vector_array(3)          # refined online
        assert inner.array_calls == calls + 1
        assert built.upper_bound_array(3) is None
        built.vector_array(2)          # untouched seeker still shard-served
        assert inner.array_calls == calls + 1

    def test_rebind_drops_all_shards(self, built, synthetic_dataset):
        builder = SocialGraphBuilder(synthetic_dataset.graph.num_users)
        for u, v, w in synthetic_dataset.graph.iter_edges():
            builder.add_edge(u, v, w)
        built.rebind(builder.build())
        assert not built.built
        # Serving still works through lazy refinement on the new graph.
        assert built.vector_array(0).shape[0] == synthetic_dataset.graph.num_users
        assert built.statistics.refinements >= 1


class TestIntrospection:
    def test_cluster_of_matches_labels(self, built):
        labels = built.labels()
        for seeker in (0, 9, 23):
            assert built.cluster_of(seeker) == labels[seeker]

    def test_memory_and_entries_positive(self, built):
        assert built.num_entries() > 0
        assert built.memory_bytes() > 0

    def test_partial_build(self, inner):
        materialized = MaterializedProximity(inner)
        materialized.build(seekers=[0, 1, 2])
        assert materialized.num_rows() == 3
        assert materialized.frontier_bound(0) is not None
        assert materialized.frontier_bound(30) is None

    def test_statistics_to_dict(self, built):
        built.vector_array(0)
        stats = built.statistics.to_dict()
        assert stats["shard_hits"] == 1
        assert stats["lookups"] == 1


class TestIncrementalMaintenance:
    """Updates invalidate per cluster and repair in place, never wholesale."""

    def test_invalidate_repairs_only_touched_cluster_bound(self, built):
        target = built.shards()[0]
        victim = int(target.members[0])
        other_bounds = {shard.cluster_id: shard.bound
                        for shard in built.shards()
                        if shard.cluster_id != target.cluster_id}
        built.invalidate([victim])
        # Untouched clusters keep their bound arrays by identity.
        for shard in built.shards():
            if shard.cluster_id in other_bounds:
                assert shard.bound is other_bounds[shard.cluster_id]
        # The touched cluster's bound is re-maximised over fresh rows only.
        repaired = next(shard for shard in built.shards()
                        if shard.cluster_id == target.cluster_id)
        expected = np.zeros_like(repaired.bound)
        for position, member in enumerate(repaired.members.tolist()):
            if member == victim:
                continue
            user_ids, values = repaired.row(position)
            np.maximum.at(expected, user_ids, values)
        np.testing.assert_array_equal(repaired.bound, expected)

    def test_stale_member_gets_no_bound_fresh_member_keeps_it(self, built):
        shard = next(s for s in built.shards() if len(s) >= 2)
        stale, fresh = int(shard.members[0]), int(shard.members[1])
        built.invalidate([stale])
        assert built.upper_bound_array(stale) is None
        assert built.upper_bound_array(fresh) is not None

    def test_all_stale_cluster_stays_repairable(self, built, inner):
        shard = built.shards()[0]
        members = shard.members.tolist()
        rows_before = built.num_rows()
        built.invalidate(members)
        # Rows stay in storage (inert: zero bound, no lookups served).
        assert built.num_rows() == rows_before
        assert not built.upper_bound_array(members[0]).any() \
            if built.upper_bound_array(members[0]) is not None else True
        repaired = built.repair(members)
        assert repaired == len(members)
        for member in members:
            np.testing.assert_array_equal(built.vector_array(member),
                                          inner.vector_array(member))

    def test_repair_restores_shard_serving(self, built, inner):
        victim = int(built.shards()[0].members[0])
        built.invalidate([victim])
        calls_before = inner.array_calls
        assert built.repair([victim]) == 1
        assert inner.array_calls == calls_before + 1
        assert built.statistics.repairs == 1
        # Serving the repaired seeker is a shard hit, not a refinement.
        hits_before = built.statistics.shard_hits
        built.vector_array(victim)
        assert built.statistics.shard_hits == hits_before + 1

    def test_repair_ignores_unmaterialized_seekers(self, built):
        assert built.repair([10_000]) == 0

    def test_graph_updated_keeps_shards(self, built, inner, synthetic_dataset):
        graph = synthetic_dataset.graph
        builder = SocialGraphBuilder(graph.num_users)
        for u, v, w in graph.iter_edges():
            builder.add_edge(u, v, w)
        builder.add_edge(0, graph.num_users - 1, 0.7)
        new_graph = builder.build()
        rows_before = built.num_rows()
        affected = {0, graph.num_users - 1}
        built.graph_updated(new_graph, affected)
        assert built.built
        assert built.num_rows() == rows_before
        assert built.graph is new_graph
        assert inner.graph is new_graph
        # Affected seekers refine on the new graph; the rest still shard-hit.
        for seeker in affected:
            np.testing.assert_array_equal(built.vector_array(seeker),
                                          inner.vector_array(seeker))

    def test_graph_updated_pads_for_new_users(self, built, synthetic_dataset):
        graph = synthetic_dataset.graph
        grown = graph.num_users + 2
        builder = SocialGraphBuilder(grown)
        for u, v, w in graph.iter_edges():
            builder.add_edge(u, v, w)
        new_graph = builder.build()
        built.graph_updated(new_graph, ())
        labels = built.labels()
        assert len(labels) == grown
        # New users land in fresh singleton clusters.
        assert labels[grown - 1] != labels[0]
        assert labels[grown - 1] != labels[grown - 2]
        for shard in built.shards():
            assert shard.bound.shape[0] == grown
        bound = built.upper_bound_array(int(built.shards()[0].members[0]))
        assert bound.shape[0] == grown
        assert bound[grown - 1] == 0.0
