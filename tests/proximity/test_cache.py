"""Tests for the LRU proximity cache."""

import pytest

from repro.config import ProximityConfig
from repro.proximity import CachedProximity, ShortestPathProximity


class CountingProximity(ShortestPathProximity):
    """Shortest-path proximity that counts vector computations."""

    def __init__(self, graph, config=None):
        super().__init__(graph, config)
        self.vector_calls = 0

    def vector(self, seeker):
        self.vector_calls += 1
        return super().vector(seeker)


@pytest.fixture()
def counting(small_graph):
    return CountingProximity(small_graph, ProximityConfig())


class TestCachedProximity:
    def test_second_lookup_is_a_hit(self, counting):
        cached = CachedProximity(counting, capacity=4)
        first = cached.vector(0)
        second = cached.vector(0)
        assert first == second
        assert counting.vector_calls == 1
        assert cached.statistics.hits == 1
        assert cached.statistics.misses == 1

    def test_cache_returns_copies(self, counting):
        cached = CachedProximity(counting, capacity=4)
        vector = cached.vector(0)
        vector[999] = 123.0
        assert 999 not in cached.vector(0)

    def test_eviction_when_capacity_exceeded(self, counting):
        cached = CachedProximity(counting, capacity=1)
        cached.vector(0)
        cached.vector(1)   # evicts seeker 0
        cached.vector(0)   # miss again
        assert cached.statistics.evictions >= 1
        assert counting.vector_calls == 3

    def test_zero_capacity_disables_caching(self, counting):
        cached = CachedProximity(counting, capacity=0)
        cached.vector(0)
        cached.vector(0)
        assert counting.vector_calls == 2
        assert cached.statistics.hits == 0

    def test_proximity_served_from_cache(self, counting):
        cached = CachedProximity(counting, capacity=4)
        value = cached.proximity(0, 1)
        assert value == pytest.approx(counting.proximity(0, 1))
        assert cached.proximity(0, 0) == 1.0

    def test_iter_ranked_cached_and_ordered(self, counting):
        cached = CachedProximity(counting, capacity=4)
        first = list(cached.iter_ranked(0))
        second = list(cached.iter_ranked(0))
        assert first == second
        values = [value for _, value in first]
        assert values == sorted(values, reverse=True)

    def test_clear_resets_statistics(self, counting):
        cached = CachedProximity(counting, capacity=4)
        cached.vector(0)
        cached.clear()
        assert cached.statistics.lookups == 0
        cached.vector(0)
        assert cached.statistics.misses == 1

    def test_hit_rate(self, counting):
        cached = CachedProximity(counting, capacity=4)
        cached.vector(0)
        cached.vector(0)
        cached.vector(0)
        assert cached.statistics.hit_rate == pytest.approx(2.0 / 3.0)
        assert cached.statistics.to_dict()["hits"] == 2

    def test_name_reflects_inner_measure(self, counting):
        cached = CachedProximity(counting, capacity=4)
        assert "shortest-path" in cached.name
        assert cached.inner is counting

    def test_sparse_view_derived_once_per_entry(self, counting):
        """Regression: the dict view must be memoised per cached entry, not
        re-derived from the dense array on every scalar lookup."""
        cached = CachedProximity(counting, capacity=4)
        for _ in range(5):
            cached.vector(0)
        assert counting.vector_calls == 1
        assert cached.statistics.sparse_derivations == 1
        # A second seeker derives its own view exactly once.
        cached.vector(1)
        cached.vector(1)
        assert cached.statistics.sparse_derivations == 2
        # The dense path alone never pays for a dict derivation.
        cached.vector_array(2)
        assert cached.statistics.sparse_derivations == 2
        assert cached.statistics.to_dict()["sparse_derivations"] == 2

    def test_dense_entry_derived_from_warm_ranked_stream(self, counting):
        """Warming the ranked stream must make the dense form free: the
        cached pairs are the whole vector, so no second online computation
        (the --warmup double-compute regression)."""
        cached = CachedProximity(counting, capacity=4)
        ranked = tuple(cached.iter_ranked(0))
        calls_after_stream = counting.vector_calls
        dense = cached.vector_array(0)
        assert counting.vector_calls == calls_after_stream
        assert {user: value for user, value in ranked} \
            == {user: float(dense[user]) for user in range(dense.shape[0])
                if dense[user] > 0.0}
        # And the dict form comes from the same derived entry.
        assert cached.vector(0) == dict(ranked)
        assert counting.vector_calls == calls_after_stream

    def test_frontier_bound_matches_ranked_stream(self, counting):
        cached = CachedProximity(counting, capacity=4)
        assert cached.frontier_bound(0) is None  # cold: not known cheaply
        first = next(iter(cached.iter_ranked(0)))
        assert cached.frontier_bound(0) == first[1]
        cached.vector_array(1)
        ranked = list(cached.iter_ranked(1))
        assert cached.frontier_bound(1) == ranked[0][1]


class TestInvalidation:
    """Regression tests for the post-update staleness bug: a CachedProximity
    must not keep serving pre-update vectors after the graph gains edges."""

    def test_invalidate_evicts_only_given_seekers(self, counting):
        cached = CachedProximity(counting, capacity=8)
        cached.vector(0)
        cached.vector(1)
        removed = cached.invalidate([0])
        assert removed == 1
        assert cached.statistics.invalidations == 1
        cached.vector(1)  # still cached
        assert counting.vector_calls == 2
        cached.vector(0)  # recomputed
        assert counting.vector_calls == 3

    def test_invalidate_unknown_seeker_is_noop(self, counting):
        cached = CachedProximity(counting, capacity=8)
        cached.vector(0)
        assert cached.invalidate([999]) == 0

    def test_rebind_and_invalidate_serve_fresh_vectors(self, small_graph):
        """The staleness fix end to end: after the updater rebuilds the graph
        with a new edge, rebind + invalidate must surface the new neighbour."""
        from repro.graph import SocialGraphBuilder

        inner = CountingProximity(small_graph, ProximityConfig())
        cached = CachedProximity(inner, capacity=8)
        before = cached.vector(0)
        assert before.get(5, 0.0) == 0.0  # user 5 is isolated

        builder = SocialGraphBuilder(small_graph.num_users)
        for u, v, w in small_graph.iter_edges():
            builder.add_edge(u, v, w)
        builder.add_edge(0, 5, 1.0)
        new_graph = builder.build()

        cached.invalidate([0, 5])
        cached.rebind(new_graph)
        assert cached.graph is new_graph
        assert inner.graph is new_graph
        after = cached.vector(0)
        assert after[5] > 0.0

    def test_rebind_keeps_unaffected_entries(self, small_graph):
        from repro.graph import SocialGraphBuilder

        inner = CountingProximity(small_graph, ProximityConfig())
        cached = CachedProximity(inner, capacity=8)
        cached.vector(2)
        calls_before = inner.vector_calls
        builder = SocialGraphBuilder(small_graph.num_users)
        for u, v, w in small_graph.iter_edges():
            builder.add_edge(u, v, w)
        builder.add_edge(0, 5, 1.0)
        cached.rebind(builder.build())
        cached.vector(2)  # not invalidated → still served from cache
        assert inner.vector_calls == calls_before
