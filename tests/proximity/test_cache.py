"""Tests for the LRU proximity cache."""

import pytest

from repro.config import ProximityConfig
from repro.proximity import CachedProximity, ShortestPathProximity


class CountingProximity(ShortestPathProximity):
    """Shortest-path proximity that counts vector computations."""

    def __init__(self, graph, config=None):
        super().__init__(graph, config)
        self.vector_calls = 0

    def vector(self, seeker):
        self.vector_calls += 1
        return super().vector(seeker)


@pytest.fixture()
def counting(small_graph):
    return CountingProximity(small_graph, ProximityConfig())


class TestCachedProximity:
    def test_second_lookup_is_a_hit(self, counting):
        cached = CachedProximity(counting, capacity=4)
        first = cached.vector(0)
        second = cached.vector(0)
        assert first == second
        assert counting.vector_calls == 1
        assert cached.statistics.hits == 1
        assert cached.statistics.misses == 1

    def test_cache_returns_copies(self, counting):
        cached = CachedProximity(counting, capacity=4)
        vector = cached.vector(0)
        vector[999] = 123.0
        assert 999 not in cached.vector(0)

    def test_eviction_when_capacity_exceeded(self, counting):
        cached = CachedProximity(counting, capacity=1)
        cached.vector(0)
        cached.vector(1)   # evicts seeker 0
        cached.vector(0)   # miss again
        assert cached.statistics.evictions >= 1
        assert counting.vector_calls == 3

    def test_zero_capacity_disables_caching(self, counting):
        cached = CachedProximity(counting, capacity=0)
        cached.vector(0)
        cached.vector(0)
        assert counting.vector_calls == 2
        assert cached.statistics.hits == 0

    def test_proximity_served_from_cache(self, counting):
        cached = CachedProximity(counting, capacity=4)
        value = cached.proximity(0, 1)
        assert value == pytest.approx(counting.proximity(0, 1))
        assert cached.proximity(0, 0) == 1.0

    def test_iter_ranked_cached_and_ordered(self, counting):
        cached = CachedProximity(counting, capacity=4)
        first = list(cached.iter_ranked(0))
        second = list(cached.iter_ranked(0))
        assert first == second
        values = [value for _, value in first]
        assert values == sorted(values, reverse=True)

    def test_clear_resets_statistics(self, counting):
        cached = CachedProximity(counting, capacity=4)
        cached.vector(0)
        cached.clear()
        assert cached.statistics.lookups == 0
        cached.vector(0)
        assert cached.statistics.misses == 1

    def test_hit_rate(self, counting):
        cached = CachedProximity(counting, capacity=4)
        cached.vector(0)
        cached.vector(0)
        cached.vector(0)
        assert cached.statistics.hit_rate == pytest.approx(2.0 / 3.0)
        assert cached.statistics.to_dict()["hits"] == 2

    def test_name_reflects_inner_measure(self, counting):
        cached = CachedProximity(counting, capacity=4)
        assert "shortest-path" in cached.name
        assert cached.inner is counting
