"""Tests for the blended scoring model."""

import pytest

from repro.config import ProximityConfig, ScoringConfig
from repro.core.accounting import AccessAccountant
from repro.core.scoring import ScoringModel
from repro.proximity import ShortestPathProximity


@pytest.fixture()
def proximity(hand_dataset):
    return ShortestPathProximity(hand_dataset.graph, ProximityConfig(decay=0.5))


@pytest.fixture()
def model(hand_dataset, proximity):
    return ScoringModel(hand_dataset, proximity, ScoringConfig(alpha=0.5))


class TestNormalisation:
    def test_normaliser_is_max_frequency(self, model, hand_dataset):
        assert model.normaliser("jazz") == hand_dataset.inverted_index.max_frequency("jazz")

    def test_normaliser_floor_is_one(self, model):
        assert model.normaliser("unknown-tag") == 1.0

    def test_normalised_tf_in_unit_interval(self, model, hand_dataset):
        for tag in hand_dataset.tags():
            for posting in hand_dataset.inverted_index.postings(tag):
                value = model.normalised_tf(posting.item_id, tag)
                assert 0.0 <= value <= 1.0

    def test_top_item_has_normalised_tf_one(self, model):
        assert model.normalised_tf(100, "jazz") == pytest.approx(1.0)


class TestExactScore:
    def test_pure_textual_when_alpha_one(self, hand_dataset, proximity):
        model = ScoringModel(hand_dataset, proximity, ScoringConfig(alpha=1.0))
        vector = proximity.vector(0)
        breakdown = model.exact_score(0, 100, ("jazz",), vector)
        assert breakdown.score == pytest.approx(breakdown.textual)
        assert breakdown.score == pytest.approx(1.0)

    def test_pure_social_when_alpha_zero(self, hand_dataset, proximity):
        model = ScoringModel(hand_dataset, proximity, ScoringConfig(alpha=0.0))
        vector = proximity.vector(0)
        breakdown = model.exact_score(0, 100, ("jazz",), vector)
        assert breakdown.score == pytest.approx(breakdown.social)
        # taggers of (100, jazz) are users 1 and 2.
        expected = (vector.get(1, 0.0) + vector.get(2, 0.0)) / 2.0
        assert breakdown.social == pytest.approx(expected)

    def test_blend_is_convex_combination(self, hand_dataset, proximity):
        vector = proximity.vector(0)
        half = ScoringModel(hand_dataset, proximity, ScoringConfig(alpha=0.5))
        breakdown = half.exact_score(0, 100, ("jazz",), vector)
        assert breakdown.score == pytest.approx(
            0.5 * breakdown.textual + 0.5 * breakdown.social
        )

    def test_score_in_unit_interval(self, model, hand_dataset, proximity):
        vector = proximity.vector(0)
        for item_id in hand_dataset.items.ids():
            breakdown = model.exact_score(0, item_id, ("jazz", "rock"), vector)
            assert 0.0 <= breakdown.score <= 1.0

    def test_empty_tags_scores_zero(self, model, proximity):
        assert model.exact_score(0, 100, (), proximity.vector(0)).score == 0.0

    def test_unrelated_item_scores_zero(self, model, proximity):
        breakdown = model.exact_score(0, 104, ("vinyl",), proximity.vector(0))
        # item 104 was only tagged jazz/rock by the isolated user 5.
        assert breakdown.score == pytest.approx(0.0)

    def test_seeker_own_action_excluded_by_default(self, hand_dataset, proximity):
        # Item 103 was tagged "jazz" by the seeker (user 0) and by nobody else,
        # so with include_seeker=False the social part must be zero.
        model = ScoringModel(hand_dataset, proximity, ScoringConfig(alpha=0.0))
        vector = proximity.vector(0)
        assert model.exact_score(0, 103, ("jazz",), vector).score == pytest.approx(0.0)

    def test_multi_tag_score_is_average(self, hand_dataset, proximity):
        model = ScoringModel(hand_dataset, proximity, ScoringConfig(alpha=1.0))
        vector = proximity.vector(0)
        jazz = model.exact_score(0, 100, ("jazz",), vector).score
        vinyl = model.exact_score(0, 100, ("vinyl",), vector).score
        both = model.exact_score(0, 100, ("jazz", "vinyl"), vector).score
        assert both == pytest.approx((jazz + vinyl) / 2.0)

    def test_accountant_charged_for_random_accesses(self, model, proximity):
        accountant = AccessAccountant()
        model.exact_score(0, 100, ("jazz",), proximity.vector(0), accountant=accountant)
        assert accountant.random_accesses > 0


class TestBounds:
    def test_unseen_upper_bound_monotone_in_frontier(self, model):
        low = model.unseen_upper_bound({"jazz": 1}, 0.1, ("jazz",))
        high = model.unseen_upper_bound({"jazz": 1}, 0.9, ("jazz",))
        assert high >= low

    def test_unseen_upper_bound_zero_when_everything_exhausted(self, model):
        assert model.unseen_upper_bound({"jazz": 0}, 0.0, ("jazz",)) == 0.0

    def test_unseen_upper_bound_bounds_every_item(self, hand_dataset, proximity, model):
        # With full frontier (proximity 1) and the list head as next_tf, no
        # item can exceed the bound.
        vector = proximity.vector(0)
        next_tf = {tag: hand_dataset.inverted_index.max_frequency(tag)
                   for tag in hand_dataset.tags()}
        bound = model.unseen_upper_bound(next_tf, 1.0, ("jazz", "vinyl"))
        for item_id in hand_dataset.items.ids():
            score = model.exact_score(0, item_id, ("jazz", "vinyl"), vector).score
            assert score <= bound + 1e-9

    def test_combine(self, model):
        assert model.combine(1.0, 0.0) == pytest.approx(0.5)
        assert model.combine(0.0, 1.0) == pytest.approx(0.5)
        assert model.alpha == 0.5
