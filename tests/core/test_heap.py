"""Tests for the bounded top-k heap."""

import pytest

from repro.core.topk.heap import TopKHeap


class TestTopKHeap:
    def test_keeps_best_k(self):
        heap = TopKHeap(3)
        for item_id, score in [(1, 0.1), (2, 0.9), (3, 0.5), (4, 0.7), (5, 0.3)]:
            heap.offer(item_id, score)
        assert heap.item_ids() == [2, 4, 3]

    def test_kth_score_zero_until_full(self):
        heap = TopKHeap(2)
        heap.offer(1, 0.9)
        assert heap.kth_score() == 0.0
        heap.offer(2, 0.5)
        assert heap.kth_score() == pytest.approx(0.5)

    def test_ties_keep_smallest_item_id(self):
        heap = TopKHeap(2)
        heap.offer(5, 0.5)
        heap.offer(3, 0.5)
        heap.offer(9, 0.5)
        assert heap.item_ids() == [3, 5]

    def test_items_sorted_desc_then_by_id(self):
        heap = TopKHeap(3)
        heap.offer(7, 0.4)
        heap.offer(2, 0.4)
        heap.offer(5, 0.8)
        assert heap.items() == [(5, 0.8), (2, 0.4), (7, 0.4)]

    def test_reoffer_improves_score(self):
        heap = TopKHeap(2)
        heap.offer(1, 0.2)
        heap.offer(2, 0.3)
        heap.offer(1, 0.9)
        assert heap.score_of(1) == pytest.approx(0.9)
        assert len(heap) == 2

    def test_reoffer_with_lower_score_is_ignored(self):
        heap = TopKHeap(2)
        heap.offer(1, 0.8)
        heap.offer(1, 0.3)
        assert heap.score_of(1) == pytest.approx(0.8)

    def test_would_accept(self):
        heap = TopKHeap(2)
        assert heap.would_accept(0.0)
        heap.offer(1, 0.5)
        heap.offer(2, 0.7)
        assert heap.would_accept(0.6)
        assert not heap.would_accept(0.4)

    def test_contains_and_len(self):
        heap = TopKHeap(2)
        heap.offer(4, 0.5)
        assert 4 in heap
        assert 5 not in heap
        assert len(heap) == 1

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            TopKHeap(0)

    def test_eviction_removes_score(self):
        heap = TopKHeap(1)
        heap.offer(1, 0.2)
        heap.offer(2, 0.8)
        assert 1 not in heap
        assert heap.item_ids() == [2]
