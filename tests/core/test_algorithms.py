"""Behavioural tests of the top-k algorithms.

The key property: every non-exhaustive algorithm must return a valid top-k
answer — each returned item's exact score is at least the k-th best exact
score (ties allowed) — and the exact scores it reports must match the exact
baseline's scores for the same items.
"""

import pytest

from repro.config import EngineConfig, ProximityConfig, ScoringConfig
from repro.core import Query, SocialSearchEngine, available_algorithms, create_algorithm
from repro.errors import UnknownAlgorithmError, UnknownUserError
from repro.proximity import ShortestPathProximity
from repro.workload import generate_workload
from repro.config import WorkloadConfig

#: The algorithms that must agree with the exact baseline.
EXACT_EQUIVALENT = ["ta", "nra", "social-first", "hybrid", "materialized"]


def _scores_by_item(result):
    return {item.item_id: item.score for item in result.items}


class TestRegistry:
    def test_expected_algorithms_registered(self):
        registered = available_algorithms()
        for name in ["exact", "ta", "nra", "social-first", "hybrid",
                     "global", "random", "materialized"]:
            assert name in registered

    def test_unknown_algorithm_rejected(self, synthetic_dataset):
        proximity = ShortestPathProximity(synthetic_dataset.graph, ProximityConfig())
        with pytest.raises(UnknownAlgorithmError):
            create_algorithm("does-not-exist", synthetic_dataset, proximity)


@pytest.mark.parametrize("algorithm", EXACT_EQUIVALENT)
@pytest.mark.parametrize("alpha", [0.0, 0.5, 1.0])
class TestAgreementWithExact:
    def test_returned_items_are_a_valid_topk(self, engine_factory, workload,
                                             algorithm, alpha):
        engine = engine_factory(alpha=alpha)
        for query in workload:
            exact = engine.run(query, algorithm="exact")
            result = engine.run(query, algorithm=algorithm)
            assert len(result.items) == len(exact.items)
            if not exact.items:
                continue
            kth_exact = exact.items[-1].score
            exact_scores = _scores_by_item(exact)
            for item in result.items:
                # Every returned item is at least as good as the k-th exact
                # item (the returned set is a valid top-k modulo ties).
                assert item.score >= kth_exact - 1e-9
                if item.item_id in exact_scores:
                    assert item.score == pytest.approx(exact_scores[item.item_id],
                                                       abs=1e-9)

    def test_score_multiset_matches_exact(self, engine_factory, workload,
                                          algorithm, alpha):
        engine = engine_factory(alpha=alpha)
        for query in workload:
            exact = sorted(engine.run(query, algorithm="exact").scores, reverse=True)
            got = sorted(engine.run(query, algorithm=algorithm).scores, reverse=True)
            assert got == pytest.approx(exact, abs=1e-9)


class TestResultShape:
    @pytest.mark.parametrize("algorithm", ["exact", "ta", "nra", "social-first",
                                           "hybrid", "global", "random"])
    def test_results_sorted_and_within_k(self, engine, workload, algorithm):
        for query in workload:
            result = engine.run(query, algorithm=algorithm)
            assert len(result.items) <= query.k
            scores = result.scores
            assert scores == sorted(scores, reverse=True)
            assert len(set(result.item_ids)) == len(result.item_ids)

    def test_unknown_seeker_rejected(self, engine, synthetic_dataset):
        query = Query(seeker=synthetic_dataset.num_users + 5, tags=("tag-000",), k=3)
        with pytest.raises(UnknownUserError):
            engine.run(query, algorithm="exact")

    def test_unknown_tag_returns_empty_or_partial(self, engine, synthetic_dataset):
        query = Query(seeker=0, tags=("tag-that-does-not-exist",), k=3)
        for algorithm in ["exact", "ta", "nra", "social-first", "global"]:
            result = engine.run(query, algorithm=algorithm)
            assert result.items == [] or all(item.score == 0.0 for item in result.items)

    def test_k_larger_than_candidate_set(self, engine, synthetic_dataset):
        tag = synthetic_dataset.tags()[0]
        matching = len(synthetic_dataset.tagging.items_for_tag(tag))
        query = Query(seeker=1, tags=(tag,), k=matching + 50)
        exact = engine.run(query, algorithm="exact")
        social = engine.run(query, algorithm="social-first")
        assert len(exact.items) == matching
        assert len(social.items) == matching

    def test_latency_and_accounting_populated(self, engine, workload):
        result = engine.run(workload[0], algorithm="social-first")
        assert result.latency_seconds >= 0.0
        assert result.accounting.total_accesses > 0
        assert result.accounting.rounds > 0


class TestEarlyTermination:
    def test_social_first_terminates_early_somewhere(self, engine_factory, workload):
        engine = engine_factory(alpha=0.3)
        assert any(engine.run(query, algorithm="social-first").terminated_early
                   for query in workload)

    def test_disabling_early_termination_reads_more(self, engine_factory, workload):
        eager = engine_factory(alpha=0.5, early_termination=True)
        lazy = engine_factory(alpha=0.5, early_termination=False)
        eager_total = sum(eager.run(q, algorithm="social-first").accounting.total_accesses
                          for q in workload)
        lazy_total = sum(lazy.run(q, algorithm="social-first").accounting.total_accesses
                         for q in workload)
        assert lazy_total >= eager_total

    def test_exact_never_terminates_early(self, engine, workload):
        for query in workload:
            assert engine.run(query, algorithm="exact").terminated_early is False

    def test_results_identical_with_and_without_early_termination(self, engine_factory,
                                                                  workload):
        eager = engine_factory(alpha=0.5, early_termination=True)
        lazy = engine_factory(alpha=0.5, early_termination=False)
        for query in workload:
            a = eager.run(query, algorithm="social-first")
            b = lazy.run(query, algorithm="social-first")
            assert a.scores == pytest.approx(b.scores, abs=1e-9)


class TestAccessProfiles:
    def test_nra_never_random_accesses_during_processing(self, engine_factory, workload):
        # NRA's only random accesses are the final exact re-scoring of the k
        # returned items, which is bounded by k * |tags| * (taggers + 1);
        # TA random-accesses every discovered candidate, so it must pay more.
        engine = engine_factory(alpha=0.5)
        for query in workload:
            nra = engine.run(query, algorithm="nra").accounting.random_accesses
            ta = engine.run(query, algorithm="ta").accounting.random_accesses
            assert nra <= ta

    def test_social_first_visits_fewer_users_than_exact(self, engine_factory, workload):
        engine = engine_factory(alpha=0.5)
        social_total = 0
        exact_total = 0
        for query in workload:
            social_total += engine.run(query, algorithm="social-first").accounting.users_visited
            exact_total += engine.run(query, algorithm="exact").accounting.users_visited
        assert social_total <= exact_total

    def test_alpha_one_social_first_skips_frontier(self, engine_factory, workload):
        engine = engine_factory(alpha=1.0)
        for query in workload:
            result = engine.run(query, algorithm="social-first")
            # With a purely textual score the adaptive scheduler should never
            # prefer the social frontier.
            assert result.accounting.users_visited == 0


class TestBaselines:
    def test_global_ranking_ignores_seeker(self, engine, synthetic_dataset, workload):
        query = workload[0]
        other_seeker = (query.seeker + 1) % synthetic_dataset.num_users
        a = engine.run(query, algorithm="global")
        b = engine.run(Query(seeker=other_seeker, tags=query.tags, k=query.k),
                       algorithm="global")
        assert a.item_ids == b.item_ids

    def test_random_is_deterministic_per_seeker(self, engine, workload):
        query = workload[0]
        assert engine.run(query, algorithm="random").item_ids == \
            engine.run(query, algorithm="random").item_ids

    def test_materialized_reports_memory(self, synthetic_dataset):
        from repro.baselines import MaterializedBaseline
        proximity = ShortestPathProximity(synthetic_dataset.graph, ProximityConfig())
        baseline = MaterializedBaseline(synthetic_dataset, proximity, EngineConfig())
        entries = baseline.materialise(users=range(10))
        assert entries == baseline.num_entries()
        assert baseline.memory_bytes() > 0
