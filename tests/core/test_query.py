"""Tests for the query and result model."""

import pytest

from repro.core import Query, QueryResult, ScoredItem, make_queries
from repro.core.accounting import AccessAccountant
from repro.errors import InvalidQueryError


class TestQuery:
    def test_basic_construction(self):
        query = Query(seeker=3, tags=("jazz", "rock"), k=5)
        assert query.seeker == 3
        assert query.tags == ("jazz", "rock")
        assert query.k == 5
        assert query.num_tags == 2

    def test_duplicate_tags_removed_preserving_order(self):
        query = Query(seeker=0, tags=("a", "b", "a"), k=1)
        assert query.tags == ("a", "b")

    def test_empty_tags_rejected(self):
        with pytest.raises(InvalidQueryError):
            Query(seeker=0, tags=(), k=1)

    def test_blank_tag_rejected(self):
        with pytest.raises(InvalidQueryError):
            Query(seeker=0, tags=("  ",), k=1)

    def test_non_string_tag_rejected(self):
        with pytest.raises(InvalidQueryError):
            Query(seeker=0, tags=(3,), k=1)

    def test_non_positive_k_rejected(self):
        with pytest.raises(InvalidQueryError):
            Query(seeker=0, tags=("a",), k=0)

    def test_negative_seeker_rejected(self):
        with pytest.raises(InvalidQueryError):
            Query(seeker=-1, tags=("a",), k=1)

    def test_single_constructor(self):
        query = Query.single(2, "jazz", k=3)
        assert query.tags == ("jazz",)
        assert query.k == 3

    def test_to_dict(self):
        query = Query(seeker=1, tags=("x",), k=2)
        assert query.to_dict() == {"seeker": 1, "tags": ["x"], "k": 2}

    def test_make_queries_helper(self):
        queries = make_queries([(0, ["a"]), (1, ["b", "c"])], k=4)
        assert len(queries) == 2
        assert queries[1].tags == ("b", "c")
        assert all(query.k == 4 for query in queries)


class TestQueryResult:
    def _result(self):
        query = Query(seeker=0, tags=("a",), k=3)
        items = [
            ScoredItem(item_id=10, score=0.9, textual=0.5, social=0.4),
            ScoredItem(item_id=11, score=0.7),
            ScoredItem(item_id=12, score=0.2),
        ]
        return QueryResult(query=query, items=items, algorithm="exact",
                           latency_seconds=0.01, accounting=AccessAccountant(),
                           terminated_early=True)

    def test_item_ids_and_scores(self):
        result = self._result()
        assert result.item_ids == [10, 11, 12]
        assert result.scores == [0.9, 0.7, 0.2]

    def test_top(self):
        assert [item.item_id for item in self._result().top(2)] == [10, 11]

    def test_to_dict_contains_everything(self):
        data = self._result().to_dict()
        assert data["algorithm"] == "exact"
        assert data["terminated_early"] is True
        assert len(data["items"]) == 3
        assert data["query"]["seeker"] == 0
        assert "sequential_accesses" in data["accounting"]

    def test_scored_item_to_dict(self):
        item = ScoredItem(item_id=1, score=0.5, textual=0.25, social=0.25)
        assert item.to_dict()["textual"] == 0.25
