"""Tests for the textual and social access sources."""

import pytest

from repro.config import ProximityConfig
from repro.core.topk.sources import (
    SocialFrontier,
    TextualSource,
    build_textual_sources,
    next_frequencies,
)
from repro.proximity import ShortestPathProximity


class TestTextualSource:
    def test_reads_in_frequency_order(self, hand_dataset):
        source = TextualSource(hand_dataset.inverted_index, "jazz")
        frequencies = []
        while not source.exhausted():
            assert source.next_frequency() > 0
            frequencies.append(source.read().frequency)
        assert frequencies == sorted(frequencies, reverse=True)
        assert source.read() is None
        assert source.next_frequency() == 0

    def test_unknown_tag_is_empty(self, hand_dataset):
        source = TextualSource(hand_dataset.inverted_index, "no-such-tag")
        assert source.exhausted()
        assert source.next_frequency() == 0

    def test_consumed_counter(self, hand_dataset):
        source = TextualSource(hand_dataset.inverted_index, "rock")
        source.read()
        assert source.consumed() == 1

    def test_build_textual_sources_and_bounds(self, hand_dataset):
        sources = build_textual_sources(hand_dataset.inverted_index, ("jazz", "rock"))
        assert set(sources) == {"jazz", "rock"}
        bounds = next_frequencies(sources)
        assert bounds["jazz"] == hand_dataset.inverted_index.max_frequency("jazz")


class TestSocialFrontier:
    @pytest.fixture()
    def frontier(self, small_graph):
        proximity = ShortestPathProximity(small_graph, ProximityConfig(decay=0.5))
        return SocialFrontier(proximity, 0)

    def test_pops_in_non_increasing_proximity(self, frontier):
        values = []
        while not frontier.exhausted():
            assert frontier.next_proximity() > 0
            values.append(frontier.pop()[1])
        assert values == sorted(values, reverse=True)
        assert frontier.pop() is None
        assert frontier.next_proximity() == 0.0

    def test_next_proximity_matches_next_pop(self, frontier):
        bound = frontier.next_proximity()
        user, proximity = frontier.pop()
        assert proximity == pytest.approx(bound)

    def test_visited_counter(self, frontier):
        frontier.pop()
        frontier.pop()
        assert frontier.visited == 2

    def test_isolated_seeker_has_empty_frontier(self, small_graph):
        proximity = ShortestPathProximity(small_graph, ProximityConfig())
        frontier = SocialFrontier(proximity, 5)
        assert frontier.exhausted()
        assert frontier.pop() is None
