"""SLO-aware serving decisions: planner, engine routing, and cache keys.

The planner picks exact vs. anytime vs. landmark per query from the
serving hints (explicit budget > effort > slo_ms), records the decision in
the :class:`~repro.core.plan.ExecutionPlan`, and the engine routes
accordingly — never serving an approximate answer to a query that did not
opt in, including through the service cache.
"""

import pytest

from repro.config import EngineConfig, ProximityConfig, ScoringConfig
from repro.core import Query, SocialSearchEngine
from repro.core.plan import (
    EXECUTOR_PARTITIONED,
    SERVING_ANYTIME,
    SERVING_EXACT,
    SERVING_LANDMARK,
    default_budget,
    fast_budget,
)
from repro.core.query import QueryBudget
from repro.service.cache import CacheKey


@pytest.fixture(scope="module")
def serving_engine(synthetic_dataset):
    """Partitioned engine with a landmark executor (landmarks > 0)."""
    return SocialSearchEngine(synthetic_dataset, EngineConfig(
        algorithm="exact",
        scoring=ScoringConfig(alpha=0.5, vectorized=True),
        proximity=ProximityConfig(measure="ppr", materialize=True,
                                  landmarks=8),
        partitions=4))


@pytest.fixture(scope="module")
def plain_engine(synthetic_dataset):
    """Partitioned engine without a landmark tier (landmarks = 0)."""
    return SocialSearchEngine(synthetic_dataset, EngineConfig(
        algorithm="exact",
        scoring=ScoringConfig(alpha=0.5, vectorized=True),
        proximity=ProximityConfig(measure="ppr", materialize=True),
        partitions=4))


def _query(**hints):
    return Query(seeker=0, tags=("tag-1",), k=5, **hints)


class TestServingDecision:
    def test_no_hints_serves_exact(self, serving_engine):
        decision = serving_engine.planner.serving(_query())
        assert decision.mode == SERVING_EXACT
        assert decision.budget is None

    def test_explicit_budget_wins_over_everything(self, serving_engine):
        budget = QueryBudget(max_scanned=77)
        decision = serving_engine.planner.serving(
            _query(budget=budget, effort="fast", slo_ms=5.0))
        assert decision.mode == SERVING_ANYTIME
        assert decision.budget == budget

    def test_effort_exact_pins_exact(self, serving_engine):
        decision = serving_engine.planner.serving(
            _query(effort="exact", slo_ms=5.0))
        assert decision.mode == SERVING_EXACT

    def test_effort_fast_picks_landmark_when_available(self, serving_engine):
        decision = serving_engine.planner.serving(_query(effort="fast"))
        assert decision.mode == SERVING_LANDMARK

    def test_effort_fast_degrades_to_tight_anytime(self, plain_engine):
        decision = plain_engine.planner.serving(_query(effort="fast"))
        assert decision.mode == SERVING_ANYTIME
        assert decision.budget == fast_budget(5)

    def test_effort_balanced_uses_default_budget(self, serving_engine):
        decision = serving_engine.planner.serving(_query(effort="balanced"))
        assert decision.mode == SERVING_ANYTIME
        assert decision.budget == default_budget(5)

    def test_slo_becomes_deadline_budget(self, serving_engine):
        decision = serving_engine.planner.serving(_query(slo_ms=12.5))
        assert decision.mode == SERVING_ANYTIME
        assert decision.budget == QueryBudget(deadline_ms=12.5)

    def test_hints_apply_to_partitioned_route_only(self, serving_engine):
        decision = serving_engine.planner.serving(
            _query(effort="fast"), executor="algorithm")
        assert decision.mode == SERVING_EXACT

    def test_decisions_are_counted(self, synthetic_dataset):
        engine = SocialSearchEngine(synthetic_dataset, EngineConfig(
            algorithm="exact",
            scoring=ScoringConfig(alpha=0.5, vectorized=True),
            proximity=ProximityConfig(measure="ppr", materialize=True,
                                      landmarks=4),
            partitions=4))
        engine.planner.serving(_query(effort="fast"))
        engine.planner.serving(_query(slo_ms=3.0))
        engine.planner.serving(_query())
        stats = engine.planner.serving_stats()
        assert stats[SERVING_LANDMARK] == 1
        assert stats[SERVING_ANYTIME] == 1
        assert stats[SERVING_EXACT] == 1
        assert engine.planner.route_stats()["serving_decisions"] == stats


class TestPlanRecord:
    def test_plan_records_serving_fields(self, serving_engine):
        plan = serving_engine.planner.plan(_query(effort="balanced"))
        assert plan.executor == EXECUTOR_PARTITIONED
        assert plan.serving_mode == SERVING_ANYTIME
        assert plan.budget_max_scanned == default_budget(5).max_scanned
        data = plan.to_dict()
        assert data["serving_mode"] == SERVING_ANYTIME
        assert data["budget_max_scanned"] == default_budget(5).max_scanned
        assert "serving:" in plan.describe()

    def test_unhinted_plan_stays_exact(self, serving_engine):
        plan = serving_engine.planner.plan(_query())
        assert plan.serving_mode == SERVING_EXACT
        assert "serving_reason" not in plan.to_dict()


class TestEngineRouting:
    def test_fast_effort_serves_landmark_answer(self, serving_engine):
        result = serving_engine.run(_query(effort="fast"))
        assert result.algorithm == "landmark"
        assert not result.is_exact

    def test_tight_budget_yields_bounded_answer(self, serving_engine):
        result = serving_engine.run(
            _query(budget=QueryBudget(max_scanned=1)))
        assert result.error_bound is not None
        assert result.error_bound >= 0.0

    def test_unhinted_query_is_exact(self, serving_engine):
        result = serving_engine.run(_query())
        assert result.is_exact
        assert (result.error_bound or 0.0) == 0.0


class TestCacheKeySeparation:
    def test_hinted_and_unhinted_queries_never_share_entries(self):
        exact_key = CacheKey.for_query(_query(), algorithm="exact")
        fast_key = CacheKey.for_query(_query(effort="fast"),
                                      algorithm="exact")
        budget_key = CacheKey.for_query(
            _query(budget=QueryBudget(max_scanned=64)), algorithm="exact")
        assert len({exact_key, fast_key, budget_key}) == 3
