"""Tests for access accounting."""

from repro.core.accounting import AccessAccountant


class TestAccessAccountant:
    def test_charges_accumulate(self):
        accountant = AccessAccountant()
        accountant.charge_sequential(3)
        accountant.charge_random()
        accountant.charge_social(2)
        accountant.charge_user_visit()
        accountant.charge_candidate(5)
        accountant.charge_round()
        assert accountant.sequential_accesses == 3
        assert accountant.random_accesses == 1
        assert accountant.social_accesses == 2
        assert accountant.users_visited == 1
        assert accountant.candidates_considered == 5
        assert accountant.rounds == 1

    def test_total_accesses(self):
        accountant = AccessAccountant(sequential_accesses=2, random_accesses=3,
                                      social_accesses=4, users_visited=1)
        assert accountant.total_accesses == 10

    def test_merge(self):
        a = AccessAccountant(sequential_accesses=1, rounds=2)
        b = AccessAccountant(sequential_accesses=4, random_accesses=1)
        a.merge(b)
        assert a.sequential_accesses == 5
        assert a.random_accesses == 1
        assert a.rounds == 2

    def test_sum(self):
        total = AccessAccountant.sum([
            AccessAccountant(sequential_accesses=1),
            AccessAccountant(sequential_accesses=2, social_accesses=3),
        ])
        assert total.sequential_accesses == 3
        assert total.social_accesses == 3

    def test_to_dict(self):
        accountant = AccessAccountant(sequential_accesses=1)
        data = accountant.to_dict()
        assert data["sequential_accesses"] == 1
        assert data["total_accesses"] == 1
