"""Tests for candidate bookkeeping and bound arithmetic."""

import pytest

from repro.config import ProximityConfig, ScoringConfig
from repro.core.scoring import ScoringModel
from repro.core.topk.candidates import Candidate, CandidatePool
from repro.proximity import ShortestPathProximity


@pytest.fixture()
def scoring(hand_dataset):
    proximity = ShortestPathProximity(hand_dataset.graph, ProximityConfig())
    return ScoringModel(hand_dataset, proximity, ScoringConfig(alpha=0.5))


class TestCandidate:
    def test_lower_bound_grows_with_knowledge(self, scoring):
        candidate = Candidate(item_id=100)
        tags = ("jazz",)
        empty = candidate.lower_bound(scoring, tags)
        candidate.record_frequency("jazz", 2)
        after_frequency = candidate.lower_bound(scoring, tags)
        candidate.add_social("jazz", 0.5)
        after_social = candidate.lower_bound(scoring, tags)
        assert empty == 0.0
        assert after_frequency > empty
        assert after_social > after_frequency

    def test_upper_bound_never_below_lower_bound(self, scoring):
        candidate = Candidate(item_id=100)
        candidate.record_frequency("jazz", 2)
        candidate.add_social("jazz", 0.3)
        tags = ("jazz",)
        for frontier in (1.0, 0.5, 0.1, 0.0):
            upper = candidate.upper_bound(scoring, tags, {"jazz": 2}, frontier)
            lower = candidate.lower_bound(scoring, tags)
            assert upper >= lower - 1e-12

    def test_upper_bound_shrinks_as_frontier_decays(self, scoring):
        candidate = Candidate(item_id=100)
        candidate.record_frequency("jazz", 2)
        tags = ("jazz",)
        bounds = [candidate.upper_bound(scoring, tags, {"jazz": 1}, frontier)
                  for frontier in (1.0, 0.6, 0.2, 0.0)]
        assert bounds == sorted(bounds, reverse=True)

    def test_upper_bound_equals_lower_when_everything_seen(self, scoring):
        candidate = Candidate(item_id=100)
        candidate.record_frequency("jazz", 2)
        candidate.add_social("jazz", 0.4)
        candidate.add_social("jazz", 0.2)
        tags = ("jazz",)
        # Both endorsers seen and the frontier is exhausted.
        upper = candidate.upper_bound(scoring, tags, {"jazz": 0}, 0.0)
        lower = candidate.lower_bound(scoring, tags)
        assert upper == pytest.approx(lower)

    def test_unknown_frequency_uses_next_tf(self, scoring):
        candidate = Candidate(item_id=100)
        tags = ("jazz",)
        small = candidate.upper_bound(scoring, tags, {"jazz": 1}, 0.0)
        large = candidate.upper_bound(scoring, tags, {"jazz": 2}, 0.0)
        assert large > small

    def test_knows_frequency(self, scoring):
        candidate = Candidate(item_id=1)
        assert not candidate.knows_frequency("jazz")
        candidate.record_frequency("jazz", 0)
        assert candidate.knows_frequency("jazz")


class TestCandidatePool:
    def test_ensure_creates_once(self):
        pool = CandidatePool()
        first, created_first = pool.ensure(10)
        second, created_second = pool.ensure(10)
        assert created_first is True
        assert created_second is False
        assert first is second
        assert len(pool) == 1
        assert 10 in pool

    def test_get_missing_returns_none(self):
        assert CandidatePool().get(5) is None

    def test_max_upper_bound_excluding(self, scoring):
        pool = CandidatePool()
        strong, _ = pool.ensure(100)
        strong.record_frequency("jazz", 2)
        weak, _ = pool.ensure(101)
        weak.record_frequency("jazz", 1)
        tags = ("jazz",)
        bound_all = pool.max_upper_bound_excluding(scoring, tags, {"jazz": 0}, 0.0,
                                                   frozenset())
        bound_without_strong = pool.max_upper_bound_excluding(
            scoring, tags, {"jazz": 0}, 0.0, frozenset({100}))
        assert bound_all > bound_without_strong

    def test_iteration(self):
        pool = CandidatePool()
        pool.ensure(1)
        pool.ensure(2)
        assert {candidate.item_id for candidate in pool} == {1, 2}
        assert set(pool.item_ids()) == {1, 2}
