"""Tests for the query planner layer (core/plan.py)."""

import pytest

from repro import SocialSearchEngine
from repro.config import EngineConfig, ProximityConfig, ScoringConfig
from repro.core.batch import MIN_SHARED_GROUP
from repro.core.plan import EXECUTOR_ALGORITHM, EXECUTOR_PARTITIONED
from repro.core.query import Query


def _engine(dataset, partitions=1, algorithm="exact", vectorized=True,
            materialize=False):
    proximity = ProximityConfig(measure="ppr", materialize=True) \
        if materialize else ProximityConfig(measure="ppr", cache_size=16)
    engine = SocialSearchEngine(dataset, EngineConfig(
        algorithm=algorithm,
        scoring=ScoringConfig(alpha=0.5, vectorized=vectorized),
        proximity=proximity,
        partitions=partitions,
    ))
    if materialize:
        engine.proximity.build()
    return engine


def _query(dataset, k=5):
    return Query(seeker=1, tags=(dataset.tags()[0], dataset.tags()[1]), k=k)


class TestRouting:
    def test_exact_with_partitions_scatters(self, synthetic_dataset):
        engine = _engine(synthetic_dataset, partitions=4)
        plan = engine.planner.plan(_query(synthetic_dataset))
        assert plan.executor == EXECUTOR_PARTITIONED
        assert plan.partitions == 4
        assert plan.algorithm == "exact"

    def test_single_partition_routes_algorithm(self, synthetic_dataset):
        engine = _engine(synthetic_dataset, partitions=1)
        plan = engine.planner.plan(_query(synthetic_dataset))
        assert plan.executor == EXECUTOR_ALGORITHM
        assert plan.partitions == 1
        assert plan.fan_out == 1

    def test_frontier_algorithms_do_not_fan_out(self, synthetic_dataset):
        engine = _engine(synthetic_dataset, partitions=4)
        for algorithm in ("social-first", "ta", "nra", "hybrid"):
            plan = engine.planner.plan(_query(synthetic_dataset),
                                       algorithm=algorithm)
            assert plan.executor == EXECUTOR_ALGORITHM
            assert plan.fan_out == 1
            assert algorithm in plan.reason

    def test_scalar_scoring_routes_algorithm(self, synthetic_dataset):
        engine = _engine(synthetic_dataset, partitions=4, vectorized=False)
        plan = engine.planner.plan(_query(synthetic_dataset))
        assert plan.executor == EXECUTOR_ALGORITHM
        assert plan.scoring_path == "scalar"

    def test_route_is_memoised(self, synthetic_dataset):
        engine = _engine(synthetic_dataset, partitions=4)
        first = engine.planner.route("exact")
        assert engine.planner.route("exact") is first


class TestPlanRecord:
    def test_to_dict_shape(self, synthetic_dataset):
        engine = _engine(synthetic_dataset, partitions=2)
        data = engine.planner.plan(_query(synthetic_dataset)).to_dict()
        for key in ("query", "algorithm", "executor", "backing",
                    "pending_delta", "proximity_path", "scoring_path",
                    "partitions", "fan_out", "reason"):
            assert key in data
        assert data["backing"] == "python"
        assert data["pending_delta"] == 0

    def test_proximity_path_names(self, synthetic_dataset):
        assert _engine(synthetic_dataset).planner.proximity_path() == "cached"
        materialized = _engine(synthetic_dataset, materialize=True)
        assert materialized.planner.proximity_path() == "materialized"
        lazy = SocialSearchEngine(synthetic_dataset, EngineConfig(
            proximity=ProximityConfig(measure="ppr", materialize=True)))
        assert lazy.planner.proximity_path() == "materialized-lazy"
        online = SocialSearchEngine(synthetic_dataset, EngineConfig(
            proximity=ProximityConfig(measure="ppr", cache_size=0)))
        assert online.planner.proximity_path() == "online"

    def test_describe_is_readable(self, synthetic_dataset):
        engine = _engine(synthetic_dataset, partitions=4, materialize=True)
        text = engine.explain_plan(_query(synthetic_dataset)).describe()
        assert "executor:" in text
        assert "partitions:" in text
        assert "shard 0:" in text

    def test_arena_backing_reported(self, synthetic_dataset, tmp_path):
        from repro.storage import Dataset

        path = tmp_path / "corpus.arena"
        synthetic_dataset.to_arena(path)
        engine = _engine(Dataset.from_arena(path), partitions=2)
        plan = engine.planner.plan(_query(synthetic_dataset))
        assert plan.backing == "arena"


class TestPreview:
    def test_preview_carries_partition_bounds(self, synthetic_dataset):
        engine = _engine(synthetic_dataset, partitions=4, materialize=True)
        plan = engine.explain_plan(_query(synthetic_dataset))
        assert plan.partition_previews is not None
        assert len(plan.partition_previews) == 4
        total = sum(preview.candidates for preview in plan.partition_previews)
        assert total > 0
        assert plan.fan_out <= 4
        assert plan.frontier_bound is not None

    def test_preview_does_not_execute(self, synthetic_dataset):
        engine = _engine(synthetic_dataset, partitions=4, materialize=True)
        engine.explain_plan(_query(synthetic_dataset))
        assert engine.partition_executor.statistics.searches == 0

    def test_plan_and_execute_agree(self, synthetic_dataset):
        engine = _engine(synthetic_dataset, partitions=4, materialize=True)
        query = _query(synthetic_dataset)
        plan = engine.planner.plan(query)
        result = engine.execute(query, plan)
        assert result.algorithm == "exact"
        assert engine.partition_executor.statistics.searches == 1


class TestBatchPlan:
    def test_groups_by_tags_and_strategy(self, synthetic_dataset):
        engine = _engine(synthetic_dataset, materialize=True)
        tags = synthetic_dataset.tags()
        hot = tuple(tags[:2])
        queries = [Query(seeker=s, tags=hot, k=5) for s in range(4)] \
            + [Query(seeker=9, tags=(tags[3],), k=5)]
        plan = engine.planner.plan_batch(queries)
        assert plan.algorithm == "exact"
        assert len(plan.groups) == 2
        strategies = {group.tags: group.strategy for group in plan.groups}
        assert strategies[Query(seeker=0, tags=hot, k=5).tags] == "shared-scan"
        assert strategies[(tags[3],)] == "per-query"
        assert plan.shared_groups == 1
        assert plan.cluster_ordered

    def test_small_groups_run_per_query(self, synthetic_dataset):
        engine = _engine(synthetic_dataset)
        tags = synthetic_dataset.tags()
        queries = [Query(seeker=s, tags=(tags[s],), k=3)
                   for s in range(MIN_SHARED_GROUP - 1)]
        plan = engine.planner.plan_batch(queries)
        assert all(group.strategy == "per-query" for group in plan.groups)

    def test_non_exact_batches_never_share_scans(self, synthetic_dataset):
        engine = _engine(synthetic_dataset, algorithm="social-first")
        tags = tuple(synthetic_dataset.tags()[:1])
        queries = [Query(seeker=s, tags=tags, k=3) for s in range(5)]
        plan = engine.planner.plan_batch(queries)
        assert plan.shared_groups == 0
        assert plan.to_dict()["groups"] == 1

    def test_describe_block(self, synthetic_dataset):
        engine = _engine(synthetic_dataset, partitions=4)
        block = engine.planner.describe()
        assert block["partitions"] == 4
        assert block["backing"] == "python"
        assert block["scoring_path"] == "vectorized"
