"""Tests for batched query execution (Engine.run_batch / core.batch)."""

import numpy as np
import pytest

from repro import SocialSearchEngine
from repro.config import EngineConfig, ProximityConfig, ScoringConfig, WorkloadConfig
from repro.core.batch import MIN_SHARED_GROUP, group_queries
from repro.core.query import Query
from repro.workload import generate_workload


def _signatures(results):
    return [([item.item_id for item in result.items],
             [item.score for item in result.items],
             result.accounting.to_dict())
            for result in results]


@pytest.fixture(scope="module")
def materialized_engine(synthetic_dataset):
    engine = SocialSearchEngine(synthetic_dataset, EngineConfig(
        algorithm="exact",
        proximity=ProximityConfig(measure="ppr", materialize=True),
    ))
    engine.proximity.build()
    return engine


@pytest.fixture(scope="module")
def batch_workload(synthetic_dataset):
    return generate_workload(synthetic_dataset,
                             WorkloadConfig(num_queries=14, k=5, seed=5))


class TestGrouping:
    def test_groups_partition_all_indices(self, batch_workload):
        groups = group_queries(batch_workload)
        seen = sorted(index for group in groups for index in group)
        assert seen == list(range(len(batch_workload)))

    def test_same_tags_share_a_group(self):
        queries = [Query(seeker=1, tags=("a",), k=3),
                   Query(seeker=2, tags=("b",), k=3),
                   Query(seeker=3, tags=("a",), k=3)]
        groups = group_queries(queries)
        assert sorted(map(len, groups)) == [1, 2]

    def test_cluster_order_applied(self):
        queries = [Query(seeker=s, tags=("a",), k=3) for s in (5, 1, 9)]
        groups = group_queries(queries, cluster_of=lambda seeker: seeker % 2)
        # Even-cluster seekers first, then odds, each ascending.
        assert [queries[i].seeker for i in groups[0]] == [1, 5, 9]


class TestRunBatch:
    def test_identical_to_run_many(self, materialized_engine, batch_workload):
        sequential = materialized_engine.run_many(batch_workload)
        batched = materialized_engine.run_batch(batch_workload)
        assert _signatures(sequential) == _signatures(batched)

    def test_duplicate_queries_coalesce(self, materialized_engine, batch_workload):
        trace = list(batch_workload) * 3
        batched = materialized_engine.run_batch(trace)
        sequential = materialized_engine.run_many(trace)
        assert _signatures(sequential) == _signatures(batched)

    def test_mixed_k_same_seeker(self, materialized_engine, batch_workload):
        base = batch_workload[0]
        trace = [Query(seeker=base.seeker, tags=base.tags, k=k) for k in (1, 3, 8)]
        batched = materialized_engine.run_batch(trace)
        sequential = materialized_engine.run_many(trace)
        assert _signatures(sequential) == _signatures(batched)
        assert [len(result.items) for result in batched] \
            == [len(result.items) for result in sequential]

    def test_empty_batch(self, materialized_engine):
        assert materialized_engine.run_batch([]) == []

    def test_input_order_preserved(self, materialized_engine, batch_workload):
        batched = materialized_engine.run_batch(batch_workload)
        for query, result in zip(batch_workload, batched):
            assert result.query == query

    def test_non_exact_algorithm_falls_back(self, materialized_engine, batch_workload):
        batched = materialized_engine.run_batch(batch_workload,
                                                algorithm="social-first")
        sequential = materialized_engine.run_many(batch_workload,
                                                  algorithm="social-first")
        assert _signatures(sequential) == _signatures(batched)

    def test_without_materialized_proximity(self, synthetic_dataset, batch_workload):
        engine = SocialSearchEngine(synthetic_dataset, EngineConfig(
            algorithm="exact", proximity=ProximityConfig(measure="ppr")))
        batched = engine.run_batch(batch_workload)
        sequential = engine.run_many(batch_workload)
        assert _signatures(sequential) == _signatures(batched)

    def test_scalar_mode_falls_back_to_sequential(self, synthetic_dataset,
                                                  batch_workload):
        engine = SocialSearchEngine(synthetic_dataset, EngineConfig(
            algorithm="exact",
            scoring=ScoringConfig(vectorized=False),
            proximity=ProximityConfig(measure="ppr"),
        ))
        batched = engine.run_batch(batch_workload)
        sequential = engine.run_many(batch_workload)
        assert _signatures(sequential) == _signatures(batched)


class TestPruning:
    """Cluster-bound pruning must never change what the caller observes."""

    def test_pruned_scores_match_unpruned(self, materialized_engine,
                                          batch_workload, monkeypatch):
        import repro.core.batch as batch_module

        pruned = materialized_engine.run_batch(batch_workload)
        monkeypatch.setattr(batch_module, "_prune_candidates",
                            lambda *args, **kwargs: None)
        unpruned = materialized_engine.run_batch(batch_workload)
        assert _signatures(pruned) == _signatures(unpruned)

    def test_min_shared_group_is_sane(self):
        assert MIN_SHARED_GROUP >= 2
