"""Tests for the SocialSearchEngine facade."""

import pytest

from repro.config import EngineConfig, ProximityConfig, ScoringConfig
from repro.core import Query, SocialSearchEngine
from repro.errors import InvalidQueryError, UnknownAlgorithmError
from repro.proximity import CachedProximity


class TestEngineBasics:
    def test_search_returns_k_results(self, engine, synthetic_dataset):
        tag = synthetic_dataset.tags()[0]
        result = engine.search(seeker=1, tags=[tag], k=5)
        assert len(result.items) <= 5
        assert result.algorithm == "social-first"

    def test_search_validates_query(self, engine):
        with pytest.raises(InvalidQueryError):
            engine.search(seeker=1, tags=[], k=5)

    def test_run_with_explicit_algorithm(self, engine, workload):
        result = engine.run(workload[0], algorithm="exact")
        assert result.algorithm == "exact"

    def test_unknown_algorithm_raises(self, engine, workload):
        with pytest.raises(UnknownAlgorithmError):
            engine.run(workload[0], algorithm="definitely-not-real")

    def test_run_many(self, engine, workload):
        results = engine.run_many(workload[:3])
        assert len(results) == 3

    def test_algorithm_instances_are_cached(self, engine, workload):
        engine.run(workload[0], algorithm="exact")
        first = engine._algorithm("exact")
        engine.run(workload[1], algorithm="exact")
        assert engine._algorithm("exact") is first

    def test_algorithms_listing(self, engine):
        names = engine.algorithms()
        assert "social-first" in names
        assert "exact" in names

    def test_default_proximity_is_cached_wrapper(self, synthetic_dataset):
        engine = SocialSearchEngine(synthetic_dataset)
        assert isinstance(engine.proximity, CachedProximity)

    def test_cache_can_be_disabled(self, synthetic_dataset):
        config = EngineConfig(proximity=ProximityConfig(cache_size=0))
        engine = SocialSearchEngine(synthetic_dataset, config)
        assert not isinstance(engine.proximity, CachedProximity)


class TestEngineReconfiguration:
    def test_with_alpha_shares_proximity(self, engine):
        other = engine.with_alpha(0.9)
        assert other.proximity is engine.proximity
        assert other.config.scoring.alpha == pytest.approx(0.9)
        assert engine.config.scoring.alpha == pytest.approx(0.5)

    def test_with_algorithm(self, engine, workload):
        other = engine.with_algorithm("nra")
        assert other.run(workload[0]).algorithm == "nra"

    def test_alpha_extremes_change_ranking(self, engine, synthetic_dataset, workload):
        query = workload[0]
        textual = engine.with_alpha(1.0).run(query, algorithm="exact")
        social = engine.with_alpha(0.0).run(query, algorithm="exact")
        # The two extreme rankings should not (in general) be identical on a
        # homophilous corpus; at minimum the score values must differ.
        assert textual.scores != social.scores or textual.item_ids != social.item_ids


class TestExplain:
    def test_explain_mentions_query_and_items(self, engine, workload):
        result = engine.run(workload[0])
        text = engine.explain(result)
        assert "query:" in text
        assert "results:" in text
        assert str(workload[0].seeker) in text

    def test_explain_lists_every_item(self, engine, workload):
        result = engine.run(workload[0])
        text = engine.explain(result)
        for item in result.items:
            assert f"id={item.item_id}" in text

    def test_scoring_property(self, engine):
        assert engine.scoring.alpha == engine.config.scoring.alpha
