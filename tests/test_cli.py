"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_parser_knows_all_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("demo", "generate", "query", "explain", "bench",
                        "serve", "build-arena", "profile"):
            assert command in text

    def test_serve_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--port", "0", "--workers", "2"])
        assert args.handler is not None
        assert args.port == 0
        assert args.workers == 2
        assert args.cache_capacity == 1024
        assert args.ttl == 300.0
        assert args.warmup == 0
        assert args.arena is None

    def test_suite_flag_variants(self):
        parser = build_parser()
        assert parser.parse_args(["bench"]).suite is None
        assert parser.parse_args(["bench", "--suite"]).suite == "topk"
        assert parser.parse_args(["bench", "--suite", "proximity"]).suite \
            == "proximity"
        assert parser.parse_args(["bench", "--suite", "partitioned"]).suite \
            == "partitioned"
        args = parser.parse_args(["bench", "--suite", "scale",
                                  "--scale-sizes", "2500,10000",
                                  "--chunk-size", "50000",
                                  "--target-p50-ms", "25",
                                  "--rss-ceiling-mb", "2048",
                                  "--min-rss-ratio", "5"])
        assert args.suite == "scale"
        assert args.scale_sizes == "2500,10000"
        assert args.chunk_size == 50000
        assert args.target_p50_ms == 25.0
        assert args.rss_ceiling_mb == 2048.0
        assert args.min_rss_ratio == 5.0

    def test_partitions_flag_parses(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--partitions", "4"])
        assert args.partitions == 4
        assert parser.parse_args(["explain", "3", "jazz"]).partitions == 1


class TestExplain:
    def test_explain_prints_plan_without_executing(self, capsys):
        assert main(["explain", "4", "tag-000", "tag-001", "--scale", "0.1",
                     "--algorithm", "exact", "--partitions", "4"]) == 0
        out = capsys.readouterr().out
        assert "executor:   partitioned-exact" in out
        assert "shard 0:" in out

    def test_explain_single_partition_routes_algorithm(self, capsys):
        assert main(["explain", "4", "tag-000", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "executor:   algorithm" in out
        assert "fan-out=1" in out

    def test_explain_analyze_prints_span_tree(self, tmp_path, capsys):
        import json

        jsonl = tmp_path / "trace.jsonl"
        chrome = tmp_path / "trace_chrome.json"
        assert main(["explain", "4", "tag-000", "tag-001", "--scale", "0.1",
                     "--algorithm", "exact", "--partitions", "4",
                     "--analyze", "--trace-out", str(jsonl),
                     "--chrome-trace", str(chrome)]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN ANALYZE" in out
        assert "engine.run" in out
        assert "executor.search" in out
        assert "scatter.sweep" in out
        assert "stage coverage:" in out
        # Exported spans round-trip as JSON and match the printed tree.
        spans = [json.loads(line) for line in
                 jsonl.read_text().strip().splitlines()]
        assert "engine.run" in {span["name"] for span in spans}
        chrome = json.loads(chrome.read_text())
        assert {event["ph"] for event in chrome["traceEvents"]} == {"X"}
        assert "engine.run" in {event["name"]
                                for event in chrome["traceEvents"]}

    def test_explain_analyze_leaves_global_tracer_alone(self, capsys):
        from repro.obs.trace import get_tracer

        assert main(["explain", "4", "tag-000", "--scale", "0.1",
                     "--analyze"]) == 0
        assert get_tracer() is None
        assert "EXPLAIN ANALYZE" in capsys.readouterr().out

    def test_bench_partitioned_suite_writes_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "BENCH_partitioned.json"
        assert main(["bench", "--suite", "partitioned", "--users", "80",
                     "--queries", "4", "--rounds", "1",
                     "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "partitioned scatter-gather suite" in out
        report = json.loads(path.read_text())
        assert report["suite"] == "partitioned"
        assert report["equivalent"] is True
        assert set(report["p50_by_partitions"]) == {"1", "2", "4"}


class TestDemo:
    def test_demo_runs_and_prints_comparison(self, capsys):
        assert main(["demo", "--scale", "0.1", "--k", "3"]) == 0
        output = capsys.readouterr().out
        assert "algorithm" in output
        assert "social-first" in output
        assert "results:" in output


class TestGenerateAndQuery:
    def test_generate_then_query(self, tmp_path, capsys):
        snapshot = tmp_path / "snap"
        assert main(["generate", str(snapshot), "--users", "40", "--items", "80",
                     "--tags", "10", "--actions", "400", "--seed", "3"]) == 0
        generated = capsys.readouterr().out
        assert "wrote snapshot" in generated

        assert main(["query", str(snapshot), "1", "tag-000", "--k", "3"]) == 0
        queried = capsys.readouterr().out
        assert "query: seeker=1" in queried


class TestBench:
    def test_bench_prints_table(self, capsys):
        assert main(["bench", "--scale", "0.1", "--queries", "3", "--k", "3",
                     "--algorithms", "exact", "social-first"]) == 0
        output = capsys.readouterr().out
        assert "mean_latency_ms" in output
        assert "social-first" in output

    def test_bench_suite_writes_json(self, tmp_path, capsys):
        target = tmp_path / "BENCH_topk.json"
        assert main(["bench", "--suite", "--users", "40", "--queries", "2",
                     "--rounds", "1", "--json", str(target)]) == 0
        output = capsys.readouterr().out
        assert "speedup" in output
        assert target.exists()

    def test_bench_suite_min_speedup_gate(self, tmp_path, capsys):
        # An impossible bar must flip the exit code (the CI smoke gate).
        assert main(["bench", "--suite", "--users", "40", "--queries", "2",
                     "--rounds", "1", "--min-speedup", "1e9"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_bench_suite_honours_algorithm_selection(self, capsys):
        assert main(["bench", "--suite", "--users", "40", "--queries", "2",
                     "--rounds", "1", "--algorithms", "exact", "ta"]) == 0
        output = capsys.readouterr().out
        assert "ta" in output
        assert "social-first" not in output

    def test_bench_suite_rejects_scalar_flag(self, capsys):
        assert main(["bench", "--suite", "--scalar"]) == 1
        assert "no effect" in capsys.readouterr().out

    def test_scalar_flag_disables_vectorized_kernels(self):
        parser = build_parser()
        args = parser.parse_args(["bench", "--scalar"])
        assert args.scalar is True
        args = parser.parse_args(["query", "snap", "1", "tag"])
        assert args.scalar is False

    def test_bench_suite_instrumentation_block(self, tmp_path, capsys):
        import json

        target = tmp_path / "BENCH_topk.json"
        jsonl = tmp_path / "sample_trace.jsonl"
        assert main(["bench", "--suite", "--users", "40", "--queries", "3",
                     "--rounds", "1", "--algorithms", "exact",
                     "--json", str(target),
                     "--max-trace-overhead", "1e9",
                     "--trace-jsonl", str(jsonl)]) == 0
        output = capsys.readouterr().out
        assert "tracing overhead" in output
        report = json.loads(target.read_text())
        block = report["instrumentation"]
        for key in ("p50_off_ms", "p50_unsampled_ms", "p50_traced_ms",
                    "p50_disabled_check_ms", "overhead_disabled",
                    "overhead_unsampled", "overhead_traced"):
            assert key in block
        assert "engine.run" in block["stage_breakdown"]
        assert jsonl.exists()
        assert json.loads(jsonl.read_text().splitlines()[0])["trace_id"]

    def test_bench_suite_trace_overhead_gate(self, capsys):
        # An impossibly tight budget must flip the exit code: the
        # disabled-check p50 can never be 1e-9x the never-traced p50.
        assert main(["bench", "--suite", "--users", "40", "--queries", "2",
                     "--rounds", "1", "--algorithms", "exact",
                     "--max-trace-overhead", "1e-9"]) == 1
        assert "instrumentation budget" in capsys.readouterr().out

    def test_bench_proximity_suite_writes_json(self, tmp_path, capsys):
        target = tmp_path / "BENCH_proximity.json"
        assert main(["bench", "--suite", "proximity", "--users", "40",
                     "--queries", "3", "--rounds", "1",
                     "--json", str(target)]) == 0
        output = capsys.readouterr().out
        assert "cold seeker" in output
        assert "equivalence   OK" in output
        assert target.exists()

    def test_bench_proximity_suite_min_speedup_gate(self, capsys):
        assert main(["bench", "--suite", "proximity", "--users", "40",
                     "--queries", "3", "--rounds", "1",
                     "--min-speedup", "1e9"]) == 1
        assert "FAIL" in capsys.readouterr().out


class TestBuildArena:
    def test_build_arena_then_serve_dataset(self, tmp_path, capsys):
        snapshot = tmp_path / "snap"
        arena = tmp_path / "corpus.arena"
        assert main(["generate", str(snapshot), "--users", "40", "--items", "80",
                     "--tags", "10", "--actions", "400", "--seed", "3"]) == 0
        capsys.readouterr()
        assert main(["build-arena", str(arena), "--snapshot", str(snapshot),
                     "--materialize", "--proximity", "ppr"]) == 0
        output = capsys.readouterr().out
        assert "materialized" in output
        assert "wrote arena" in output
        assert arena.exists()

        from repro.storage import Dataset, load_shards

        dataset = Dataset.from_arena(arena)
        assert dataset.num_users == 40
        assert load_shards(arena) is not None

    def test_build_arena_synthetic_default(self, tmp_path, capsys):
        arena = tmp_path / "synthetic.arena"
        assert main(["build-arena", str(arena), "--scale", "0.1"]) == 0
        assert "wrote arena" in capsys.readouterr().out


class TestProfile:
    def test_profile_prints_hotspots(self, tmp_path, capsys):
        from repro.workload import generate_workload, tiny_dataset
        from repro.config import WorkloadConfig
        from repro.workload.trace import save_queries

        # The synthetic profile corpus at --scale 0.1 shares tag names with
        # any tiny synthetic workload, so generate the trace from the same
        # shape of corpus.
        dataset = tiny_dataset()
        queries = generate_workload(dataset, WorkloadConfig(num_queries=4, seed=3))
        trace = tmp_path / "trace.jsonl"
        save_queries(queries, trace)
        assert main(["profile", str(trace), "--scale", "0.1",
                     "--rounds", "1", "--top", "5"]) == 0
        output = capsys.readouterr().out
        assert "cumulative" in output
        assert "profiled 4 queries" in output

    def test_profile_empty_trace_fails(self, tmp_path, capsys):
        trace = tmp_path / "empty.jsonl"
        trace.write_text("")
        assert main(["profile", str(trace)]) == 1
        assert "no queries" in capsys.readouterr().out


class TestWarmupHelpers:
    def test_warmup_seekers_orders_by_frequency(self):
        from repro.cli import _warmup_seekers
        from repro.core.query import Query

        class FakeDataset:
            num_users = 100

        trace = ([Query(seeker=7, tags=("a",))] * 3
                 + [Query(seeker=2, tags=("a",))] * 2
                 + [Query(seeker=5, tags=("a",))])
        assert _warmup_seekers(FakeDataset(), trace, 2) == [7, 2]
        # Out-of-range ids (trace recorded against a bigger corpus) never
        # consume warm-up slots, even when they dominate the trace.
        trace = [Query(seeker=5000, tags=("a",))] * 10 + trace
        assert _warmup_seekers(FakeDataset(), trace, 2) == [7, 2]
        assert _warmup_seekers(FakeDataset(), trace, 10) == [7, 2, 5]


class TestStreamingCli:
    def test_build_arena_stream_writes_loadable_arena(self, tmp_path, capsys):
        from repro.storage.dataset import Dataset

        target = tmp_path / "streamed.arena"
        assert main(["build-arena", str(target), "--stream",
                     "--users", "300", "--chunk-size", "512",
                     "--seed", "23"]) == 0
        assert "streamed" in capsys.readouterr().out
        dataset = Dataset.from_arena(target)
        assert dataset.num_users == 300

    def test_build_arena_stream_matches_in_memory_build(self, tmp_path,
                                                        capsys):
        from repro.storage.arena import build_arena
        from repro.workload.datasets import scaled_dataset

        streamed = tmp_path / "streamed.arena"
        assert main(["build-arena", str(streamed), "--stream",
                     "--users", "200", "--seed", "23"]) == 0
        capsys.readouterr()
        reference = build_arena(scaled_dataset(200, seed=23),
                                tmp_path / "reference.arena")
        assert streamed.read_bytes() == reference.read_bytes()

    def test_build_arena_stream_rejects_snapshot(self, tmp_path, capsys):
        assert main(["build-arena", str(tmp_path / "x.arena"), "--stream",
                     "--snapshot", str(tmp_path)]) == 1
        assert "--stream" in capsys.readouterr().out

    def test_bench_scale_suite_writes_json(self, tmp_path, capsys):
        target = tmp_path / "BENCH_scale.json"
        assert main(["bench", "--suite", "scale",
                     "--scale-sizes", "300", "--queries", "3",
                     "--rounds", "1", "--chunk-size", "512",
                     "--json", str(target)]) == 0
        output = capsys.readouterr().out
        assert "corpus scale suite" in output
        assert "equivalence   OK" in output
        assert target.exists()

    def test_bench_scale_suite_min_rss_ratio_gate(self, capsys):
        # An impossible bar must flip the exit code (the CI smoke gate).
        assert main(["bench", "--suite", "scale",
                     "--scale-sizes", "300", "--queries", "2",
                     "--rounds", "1", "--chunk-size", "512",
                     "--min-rss-ratio", "1e9"]) == 1
        assert "FAIL" in capsys.readouterr().out
