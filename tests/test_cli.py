"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_parser_knows_all_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("demo", "generate", "query", "bench", "serve"):
            assert command in text

    def test_serve_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--port", "0", "--workers", "2"])
        assert args.handler is not None
        assert args.port == 0
        assert args.workers == 2
        assert args.cache_capacity == 1024
        assert args.ttl == 300.0


class TestDemo:
    def test_demo_runs_and_prints_comparison(self, capsys):
        assert main(["demo", "--scale", "0.1", "--k", "3"]) == 0
        output = capsys.readouterr().out
        assert "algorithm" in output
        assert "social-first" in output
        assert "results:" in output


class TestGenerateAndQuery:
    def test_generate_then_query(self, tmp_path, capsys):
        snapshot = tmp_path / "snap"
        assert main(["generate", str(snapshot), "--users", "40", "--items", "80",
                     "--tags", "10", "--actions", "400", "--seed", "3"]) == 0
        generated = capsys.readouterr().out
        assert "wrote snapshot" in generated

        assert main(["query", str(snapshot), "1", "tag-000", "--k", "3"]) == 0
        queried = capsys.readouterr().out
        assert "query: seeker=1" in queried


class TestBench:
    def test_bench_prints_table(self, capsys):
        assert main(["bench", "--scale", "0.1", "--queries", "3", "--k", "3",
                     "--algorithms", "exact", "social-first"]) == 0
        output = capsys.readouterr().out
        assert "mean_latency_ms" in output
        assert "social-first" in output

    def test_bench_suite_writes_json(self, tmp_path, capsys):
        target = tmp_path / "BENCH_topk.json"
        assert main(["bench", "--suite", "--users", "40", "--queries", "2",
                     "--rounds", "1", "--json", str(target)]) == 0
        output = capsys.readouterr().out
        assert "speedup" in output
        assert target.exists()

    def test_bench_suite_min_speedup_gate(self, tmp_path, capsys):
        # An impossible bar must flip the exit code (the CI smoke gate).
        assert main(["bench", "--suite", "--users", "40", "--queries", "2",
                     "--rounds", "1", "--min-speedup", "1e9"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_bench_suite_honours_algorithm_selection(self, capsys):
        assert main(["bench", "--suite", "--users", "40", "--queries", "2",
                     "--rounds", "1", "--algorithms", "exact", "ta"]) == 0
        output = capsys.readouterr().out
        assert "ta" in output
        assert "social-first" not in output

    def test_bench_suite_rejects_scalar_flag(self, capsys):
        assert main(["bench", "--suite", "--scalar"]) == 1
        assert "no effect" in capsys.readouterr().out

    def test_scalar_flag_disables_vectorized_kernels(self):
        parser = build_parser()
        args = parser.parse_args(["bench", "--scalar"])
        assert args.scalar is True
        args = parser.parse_args(["query", "snap", "1", "tag"])
        assert args.scalar is False
