"""End-to-end integration tests: generate → index → query → evaluate → persist."""

import pytest

from repro import (
    DatasetConfig,
    EngineConfig,
    ProximityConfig,
    ScoringConfig,
    SocialSearchEngine,
    WorkloadConfig,
    load_dataset,
    save_dataset,
)
from repro.eval import ExperimentRunner
from repro.workload import build_dataset, generate_workload


@pytest.fixture(scope="module")
def pipeline_dataset():
    config = DatasetConfig(
        name="pipeline",
        num_users=50,
        num_items=100,
        num_tags=12,
        num_actions=800,
        homophily=0.6,
        seed=11,
    )
    return build_dataset(config, holdout_fraction=0.2)


class TestFullPipeline:
    def test_generate_query_and_evaluate(self, pipeline_dataset):
        engine = SocialSearchEngine(pipeline_dataset)
        queries = generate_workload(pipeline_dataset,
                                    WorkloadConfig(num_queries=6, k=5, seed=2))
        runner = ExperimentRunner(engine)
        report = runner.run(queries, ["exact", "social-first", "global"])
        rows = {row["algorithm"]: row for row in report.rows()}
        # Social-first must agree perfectly with exact on returned score mass.
        assert rows["social-first"]["overlap_with_exact"] >= 0.99
        # Quality metrics exist because the dataset has a holdout.
        assert "ndcg_at_k" in rows["social-first"]

    def test_social_ranking_beats_random_on_homophilous_corpus(self, pipeline_dataset):
        engine = SocialSearchEngine(pipeline_dataset)
        queries = generate_workload(pipeline_dataset,
                                    WorkloadConfig(num_queries=12, k=10, seed=4))
        runner = ExperimentRunner(engine)
        report = runner.run(queries, ["social-first", "random"],
                            compare_to_reference=False)
        social = report.report("social-first").row()
        random_row = report.report("random").row()
        assert social["ndcg_at_k"] >= random_row["ndcg_at_k"]

    def test_persist_and_requery_gives_identical_results(self, pipeline_dataset, tmp_path):
        engine = SocialSearchEngine(pipeline_dataset)
        queries = generate_workload(pipeline_dataset,
                                    WorkloadConfig(num_queries=3, k=5, seed=6))
        before = [engine.run(query, algorithm="exact").item_ids for query in queries]

        directory = save_dataset(pipeline_dataset, tmp_path / "snapshot")
        reloaded = load_dataset(directory)
        engine_after = SocialSearchEngine(reloaded)
        after = [engine_after.run(query, algorithm="exact").item_ids for query in queries]
        assert before == after

    def test_alternate_proximity_measures_run_end_to_end(self, pipeline_dataset):
        queries = generate_workload(pipeline_dataset,
                                    WorkloadConfig(num_queries=2, k=5, seed=8))
        for measure in ("ppr", "katz", "adamic-adar", "landmark"):
            config = EngineConfig(
                scoring=ScoringConfig(alpha=0.5),
                proximity=ProximityConfig(measure=measure),
            )
            engine = SocialSearchEngine(pipeline_dataset, config)
            for query in queries:
                exact = engine.run(query, algorithm="exact")
                social = engine.run(query, algorithm="social-first")
                assert social.scores == pytest.approx(exact.scores, abs=1e-9)

    def test_query_results_are_stable_across_runs(self, pipeline_dataset):
        engine = SocialSearchEngine(pipeline_dataset)
        queries = generate_workload(pipeline_dataset,
                                    WorkloadConfig(num_queries=4, k=5, seed=9))
        first = [engine.run(query).item_ids for query in queries]
        second = [engine.run(query).item_ids for query in queries]
        assert first == second
