"""Setuptools shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .`` through the pyproject
backend) fail with ``invalid command 'bdist_wheel'``.  Keeping this shim
lets ``pip install -e . --no-use-pep517 --no-build-isolation`` fall back to
the classic ``setup.py develop`` path, which needs no wheel support.  All
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
