"""Experiment F10 (serving): throughput and tail latency of the query service.

Not a figure from the paper — this measures the online-serving scenario the
ROADMAP's north star asks for.  A Zipf-skewed request stream (hot queries
repeat, mirroring real traffic) is replayed by closed-loop client threads
against :class:`QueryService` while sweeping the worker count, once with
the serving optimisations (result cache + in-flight deduplication) off and
once with them on.

Expected shape: the optimised configuration reports a high hit rate and a
much lower median request latency, because the hot head of the Zipf
distribution is served from memory instead of recomputed.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

from repro import Query, QueryService, ServiceConfig
from repro.eval import format_table
from repro.service import percentile
from repro.workload.distributions import ZipfSampler

from conftest import BENCH_SEED, make_engine, make_workload, write_result

WORKER_COUNTS = [1, 2, 4]
CLIENT_THREADS = 8
NUM_REQUESTS = 200
POOL_SIZE = 24
ZIPF_EXPONENT = 1.1


def make_request_stream(dataset, num_requests=NUM_REQUESTS, pool_size=POOL_SIZE,
                        seed=BENCH_SEED):
    """A Zipf-skewed stream over a fixed pool of distinct queries."""
    pool = [Query(seeker=query.seeker, tags=query.tags, k=query.k)
            for query in make_workload(dataset, num_queries=pool_size, k=10,
                                       seed=seed)]
    sampler = ZipfSampler(len(pool), ZIPF_EXPONENT, seed=seed)
    return [pool[index] for index in sampler.sample_many(num_requests)]


def serve_stream(dataset, stream, workers, optimised):
    """Replay ``stream`` with closed-loop clients; return one result row."""
    engine = make_engine(dataset)
    config = ServiceConfig(workers=workers,
                           cache_capacity=1024 if optimised else 0,
                           cache_ttl_seconds=0.0,
                           deduplicate=optimised)
    with QueryService(engine, config) as service:
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as clients:
            served = list(clients.map(service.serve, stream))
        elapsed = time.perf_counter() - started
        latencies = [result.latency_seconds for result in served]
        snapshot = service.metrics.to_dict()
        return {
            "workers": workers,
            "serving_opts": "on" if optimised else "off",
            "throughput_qps": len(stream) / elapsed,
            "p50_ms": percentile(latencies, 0.50) * 1000.0,
            "p99_ms": percentile(latencies, 0.99) * 1000.0,
            "hit_rate": snapshot["cache_hit_rate"],
            "coalesced": snapshot["coalesced"],
            "computed": snapshot["computed"],
        }


def test_fig10_serving_throughput(benchmark, delicious_dataset):
    """Sweep workers x serving optimisations under a Zipf-skewed stream."""
    stream = make_request_stream(delicious_dataset)

    def run():
        rows = []
        for workers in WORKER_COUNTS:
            for optimised in (False, True):
                rows.append(serve_stream(delicious_dataset, stream, workers,
                                         optimised))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        rows,
        columns=["workers", "serving_opts", "throughput_qps", "p50_ms",
                 "p99_ms", "hit_rate", "coalesced", "computed"],
        title=(f"Figure 10 — served-query throughput and request latency "
               f"(Zipf {ZIPF_EXPONENT} stream, {NUM_REQUESTS} requests over "
               f"{POOL_SIZE} distinct queries, {CLIENT_THREADS} clients)"),
    )
    write_result("fig10_serving", table)

    by_key = {(row["workers"], row["serving_opts"]): row for row in rows}
    for workers in WORKER_COUNTS:
        optimised = by_key[(workers, "on")]
        baseline = by_key[(workers, "off")]
        # The warmed cache must serve the hot head of the Zipf stream...
        assert optimised["hit_rate"] > 0.3
        # ...and repeat requests must not recompute: at most one computation
        # per distinct query in the pool (dedup absorbs concurrent repeats).
        assert optimised["computed"] <= POOL_SIZE
        # The baseline recomputes every request.
        assert baseline["computed"] == NUM_REQUESTS
        # Serving optimisations must not hurt throughput.
        assert optimised["throughput_qps"] >= 0.8 * baseline["throughput_qps"]
