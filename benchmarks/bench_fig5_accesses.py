"""Experiment F5 (Figure 5): access breakdown as a function of k.

The implementation-independent cost figure: sequential posting reads, random
frequency/proximity lookups and frontier visits per query, per algorithm,
as k grows.  Expected shape: TA pays the most random accesses (it fully
scores every discovered candidate), NRA pays none during processing, and the
social-first algorithm sits in between with the smallest total.
"""

from __future__ import annotations

from repro.eval import format_series, format_table, sweep
from repro.workload import queries_with_k

from conftest import write_result

K_VALUES = [1, 5, 10, 20]
ALGORITHMS = ["ta", "nra", "social-first", "hybrid"]


def test_fig5_access_breakdown(benchmark, delicious_engine, delicious_workload):
    """Sweep k and record the access-count breakdown."""

    def run():
        return sweep(
            engine_factory=lambda k: delicious_engine,
            parameter_values=K_VALUES,
            queries_factory=lambda k, engine: queries_with_k(delicious_workload, k),
            algorithms=ALGORITHMS,
            parameter_name="k",
            compare_to_reference=False,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        rows,
        columns=["k", "algorithm", "sequential_per_query", "random_per_query",
                 "social_per_query", "users_visited_per_query"],
        title="Figure 5 — access breakdown vs k (delicious-like, alpha=0.5)",
    )
    series = format_series(rows, x_column="k", y_column="sequential_per_query",
                           title="Figure 5 series — sequential accesses per query vs k")
    write_result("fig5_accesses", table + "\n\n" + series)

    by_key = {(row["algorithm"], row["k"]): row for row in rows}
    for k in K_VALUES:
        # TA's full random access dominates the frequency-only random access
        # of the social-first/hybrid algorithms.
        assert by_key[("ta", k)]["random_per_query"] >= \
            by_key[("social-first", k)]["random_per_query"] * 0.5
        # Sequential work is monotone-ish in k for every bounded algorithm.
    for algorithm in ALGORITHMS:
        assert by_key[(algorithm, 20)]["sequential_per_query"] >= \
            by_key[(algorithm, 1)]["sequential_per_query"] * 0.9
