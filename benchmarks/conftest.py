"""Shared fixtures and helpers for the benchmark harness.

Every file in this directory regenerates one table or figure of the
reconstructed evaluation (see DESIGN.md §5 and EXPERIMENTS.md).  The
benchmarks are deliberately scaled down so the whole harness runs in a few
minutes on a laptop; the *shapes* (who wins, how curves bend) are what the
reproduction is judged on, not absolute milliseconds.

Each benchmark prints its result rows and also appends them to
``benchmarks/results/<experiment>.txt`` so the numbers survive pytest's
output capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import (
    EngineConfig,
    ProximityConfig,
    ScoringConfig,
    SocialSearchEngine,
    WorkloadConfig,
)
from repro.workload import delicious_like, flickr_like, generate_workload

RESULTS_DIR = Path(__file__).parent / "results"

#: Benchmark-wide defaults; small enough for CI, large enough to show shapes.
BENCH_SCALE = 0.25
BENCH_QUERIES = 8
BENCH_K = 10
BENCH_SEED = 7

#: The algorithm line-up reported in most experiments.
ALGORITHMS = ["exact", "ta", "nra", "social-first", "hybrid", "global"]


def write_result(name: str, text: str) -> None:
    """Print ``text`` and persist it under ``benchmarks/results/<name>.txt``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n[{name}]\n{text}\n")


def make_engine(dataset, alpha: float = 0.5, algorithm: str = "social-first",
                measure: str = "shortest-path", early_termination: bool = True,
                cache_size: int = 256) -> SocialSearchEngine:
    """Engine with the benchmark defaults."""
    config = EngineConfig(
        algorithm=algorithm,
        scoring=ScoringConfig(alpha=alpha),
        proximity=ProximityConfig(measure=measure, cache_size=cache_size),
        early_termination=early_termination,
    )
    return SocialSearchEngine(dataset, config)


def make_workload(dataset, num_queries: int = BENCH_QUERIES, k: int = BENCH_K,
                  seed: int = BENCH_SEED):
    """Deterministic workload over ``dataset``."""
    return generate_workload(
        dataset, WorkloadConfig(num_queries=num_queries, k=k, seed=seed),
    )


@pytest.fixture(scope="session")
def delicious_dataset():
    """The bookmark-style corpus used by most experiments."""
    return delicious_like(scale=BENCH_SCALE, seed=BENCH_SEED, holdout_fraction=0.2)


@pytest.fixture(scope="session")
def flickr_dataset():
    """The photo-style corpus used by the dataset-statistics table."""
    return flickr_like(scale=BENCH_SCALE, seed=BENCH_SEED, holdout_fraction=0.2)


@pytest.fixture(scope="session")
def delicious_engine(delicious_dataset):
    """Default engine over the delicious-like corpus."""
    return make_engine(delicious_dataset)


@pytest.fixture(scope="session")
def delicious_workload(delicious_dataset):
    """Default workload over the delicious-like corpus."""
    return make_workload(delicious_dataset)
