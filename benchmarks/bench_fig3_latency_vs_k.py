"""Experiment F3 (Figure 3): latency and work as a function of k.

Sweeps the requested result size k and reports, per algorithm, the mean
latency and total accesses.  Expected shape: the exhaustive baseline is flat
in k (it always scans everything), while the early-terminating algorithms
grow with k because a larger k needs more evidence before the bounds close.
"""

from __future__ import annotations

from repro.eval import format_series, format_table, sweep
from repro.workload import queries_with_k

from conftest import write_result

K_VALUES = [1, 5, 10, 20]
ALGORITHMS = ["exact", "ta", "nra", "social-first"]


def test_fig3_latency_vs_k(benchmark, delicious_engine, delicious_workload):
    """Sweep k and record the latency / access curves."""

    def run():
        return sweep(
            engine_factory=lambda k: delicious_engine,
            parameter_values=K_VALUES,
            queries_factory=lambda k, engine: queries_with_k(delicious_workload, k),
            algorithms=ALGORITHMS,
            parameter_name="k",
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        rows,
        columns=["k", "algorithm", "mean_latency_ms", "sequential_per_query",
                 "random_per_query", "users_visited_per_query",
                 "early_termination_rate", "overlap_with_exact"],
        title="Figure 3 — effect of k (delicious-like, alpha=0.5)",
    )
    series = format_series(rows, x_column="k", y_column="mean_latency_ms",
                           title="Figure 3 series — mean latency (ms) vs k")
    write_result("fig3_latency_vs_k", table + "\n\n" + series)

    by_key = {(row["algorithm"], row["k"]): row for row in rows}
    for algorithm in ALGORITHMS:
        for k in K_VALUES:
            assert by_key[(algorithm, k)]["overlap_with_exact"] >= 0.99
    # The social-first algorithm needs more work for larger k: its total
    # accesses at k=20 must be at least its accesses at k=1.
    def total_accesses(algorithm, k):
        row = by_key[(algorithm, k)]
        return (row["sequential_per_query"] + row["random_per_query"]
                + row["users_visited_per_query"])

    assert total_accesses("social-first", 20) >= total_accesses("social-first", 1)
    # The exhaustive baseline does not benefit from small k: its posting-list
    # scanning is flat in k (its random accesses do grow slightly with k
    # because the final result re-scoring touches k items).
    exact_seq_small = by_key[("exact", 1)]["sequential_per_query"]
    exact_seq_large = by_key[("exact", 20)]["sequential_per_query"]
    assert exact_seq_small == exact_seq_large
