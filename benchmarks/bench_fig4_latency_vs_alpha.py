"""Experiment F4 (Figure 4): effect of the social/textual blend α.

Sweeps α from purely social (0) to purely textual (1).  Expected shape: the
social-first algorithm does the least frontier work at α = 1 (it degenerates
to posting-list processing) and the least posting-list work at α = 0 (pure
network walk); the exhaustive baseline is insensitive to α.
"""

from __future__ import annotations

from repro.eval import format_series, format_table, sweep

from conftest import make_engine, write_result

ALPHAS = [0.0, 0.25, 0.5, 0.75, 1.0]
ALGORITHMS = ["exact", "ta", "social-first"]


def test_fig4_effect_of_alpha(benchmark, delicious_dataset, delicious_workload):
    """Sweep alpha and record latency / access curves."""

    engines = {}

    def engine_for(alpha):
        if alpha not in engines:
            engines[alpha] = make_engine(delicious_dataset, alpha=alpha)
        return engines[alpha]

    def run():
        return sweep(
            engine_factory=engine_for,
            parameter_values=ALPHAS,
            queries_factory=lambda alpha, engine: delicious_workload,
            algorithms=ALGORITHMS,
            parameter_name="alpha",
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        rows,
        columns=["alpha", "algorithm", "mean_latency_ms", "sequential_per_query",
                 "random_per_query", "users_visited_per_query",
                 "early_termination_rate", "overlap_with_exact"],
        title="Figure 4 — effect of alpha (delicious-like, k=10)",
    )
    series = format_series(rows, x_column="alpha", y_column="users_visited_per_query",
                           title="Figure 4 series — users visited per query vs alpha")
    write_result("fig4_latency_vs_alpha", table + "\n\n" + series)

    by_key = {(row["algorithm"], row["alpha"]): row for row in rows}
    for algorithm in ALGORITHMS:
        for alpha in ALPHAS:
            assert by_key[(algorithm, alpha)]["overlap_with_exact"] >= 0.99
    # Purely textual queries should make the adaptive algorithm skip the
    # social frontier entirely; purely social queries should make it read
    # (almost) no postings.
    assert by_key[("social-first", 1.0)]["users_visited_per_query"] == 0.0
    assert by_key[("social-first", 0.0)]["sequential_per_query"] <= \
        by_key[("social-first", 1.0)]["sequential_per_query"]
    # Social work grows as alpha decreases.
    assert by_key[("social-first", 0.0)]["users_visited_per_query"] >= \
        by_key[("social-first", 0.75)]["users_visited_per_query"]
