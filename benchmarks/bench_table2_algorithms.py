"""Experiment T2 (Table 2): per-algorithm latency and accesses at defaults.

The headline comparison: every algorithm answers the same workload at the
default setting (k = 10, α = 0.5, shortest-path proximity) and reports mean
latency, access counts, early-termination rate and agreement with the exact
baseline.
"""

from __future__ import annotations

from repro.eval import ExperimentRunner, format_table

from conftest import ALGORITHMS, write_result


def test_table2_algorithm_comparison(benchmark, delicious_engine, delicious_workload):
    """Run the default-setting comparison of every algorithm."""

    def run():
        runner = ExperimentRunner(delicious_engine)
        return runner.run(delicious_workload, ALGORITHMS)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = report.rows()
    text = format_table(
        rows,
        columns=["algorithm", "queries", "mean_latency_ms", "p95_latency_ms",
                 "sequential_per_query", "random_per_query", "social_per_query",
                 "users_visited_per_query", "early_termination_rate",
                 "overlap_with_exact", "ndcg_at_k"],
        title="Table 2 — algorithm comparison at default settings "
              "(k=10, alpha=0.5, shortest-path proximity)",
    )
    write_result("table2_algorithms", text)

    by_name = {row["algorithm"]: row for row in rows}
    # Every exact-equivalent algorithm returns the exact answer.
    for name in ("ta", "nra", "social-first", "hybrid"):
        assert by_name[name]["overlap_with_exact"] >= 0.99
    # The social-first algorithm prunes work relative to the exhaustive scan:
    # it must touch fewer postings and visit fewer users than exact.
    assert by_name["social-first"]["sequential_per_query"] <= \
        by_name["exact"]["sequential_per_query"]
    assert by_name["social-first"]["users_visited_per_query"] <= \
        by_name["exact"]["users_visited_per_query"]
    # And it terminates early on a meaningful share of the workload.
    assert by_name["social-first"]["early_termination_rate"] > 0.0
    # The non-social baseline does no social work at all.
    assert by_name["global"]["users_visited_per_query"] == 0.0
