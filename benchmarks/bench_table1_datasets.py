"""Experiment T1 (Table 1): dataset statistics.

Reports the corpus statistics of the two synthetic datasets (the substitutes
for the paper-era del.icio.us / Flickr crawls): users, edges, items, tags,
actions, activity skew and index footprint.
"""

from __future__ import annotations

from repro.eval import format_table
from repro.storage import compute_dataset_statistics, graph_statistics_row

from conftest import write_result


def _rows(datasets):
    rows = []
    for dataset in datasets:
        row = compute_dataset_statistics(dataset).to_dict()
        graph_row = graph_statistics_row(dataset)
        row["degree_gini"] = graph_row["degree_gini"]
        row["clustering"] = graph_row["clustering_coefficient"]
        rows.append(row)
    return rows


def test_table1_dataset_statistics(benchmark, delicious_dataset, flickr_dataset):
    """Compute Table 1 and sanity-check the corpora look like tagging sites."""
    rows = benchmark(lambda: _rows([delicious_dataset, flickr_dataset]))
    text = format_table(
        rows,
        columns=["name", "num_users", "num_edges", "avg_degree", "num_items",
                 "num_tags", "num_actions", "avg_actions_per_user",
                 "avg_tags_per_item", "max_tag_frequency", "degree_gini",
                 "clustering", "index_memory_bytes"],
        title="Table 1 — dataset statistics (synthetic substitutes)",
    )
    write_result("table1_datasets", text)

    by_name = {row["name"]: row for row in rows}
    delicious = by_name["delicious-like"]
    flickr = by_name["flickr-like"]
    # Bookmark corpora are broader (more items and tags); photo corpora are
    # denser socially.  These are the shape properties Table 1 documents.
    assert delicious["num_items"] > flickr["num_items"]
    assert delicious["num_tags"] > flickr["num_tags"]
    assert flickr["avg_degree"] > delicious["avg_degree"]
    for row in rows:
        assert row["degree_gini"] > 0.0
        assert row["num_actions"] > 0
