"""Experiment F6 (Figure 6): scalability with the number of users.

Regenerates the corpus at increasing network sizes (items and actions scale
linearly with users) and measures per-query latency and work.  Expected
shape: the exhaustive baseline grows roughly linearly with corpus size while
the early-terminating social-first algorithm grows much more slowly, because
it only explores the seeker's neighbourhood and the posting-list prefixes.
"""

from __future__ import annotations

from repro.eval import format_series, format_table, sweep
from repro.workload import scaled_dataset

from conftest import make_engine, make_workload, write_result

USER_COUNTS = [50, 100, 200, 400]
ALGORITHMS = ["exact", "social-first"]


def test_fig6_scalability_with_users(benchmark):
    """Sweep the number of users and record latency / work curves."""

    datasets = {}
    engines = {}

    def engine_for(num_users):
        if num_users not in engines:
            datasets[num_users] = scaled_dataset(num_users, seed=23, homophily=0.5)
            engines[num_users] = make_engine(datasets[num_users], alpha=0.5)
        return engines[num_users]

    def run():
        return sweep(
            engine_factory=engine_for,
            parameter_values=USER_COUNTS,
            queries_factory=lambda n, engine: make_workload(engine.dataset,
                                                            num_queries=6, k=10,
                                                            seed=3),
            algorithms=ALGORITHMS,
            parameter_name="num_users",
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        rows,
        columns=["num_users", "algorithm", "mean_latency_ms",
                 "sequential_per_query", "random_per_query",
                 "users_visited_per_query", "overlap_with_exact"],
        title="Figure 6 — scalability with the number of users (alpha=0.5, k=10)",
    )
    series = format_series(rows, x_column="num_users", y_column="mean_latency_ms",
                           title="Figure 6 series — mean latency (ms) vs users")
    write_result("fig6_scalability", table + "\n\n" + series)

    by_key = {(row["algorithm"], row["num_users"]): row for row in rows}
    for n in USER_COUNTS:
        assert by_key[("social-first", n)]["overlap_with_exact"] >= 0.99

    def work(algorithm, n):
        row = by_key[(algorithm, n)]
        return (row["sequential_per_query"] + row["random_per_query"]
                + row["users_visited_per_query"])

    # Exact's work grows with the corpus.
    assert work("exact", USER_COUNTS[-1]) > work("exact", USER_COUNTS[0])
    # Social-first's growth factor is smaller than exact's.
    exact_growth = work("exact", USER_COUNTS[-1]) / max(1.0, work("exact", USER_COUNTS[0]))
    social_growth = work("social-first", USER_COUNTS[-1]) / max(1.0, work("social-first", USER_COUNTS[0]))
    assert social_growth <= exact_growth * 1.1
