"""Experiment T3 (Table 3): index footprint and build time.

Reports, per corpus: the time to build the derived indexes (inverted +
social), their memory footprint, and the footprint of fully materialising
per-user proximity vectors (the "unlimited precomputation" baseline).  The
point of the table: materialising proximity for every user costs far more
memory than the on-line algorithms' indexes, which is why the paper-family
computes proximity at query time.
"""

from __future__ import annotations

import time

from repro.baselines import MaterializedBaseline
from repro.config import EngineConfig
from repro.eval import format_table
from repro.proximity import ShortestPathProximity
from repro.storage import InvertedIndex, SocialIndex

from conftest import write_result


def _footprint_row(dataset):
    started = time.perf_counter()
    inverted = InvertedIndex.build(dataset.tagging)
    social = SocialIndex.build(dataset.tagging)
    build_seconds = time.perf_counter() - started

    proximity = ShortestPathProximity(dataset.graph)
    baseline = MaterializedBaseline(dataset, proximity, EngineConfig())
    started = time.perf_counter()
    baseline.materialise()
    materialise_seconds = time.perf_counter() - started

    return {
        "dataset": dataset.name,
        "users": dataset.num_users,
        "actions": dataset.num_actions,
        "index_build_ms": build_seconds * 1000.0,
        "inverted_index_bytes": inverted.memory_bytes(),
        "social_index_bytes": social.memory_bytes(),
        "graph_bytes": dataset.graph.memory_bytes(),
        "materialised_proximity_entries": baseline.num_entries(),
        "materialised_proximity_bytes": baseline.memory_bytes(),
        "materialise_ms": materialise_seconds * 1000.0,
    }


def test_table3_index_footprint(benchmark, delicious_dataset, flickr_dataset):
    """Measure index build cost vs full proximity materialisation."""
    rows = benchmark.pedantic(
        lambda: [_footprint_row(delicious_dataset), _footprint_row(flickr_dataset)],
        rounds=1, iterations=1,
    )
    text = format_table(
        rows,
        columns=["dataset", "users", "actions", "index_build_ms",
                 "inverted_index_bytes", "social_index_bytes", "graph_bytes",
                 "materialised_proximity_entries", "materialised_proximity_bytes",
                 "materialise_ms"],
        title="Table 3 — index footprint and build time vs full proximity "
              "materialisation",
    )
    write_result("table3_footprint", text)

    for row in rows:
        assert row["inverted_index_bytes"] > 0
        assert row["social_index_bytes"] > 0
        # Materialising every user's proximity vector costs more memory than
        # the query-time indexes combined — the motivation for on-line
        # computation.
        assert row["materialised_proximity_bytes"] > 0
        assert row["materialise_ms"] > row["index_build_ms"] * 0.1
