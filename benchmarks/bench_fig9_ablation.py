"""Experiment F9 (Figure 9): ablation of the social-first design choices.

Switches off, one at a time, the three ingredients DESIGN.md credits for the
social-first algorithm's efficiency and measures the cost of each ablation:

* **no early termination** — bounds are still maintained but never used to
  stop, so every source is drained;
* **no adaptive scheduling** — the ``hybrid`` algorithm: identical bounds and
  random-access policy, but blind round-robin source selection;
* **no proximity cache** — every query recomputes the seeker's proximity
  stream from scratch.

Expected shape: each ablation costs work or latency; the full configuration
is the cheapest.
"""

from __future__ import annotations

from repro.eval import ExperimentRunner, format_table

from conftest import make_engine, write_result


def _run_config(dataset, workload, label, *, algorithm="social-first",
                early_termination=True, cache_size=256):
    engine = make_engine(dataset, alpha=0.5, algorithm=algorithm,
                         early_termination=early_termination, cache_size=cache_size)
    report = ExperimentRunner(engine).run(workload, [algorithm],
                                          compare_to_reference=False)
    row = dict(report.rows()[0])
    row["configuration"] = label
    return row


def test_fig9_ablation(benchmark, delicious_dataset, delicious_workload):
    """Measure the cost of removing each design ingredient."""

    def run():
        return [
            _run_config(delicious_dataset, delicious_workload, "full social-first"),
            _run_config(delicious_dataset, delicious_workload, "no early termination",
                        early_termination=False),
            _run_config(delicious_dataset, delicious_workload, "no adaptive scheduling",
                        algorithm="hybrid"),
            _run_config(delicious_dataset, delicious_workload, "no proximity cache",
                        cache_size=0),
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        rows,
        columns=["configuration", "mean_latency_ms", "sequential_per_query",
                 "random_per_query", "social_per_query", "users_visited_per_query",
                 "early_termination_rate"],
        title="Figure 9 — ablation of the social-first design (alpha=0.5, k=10)",
    )
    write_result("fig9_ablation", text)

    by_label = {row["configuration"]: row for row in rows}
    full = by_label["full social-first"]

    def total_work(row):
        return (row["sequential_per_query"] + row["random_per_query"]
                + row["social_per_query"] + row["users_visited_per_query"])

    # Draining every source costs at least as much index work as stopping early.
    assert total_work(by_label["no early termination"]) >= total_work(full)
    # Blind scheduling costs at least as much as benefit-driven scheduling.
    assert total_work(by_label["no adaptive scheduling"]) >= total_work(full) * 0.95
    # Removing the proximity cache never makes queries faster.
    assert by_label["no proximity cache"]["mean_latency_ms"] >= \
        full["mean_latency_ms"] * 0.5
