"""Experiment F8 (Figure 8): effect of the proximity measure.

Runs the same workload with every proximity measure (path-based, PageRank,
Katz, neighbourhood-overlap, landmark sketch) and reports latency and the
quality of the resulting ranking against the holdout ground truth.  Expected
shape: the graph-aware measures (shortest-path, PPR, Katz) produce similar
quality; the myopic one-hop measures are cheaper but can miss relevant items
endorsed by friends-of-friends; the landmark sketch trades a little quality
for much cheaper per-query proximity.
"""

from __future__ import annotations

from repro.eval import ExperimentRunner, format_table

from conftest import make_engine, make_workload, write_result

MEASURES = ["shortest-path", "ppr", "katz", "adamic-adar", "jaccard", "landmark"]


def test_fig8_proximity_measures(benchmark, delicious_dataset):
    """Compare proximity measures on latency and holdout quality."""

    workload = make_workload(delicious_dataset, num_queries=8, k=10, seed=17)

    def run():
        rows = []
        for measure in MEASURES:
            engine = make_engine(delicious_dataset, alpha=0.5, measure=measure)
            report = ExperimentRunner(engine).run(workload, ["social-first"],
                                                  compare_to_reference=False)
            row = dict(report.rows()[0])
            row["measure"] = measure
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        rows,
        columns=["measure", "mean_latency_ms", "users_visited_per_query",
                 "precision_at_k", "ndcg_at_k", "early_termination_rate"],
        title="Figure 8 — effect of the proximity measure "
              "(social-first, alpha=0.5, k=10)",
    )
    write_result("fig8_proximity", table)

    by_measure = {row["measure"]: row for row in rows}
    for measure in MEASURES:
        assert 0.0 <= by_measure[measure]["ndcg_at_k"] <= 1.0
        assert 0.0 <= by_measure[measure]["precision_at_k"] <= 1.0
        assert by_measure[measure]["mean_latency_ms"] > 0.0
        # Every measure drives some social exploration at alpha=0.5.
        assert by_measure[measure]["users_visited_per_query"] > 0.0
    # The landmark sketch exists to be cheap: it must not be drastically
    # slower than the exact path-based walk it approximates.
    assert by_measure["landmark"]["mean_latency_ms"] <= \
        by_measure["ppr"]["mean_latency_ms"] * 2.0
