"""Experiment F7 (Figure 7): does help from friends improve result quality?

The quality experiment: a fraction of every user's tagging actions is hidden
from the index and treated as the relevance ground truth ("what the seeker
will tag next").  The social-aware ranking (α = 0.5) is compared against the
non-social global ranking and the random floor while the corpus homophily is
swept.  Expected shape: with no homophily the social ranking has no edge;
as homophily grows, precision/NDCG of the social ranking pulls away from the
non-social baseline.
"""

from __future__ import annotations

from repro.eval import ExperimentRunner, format_series, format_table
from repro.workload import generate_workload, homophily_sweep_dataset
from repro.config import WorkloadConfig

from conftest import make_engine, write_result

HOMOPHILY_LEVELS = [0.0, 0.4, 0.8]
ALGORITHMS = ["social-first", "global", "random"]


def test_fig7_quality_vs_homophily(benchmark):
    """Sweep homophily and record quality metrics per ranking strategy."""

    def run():
        rows = []
        for homophily in HOMOPHILY_LEVELS:
            dataset = homophily_sweep_dataset(homophily, scale=0.25, seed=31)
            engine = make_engine(dataset, alpha=0.4)
            queries = generate_workload(
                dataset, WorkloadConfig(num_queries=12, k=10, seed=13),
            )
            report = ExperimentRunner(engine).run(queries, ALGORITHMS,
                                                  compare_to_reference=False)
            for row in report.rows():
                row = dict(row)
                row["homophily"] = homophily
                rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        rows,
        columns=["homophily", "algorithm", "precision_at_k", "recall_at_k",
                 "ndcg_at_k", "mean_latency_ms"],
        title="Figure 7 — ranking quality vs homophily (holdout ground truth, k=10)",
    )
    series = format_series(rows, x_column="homophily", y_column="ndcg_at_k",
                           title="Figure 7 series — NDCG@10 vs homophily")
    write_result("fig7_quality", table + "\n\n" + series)

    by_key = {(row["algorithm"], row["homophily"]): row for row in rows}
    # The random floor is never the best strategy on a homophilous corpus.
    top = HOMOPHILY_LEVELS[-1]
    assert by_key[("social-first", top)]["ndcg_at_k"] >= \
        by_key[("random", top)]["ndcg_at_k"]
    # The social advantage over the non-social ranking grows with homophily:
    # compare the NDCG gap at the lowest and highest homophily levels.
    low_gap = by_key[("social-first", HOMOPHILY_LEVELS[0])]["ndcg_at_k"] - \
        by_key[("global", HOMOPHILY_LEVELS[0])]["ndcg_at_k"]
    high_gap = by_key[("social-first", top)]["ndcg_at_k"] - \
        by_key[("global", top)]["ndcg_at_k"]
    assert high_gap >= low_gap - 0.05
