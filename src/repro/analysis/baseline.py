"""The committed baseline: grandfathered findings the gate tolerates.

The baseline is a JSON file checked into the repo.  ``repro lint``
compares the live findings against it: findings **not** in the baseline
fail the run (exit 1), findings in the baseline pass **only if justified**
(each entry must carry a non-empty ``justification``), and baseline
entries that no longer fire are reported as stale so the file shrinks
over time instead of fossilising.

Workflow: fix the violation if you can; if you genuinely cannot, run
``repro lint --baseline write`` to append the finding, then edit the
file and fill in the ``justification`` — an unjustified entry fails the
gate exactly like a new finding.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .findings import Finding

BASELINE_VERSION = 1

_Key = Tuple[str, str, str]


def load_baseline(path) -> List[Dict[str, object]]:
    """Parse a baseline file; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return []
    data = json.loads(path.read_text(encoding="utf-8"))
    if isinstance(data, dict):  # versioned envelope
        entries = data.get("findings", [])
    else:  # bare list is accepted too
        entries = data
    if not isinstance(entries, list):
        raise ValueError(f"{path}: baseline must hold a list of findings")
    return [dict(entry) for entry in entries]


def write_baseline(path, findings: Sequence[Finding],
                   existing: Sequence[Dict[str, object]] = ()) -> int:
    """Write ``findings`` as the new baseline, keeping prior justifications.

    Returns the number of entries written.  Entries are sorted so the file
    diffs cleanly in review.
    """
    justifications = {
        _entry_key(entry): str(entry.get("justification", ""))
        for entry in existing
    }
    entries = []
    for finding in sorted(set(findings)):
        entry = finding.to_dict()
        entry["justification"] = justifications.get(finding.key(), "")
        entries.append(entry)
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")
    return len(entries)


@dataclass
class BaselineDiff:
    """How the live findings relate to the committed baseline."""

    new: List[Finding] = field(default_factory=list)
    grandfathered: List[Finding] = field(default_factory=list)
    unjustified: List[Finding] = field(default_factory=list)
    stale: List[Dict[str, object]] = field(default_factory=list)

    @property
    def failing(self) -> List[Finding]:
        """Findings that fail the gate: new plus unjustified-baselined."""
        return sorted(set(self.new) | set(self.unjustified))


def diff_against_baseline(findings: Sequence[Finding],
                          baseline: Sequence[Dict[str, object]]
                          ) -> BaselineDiff:
    """Partition findings into new / grandfathered / unjustified / stale."""
    by_key: Dict[_Key, Dict[str, object]] = {
        _entry_key(entry): entry for entry in baseline
    }
    diff = BaselineDiff()
    seen: set = set()
    for finding in sorted(set(findings)):
        entry = by_key.get(finding.key())
        if entry is None:
            diff.new.append(finding)
            continue
        seen.add(finding.key())
        if str(entry.get("justification", "")).strip():
            diff.grandfathered.append(finding)
        else:
            diff.unjustified.append(finding)
    diff.stale = [entry for key, entry in sorted(by_key.items())
                  if key not in seen]
    return diff


def _entry_key(entry: Dict[str, object]) -> _Key:
    return (str(entry.get("rule", "")), str(entry.get("file", "")),
            str(entry.get("message", "")))


__all__ = [
    "BASELINE_VERSION",
    "BaselineDiff",
    "diff_against_baseline",
    "load_baseline",
    "write_baseline",
]
