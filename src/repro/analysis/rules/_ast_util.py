"""Small AST helpers shared by the rules."""

from __future__ import annotations

import ast
from typing import Iterator, Optional


def self_attr_name(node: ast.AST) -> Optional[str]:
    """``attr`` when ``node`` is exactly ``self.<attr>``, else ``None``."""
    if isinstance(node, ast.Attribute) \
            and isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


def self_attr_root(node: ast.AST) -> Optional[str]:
    """The ``self.<attr>`` root of an access chain, else ``None``.

    Descends through attribute access, subscripts and call results, so
    ``self._x[k]``, ``self._x.setdefault(k, []).append(v)`` and
    ``self._x.items()`` all resolve to ``_x``.
    """
    while True:
        direct = self_attr_name(node)
        if direct is not None:
            return direct
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            return None


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain, ``""`` for anything else."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def has_keyword(call: ast.Call, name: str) -> bool:
    """Whether ``call`` passes keyword argument ``name``."""
    return any(kw.arg == name for kw in call.keywords)


def walk_functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    """Every (sync or async) function definition in the tree."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


__all__ = ["dotted_name", "has_keyword", "self_attr_name", "self_attr_root",
           "walk_functions"]
