"""guarded-by: lock-guarded attributes may only mutate under their lock.

Declaration is a trailing comment on the attribute's ``__init__``
assignment::

    self._watched: List[DatasetUpdater] = []  # guarded-by: _lock

From then on, every mutation of ``self._watched`` in the declaring class —
assignment, augmented assignment, ``del``, subscript stores, or a mutating
method call (``append``/``pop``/``clear``/...) — must sit lexically inside
``with self._lock`` (multi-item ``with self._lock, other:`` counts).

Two escape hatches keep the rule honest about real lock protocols:

* ``__init__`` itself is exempt — construction happens before the object
  is shared;
* a helper that is only ever called with the lock held declares that
  contract on its ``def`` line with ``# lock-held: _lock``, which treats
  the lock as held for the whole method body (and documents the calling
  convention where it matters).

Reads are deliberately out of scope: several hot paths read guarded state
lock-free by design (atomic reference swaps), and flagging them would bury
the real signal — unserialised writes.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Set

from ..context import ModuleContext
from ..findings import Finding
from ..registry import LintRule, register_rule
from ._ast_util import self_attr_name, self_attr_root

_DECLARATION = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
_LOCK_HELD = re.compile(r"#\s*lock-held:\s*([A-Za-z_][A-Za-z0-9_]*)")

#: Method names that mutate their receiver in place.
MUTATORS = {
    "add", "append", "appendleft", "clear", "discard", "extend", "insert",
    "pop", "popitem", "popleft", "remove", "setdefault", "sort", "update",
}


@register_rule
class GuardedByRule(LintRule):
    rule_id = "guarded-by"
    description = ("attributes declared '# guarded-by: <lock>' must only "
                   "be mutated inside 'with self.<lock>'")

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(context, node)

    # ------------------------------------------------------------------ #

    def _check_class(self, context: ModuleContext, classdef: ast.ClassDef
                     ) -> Iterator[Finding]:
        guarded = self._declarations(context, classdef)
        if not guarded:
            return
        for method in classdef.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue
            held: Set[str] = set()
            match = _LOCK_HELD.search(context.comment_on(method.lineno))
            if match:
                held.add(match.group(1))
            for stmt in method.body:
                yield from self._visit(context, guarded, stmt, held)

    def _declarations(self, context: ModuleContext, classdef: ast.ClassDef
                      ) -> Dict[str, str]:
        """``{attr: lock}`` from annotated ``__init__`` assignments."""
        guarded: Dict[str, str] = {}
        for method in classdef.body:
            if isinstance(method, ast.FunctionDef) \
                    and method.name == "__init__":
                for stmt in ast.walk(method):
                    if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                        continue
                    match = _DECLARATION.search(
                        context.comment_on(stmt.lineno))
                    if match is None:
                        continue
                    targets = stmt.targets \
                        if isinstance(stmt, ast.Assign) else [stmt.target]
                    for target in targets:
                        attr = self_attr_name(target)
                        if attr is not None:
                            guarded[attr] = match.group(1)
        return guarded

    # ------------------------------------------------------------------ #

    def _visit(self, context: ModuleContext, guarded: Dict[str, str],
               node: ast.AST, held: Set[str]) -> Iterator[Finding]:
        """One pass over a method body with the lexical lock set."""
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = set(held)
            for item in node.items:
                lock = self_attr_name(item.context_expr)
                if lock is not None:
                    inner.add(lock)
            for child in node.body:
                yield from self._visit(context, guarded, child, inner)
            return
        if isinstance(node, ast.ClassDef):
            return  # a nested class has its own declarations
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = node.targets
        for target in targets:
            attr = self_attr_root(target)
            if attr in guarded and guarded[attr] not in held:
                yield self._violation(context, node.lineno, attr,
                                      guarded[attr])
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in MUTATORS:
                attr = self_attr_root(func.value)
                if attr in guarded and guarded[attr] not in held:
                    yield self._violation(context, node.lineno, attr,
                                          guarded[attr])
        for child in ast.iter_child_nodes(node):
            yield from self._visit(context, guarded, child, held)

    def _violation(self, context: ModuleContext, line: int, attr: str,
                   lock: str) -> Finding:
        return self.finding(
            context, line,
            f"self.{attr} is guarded by self.{lock} but is mutated outside "
            f"'with self.{lock}' (annotate the helper '# lock-held: {lock}' "
            f"if the caller holds it)")


__all__ = ["GuardedByRule", "MUTATORS"]
