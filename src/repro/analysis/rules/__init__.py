"""Importing this package registers every built-in rule."""

from . import byte_identity  # noqa: F401
from . import durability  # noqa: F401
from . import guarded_by  # noqa: F401
from . import hot_path  # noqa: F401
from . import rng_determinism  # noqa: F401
