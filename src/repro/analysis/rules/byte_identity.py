"""byte-identity: arena/stream writers must be layout-deterministic.

The arena byte-identity gates (streaming build == in-memory build, bit for
bit) only hold if every array the writers allocate has an explicit dtype
(a platform-default ``int`` array is 32-bit on some platforms and 64-bit
on others) and every order-defining sort is ``kind="stable"`` (the default
introsort's tie order is an implementation detail numpy is free to
change).  This rule enforces both, scoped to the writer modules — any
module whose file name mentions ``arena``, ``stream`` or ``landmark``
(the landmark sketch persists as an arena section, so its selection and
distance arrays define arena bytes too).

``np.asarray``/``np.ascontiguousarray`` are exempt: they preserve their
input's dtype.  ``np.lexsort`` is exempt: it is always stable.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..findings import Finding
from ..registry import LintRule, register_rule
from ._ast_util import dotted_name, has_keyword

#: numpy constructors whose default dtype is platform- or input-dependent.
CONSTRUCTORS = {"array", "zeros", "ones", "empty", "full", "arange",
                "fromiter"}

#: How many positional arguments place a dtype for each constructor.
_POSITIONAL_DTYPE_AT = {"array": 2, "zeros": 2, "ones": 2, "empty": 2,
                        "full": 3, "fromiter": 2}

SORTS = {"sort", "argsort"}


@register_rule
class ByteIdentityRule(LintRule):
    rule_id = "byte-identity"
    description = ("arena/stream writer modules must pass explicit dtype= "
                   "to array constructors and kind=\"stable\" to sorts")

    def applies_to(self, module: str) -> bool:
        name = module.rsplit("/", 1)[-1]
        return "arena" in name or "stream" in name or "landmark" in name

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in ("np." + c for c in CONSTRUCTORS) \
                    or name in ("numpy." + c for c in CONSTRUCTORS):
                yield from self._check_constructor(context, node, name)
            elif name in {"np.sort", "np.argsort", "numpy.sort",
                          "numpy.argsort"}:
                yield from self._check_sort(context, node, name)
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "argsort":
                # method call on an array expression: x[...].argsort()
                # (.sort() is left alone: list.sort is already stable and
                # the writers never sort ndarrays in place)
                yield from self._check_sort(context, node, ".argsort")

    def _check_constructor(self, context: ModuleContext, call: ast.Call,
                           name: str) -> Iterator[Finding]:
        short = name.rsplit(".", 1)[-1]
        if has_keyword(call, "dtype"):
            return
        if len(call.args) >= _POSITIONAL_DTYPE_AT.get(short, 99):
            return
        yield self.finding(
            context, call.lineno,
            f"{name}(...) without an explicit dtype= — platform-default "
            f"dtypes break arena byte-identity; say dtype=np.int64 (or "
            f"float64/bool) explicitly")

    def _check_sort(self, context: ModuleContext, call: ast.Call,
                    name: str) -> Iterator[Finding]:
        if has_keyword(call, "kind"):
            return
        yield self.finding(
            context, call.lineno,
            f"{name}(...) without kind=\"stable\" — the default sort's tie "
            f"order is not guaranteed across numpy versions, which breaks "
            f"arena byte-identity")


__all__ = ["ByteIdentityRule", "CONSTRUCTORS", "SORTS"]
