"""durability-ordering: the crash-safety conventions of the write path.

Two families of checks:

**Exception discipline (every module).**  Crash tests inject
``InjectedCrash``, which subclasses ``BaseException`` precisely so that
``except Exception`` recovery code cannot swallow it.  A bare ``except:``
or an ``except BaseException`` handler that does not re-raise would — so
both are flagged unless the handler body contains a bare ``raise``
(cleanup-and-reraise, the pattern ``write_arena`` uses, is fine).

**Atomic publish discipline (durable writer modules — file names
mentioning ``durable``, ``wal``, ``arena`` or ``manifest``).**  Everything
published under a durable directory must flow through the
tmp + fsync + ``os.replace`` sequence:

* ``os.rename`` is flagged (silently fails across filesystems and has no
  atomic-replace guarantee on all platforms; ``os.replace`` is the
  documented primitive);
* ``Path.write_text`` / ``Path.write_bytes`` are flagged — they truncate
  the destination in place, so a crash mid-write leaves a torn file the
  manifest still references;
* an ``os.replace`` in a function with no ``fsync`` call before it is
  flagged — without the fsync the rename can hit disk before the data it
  publishes.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..context import ModuleContext
from ..findings import Finding
from ..registry import LintRule, register_rule
from ._ast_util import dotted_name, walk_functions

_DURABLE_HINTS = ("durable", "wal", "arena", "manifest")


def _is_base_exception(expr) -> bool:
    if expr is None:
        return True  # bare except:
    if isinstance(expr, ast.Name) and expr.id == "BaseException":
        return True
    if isinstance(expr, ast.Tuple):
        return any(_is_base_exception(element) for element in expr.elts)
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
    return False


@register_rule
class DurabilityOrderingRule(LintRule):
    rule_id = "durability-ordering"
    description = ("durable writes must flow through tmp+fsync+os.replace; "
                   "no handler may swallow BaseException/InjectedCrash")

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        yield from self._check_handlers(context)
        name = context.module.rsplit("/", 1)[-1]
        if any(hint in name for hint in _DURABLE_HINTS):
            yield from self._check_write_path(context)

    # -- exception discipline ------------------------------------------ #

    def _check_handlers(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_base_exception(node.type) and not _reraises(node):
                what = "bare 'except:'" if node.type is None \
                    else "'except BaseException'"
                yield self.finding(
                    context, node.lineno,
                    f"{what} without a bare re-raise swallows InjectedCrash "
                    f"and defeats crash tests; narrow to Exception or "
                    f"re-raise after cleanup")

    # -- atomic publish discipline -------------------------------------- #

    def _check_write_path(self, context: ModuleContext) -> Iterator[Finding]:
        for function in walk_functions(context.tree):
            replaces: List[ast.Call] = []
            fsync_lines: List[int] = []
            for node in ast.walk(function):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                short = name.rsplit(".", 1)[-1]
                if name == "os.rename":
                    yield self.finding(
                        context, node.lineno,
                        "os.rename in a durable writer — use os.replace "
                        "(atomic same-filesystem replace) instead")
                elif isinstance(node.func, ast.Attribute) \
                        and node.func.attr in ("write_text", "write_bytes"):
                    yield self.finding(
                        context, node.lineno,
                        f".{node.func.attr}(...) truncates the destination "
                        f"in place; durable writes go through a .tmp file, "
                        f"fsync, then os.replace")
                elif name == "os.replace":
                    replaces.append(node)
                elif "fsync" in short:
                    fsync_lines.append(node.lineno)
            for call in replaces:
                if not any(line < call.lineno for line in fsync_lines):
                    yield self.finding(
                        context, call.lineno,
                        "os.replace with no fsync earlier in the function — "
                        "the rename may be durable before the data it "
                        "publishes; fsync the tmp file first")


__all__ = ["DurabilityOrderingRule"]
