"""rng-determinism: every random draw flows through a seeded generator.

Calls into the *module-level* RNGs — ``np.random.rand()``,
``np.random.seed()``, ``random.random()``, ``random.shuffle()`` and
friends — consume hidden global state, so results depend on import order
and on whatever ran before.  Bit-identical workloads, streaming builds in
RNG-lockstep with in-memory builds, and reproducible benchmarks all
require instance RNGs: ``np.random.default_rng(seed)`` and
``random.Random(seed)``.

The rule only fires when the module actually imports ``random`` / numpy
(so a local variable named ``random`` cannot trip it), and constructor
calls (``default_rng``, ``Generator``, ``SeedSequence``, bit generators,
``random.Random``, ``random.SystemRandom``) are allowed.  ``from random
import shuffle``-style imports of the global-state functions are flagged
at the import.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..context import ModuleContext
from ..findings import Finding
from ..registry import LintRule, register_rule
from ._ast_util import dotted_name

#: Constructors of seedable instance RNGs — the blessed entry points.
ALLOWED_NUMPY = {"default_rng", "Generator", "SeedSequence", "BitGenerator",
                 "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
                 "RandomState"}
ALLOWED_STDLIB = {"Random", "SystemRandom"}


@register_rule
class RngDeterminismRule(LintRule):
    rule_id = "rng-determinism"
    description = ("no module-level np.random.* / random.* calls — use "
                   "seeded default_rng()/Random() instances")

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        numpy_names, imports_random = self._imports(context.tree)
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(context, node)
                continue
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if not name:
                continue
            parts = name.split(".")
            if len(parts) == 3 and parts[0] in numpy_names \
                    and parts[1] == "random" \
                    and parts[2] not in ALLOWED_NUMPY:
                yield self.finding(
                    context, node.lineno,
                    f"{name}(...) draws from numpy's hidden global RNG; "
                    f"use a seeded np.random.default_rng(seed) instance")
            elif imports_random and len(parts) == 2 \
                    and parts[0] == "random" \
                    and parts[1] not in ALLOWED_STDLIB:
                yield self.finding(
                    context, node.lineno,
                    f"{name}(...) draws from the stdlib's hidden global "
                    f"RNG; use a seeded random.Random(seed) instance")

    def _imports(self, tree: ast.AST) -> "tuple[Set[str], bool]":
        numpy_names: Set[str] = set()
        imports_random = False
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_names.add(alias.asname or "numpy")
                    elif alias.name == "random" and alias.asname is None:
                        imports_random = True
        return numpy_names, imports_random

    def _check_import_from(self, context: ModuleContext,
                           node: ast.ImportFrom) -> Iterator[Finding]:
        if node.module == "random":
            allowed = ALLOWED_STDLIB
        elif node.module == "numpy.random":
            allowed = ALLOWED_NUMPY
        else:
            return
        for alias in node.names:
            if alias.name not in allowed:
                yield self.finding(
                    context, node.lineno,
                    f"'from {node.module} import {alias.name}' binds a "
                    f"global-state RNG function; import the seedable class "
                    f"and instantiate it instead")


__all__ = ["ALLOWED_NUMPY", "ALLOWED_STDLIB", "RngDeterminismRule"]
