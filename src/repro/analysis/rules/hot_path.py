"""hot-path-materialisation: serve/executor modules stay array-native.

The workload-generator materialisation trap cost a scale bisect once:
a serve-path call quietly replayed the whole arena action log into
per-user Python dicts.  This rule bans the known materialisation shapes
from the modules that run per query — anything under ``service/`` or
``core/``:

* ``.tolist()`` — converts an array into a Python list; fine on a k-sized
  top-k slice (annotate it), catastrophic on a corpus-sized array;
* ``dict(zip(...))`` — the classic corpus-sized-dict builder;
* calls into the offline world: ``build_dataset``, and the tagging
  store's materialising accessors ``actions()`` / ``tags_for_user()`` /
  ``activity()`` on a ``tagging`` receiver.

``QueryWorkloadGenerator`` / ``generate_workload`` used to be banned here
too; since their sampling distributions moved onto
:func:`repro.workload.sampler.generator_distributions` histograms they no
longer materialise the store, so the carve-out is gone.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..findings import Finding
from ..registry import LintRule, register_rule
from ._ast_util import dotted_name, self_attr_root

#: Offline-world entry points that have no business in a serve module.
OFFLINE_CALLS = {"build_dataset"}

#: TaggingStore accessors that replay the arena log into Python dicts.
MATERIALISING_ACCESSORS = {"actions", "tags_for_user", "activity"}


@register_rule
class HotPathMaterialisationRule(LintRule):
    rule_id = "hot-path-materialisation"
    description = ("serve/executor modules must not materialise "
                   "corpus-sized Python structures")

    def applies_to(self, module: str) -> bool:
        return "service/" in module or "core/" in module

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "tolist":
                yield self.finding(
                    context, node.lineno,
                    ".tolist() materialises a Python list in a "
                    "serve/executor module; keep it an array, or annotate "
                    "a k-sized slice with an allow comment")
            elif isinstance(func, ast.Name) and func.id == "dict" \
                    and len(node.args) == 1 \
                    and isinstance(node.args[0], ast.Call) \
                    and isinstance(node.args[0].func, ast.Name) \
                    and node.args[0].func.id == "zip":
                yield self.finding(
                    context, node.lineno,
                    "dict(zip(...)) builds a Python dict pair-by-pair; on "
                    "corpus-sized arrays this defeats the array-native "
                    "serve path")
            else:
                name = dotted_name(func).rsplit(".", 1)[-1]
                if name in OFFLINE_CALLS:
                    yield self.finding(
                        context, node.lineno,
                        f"{name}(...) belongs to the offline build/eval "
                        f"world; serve paths must stay on arena-native "
                        f"structures (see repro.workload.sampler)")
                elif isinstance(func, ast.Attribute) \
                        and func.attr in MATERIALISING_ACCESSORS \
                        and self._is_tagging_receiver(func.value):
                    yield self.finding(
                        context, node.lineno,
                        f".{func.attr}() on a tagging store materialises "
                        f"the whole action log into per-user dicts on "
                        f"arena-backed datasets")

    def _is_tagging_receiver(self, node: ast.AST) -> bool:
        """True for ``<anything>.tagging`` or ``self._tagging`` chains."""
        if isinstance(node, ast.Attribute) and node.attr == "tagging":
            return True
        root = self_attr_root(node)
        return root is not None and "tagging" in root


__all__ = ["HotPathMaterialisationRule", "MATERIALISING_ACCESSORS",
           "OFFLINE_CALLS"]
