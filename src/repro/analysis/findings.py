"""The unit of lint output: one rule violation at one source location."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One violation: where it is, which rule fired, and why.

    Ordering is (file, line, rule, message) so reports read top to bottom
    per file.  The :meth:`key` deliberately excludes the line number —
    baseline matching must survive unrelated edits shifting code up or
    down, so a grandfathered finding is identified by what it says, not by
    where it currently sits.
    """

    file: str
    line: int
    rule: str
    message: str

    def key(self) -> Tuple[str, str, str]:
        """Identity for baseline matching: ``(rule, file, message)``."""
        return (self.rule, self.file, self.message)

    def format(self) -> str:
        """The one-line ``file:line: [rule] message`` text rendering."""
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation (``repro lint --format json``)."""
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output (baseline entries)."""
        return cls(
            file=str(data["file"]),
            line=int(data.get("line", 0)),
            rule=str(data["rule"]),
            message=str(data["message"]),
        )


__all__ = ["Finding"]
