"""Rule registry: rules self-register at import time, the runner asks here.

A rule is an instance with a ``rule_id``, a ``description``, an
``applies_to(module)`` scope predicate and a ``check(context)`` generator
of findings.  Registration happens when :mod:`repro.analysis.rules` is
imported, so the registry is complete by the time any runner entry point
executes.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Type

from .context import ModuleContext
from .findings import Finding


class LintRule:
    """Base class for repo-invariant rules.

    Subclasses set ``rule_id`` (the kebab-case name used in reports,
    baselines and ``# lint: allow(...)`` comments) and ``description``, and
    implement :meth:`check`.  Override :meth:`applies_to` to scope the rule
    to the modules whose invariant it encodes — scoping is on the
    posix-style path the runner hands in (e.g. ``src/repro/service/
    service.py``), so fixtures exercise scoped rules by mirroring the
    layout under their own directory.
    """

    rule_id: str = ""
    description: str = ""

    def applies_to(self, module: str) -> bool:
        """Whether this rule scans ``module`` (a posix relative path)."""
        return True

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one parsed module."""
        raise NotImplementedError

    def finding(self, context: ModuleContext, line: int, message: str
                ) -> Finding:
        """Build a finding for this rule at ``line`` of the context."""
        return Finding(file=context.module, line=line, rule=self.rule_id,
                       message=message)


_REGISTRY: Dict[str, LintRule] = {}


def register_rule(rule_class: Type[LintRule]) -> Type[LintRule]:
    """Class decorator: instantiate and register a rule by its ``rule_id``."""
    instance = rule_class()
    if not instance.rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    if instance.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {instance.rule_id!r}")
    _REGISTRY[instance.rule_id] = instance
    return rule_class


def all_rules() -> List[LintRule]:
    """Every registered rule, sorted by id (import side effect included)."""
    _ensure_loaded()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> LintRule:
    """Look up one rule by id; raises ``KeyError`` for unknown ids."""
    _ensure_loaded()
    return _REGISTRY[rule_id]


def _ensure_loaded() -> None:
    from . import rules  # noqa: F401  (registration side effect)


__all__ = ["LintRule", "all_rules", "get_rule", "register_rule"]
