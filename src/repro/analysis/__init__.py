"""Static analysis over the repo's own invariants.

The serving stack rests on conventions the type system cannot see: which
attributes a lock guards, which writer modules must stay byte-identical,
how the durable write path orders tmp + fsync + ``os.replace``, that every
random draw flows through a seeded generator, and that serve/executor
modules never materialise corpus-sized Python structures.  This package
checks those conventions at diff time, over :mod:`ast`, before a violation
costs a scale-suite bisect.

Entry points:

* :func:`repro.analysis.runner.lint_paths` — lint files/directories and
  return a :class:`~repro.analysis.runner.LintReport`;
* :func:`repro.analysis.runner.lint_source` — lint one source string under
  a chosen module path (how the rule unit tests drive fixtures);
* ``repro lint`` — the CLI wrapper with text/JSON output and the committed
  baseline workflow (see :mod:`repro.analysis.baseline`).

Annotations the rules understand (see each rule module for details):

* ``# guarded-by: _lock`` on an ``__init__`` assignment declares the
  attribute lock-guarded;
* ``# lock-held: _lock`` on a ``def`` line declares a private helper that
  must only be called with the lock already held;
* ``# lint: allow(rule-id) -- reason`` suppresses one finding on that line
  (or the line below the comment); the reason is mandatory.
"""

from .baseline import diff_against_baseline, load_baseline, write_baseline
from .findings import Finding
from .registry import LintRule, all_rules, get_rule, register_rule
from .runner import LintReport, lint_paths, lint_source

__all__ = [
    "Finding",
    "LintReport",
    "LintRule",
    "all_rules",
    "diff_against_baseline",
    "get_rule",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register_rule",
    "write_baseline",
]
