"""Per-module lint context: parsed tree, source lines and comment map.

Rules share one parse and one tokenize pass per file.  Comments matter as
much as the tree here — the ``# guarded-by:`` / ``# lock-held:``
annotations and ``# lint: allow(...)`` suppressions all live in comments,
which :mod:`ast` discards, so the context recovers them with
:mod:`tokenize` and exposes a line-indexed map.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Dict, Optional, Tuple

_ALLOW = re.compile(
    r"#\s*lint:\s*allow\(\s*([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\s*\)"
    r"\s*(?:--\s*(\S.*))?")


class ModuleContext:
    """Everything a rule needs to scan one module."""

    def __init__(self, module: str, text: str) -> None:
        self.module = module
        self.text = text
        self.tree = ast.parse(text)
        self.lines = text.splitlines()
        self.comments: Dict[int, str] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(text).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    self.comments[token.start[0]] = token.string
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            pass  # a file ast accepts but tokenize rejects keeps no comments

    def comment_on(self, line: int) -> str:
        """The comment text on ``line`` (1-based), or ``""``."""
        return self.comments.get(line, "")

    def allow_for(self, rule_id: str, line: int) -> Optional[Tuple[bool, str]]:
        """The suppression covering ``line`` for ``rule_id``, if any.

        A ``# lint: allow(rule-a, rule-b) -- reason`` comment suppresses
        findings of the named rules on its own line and on the line
        directly below it (so it can sit above a long statement).  Returns
        ``(justified, reason)`` when a matching allow exists — an allow
        without a reason is returned unjustified, and the runner keeps the
        finding alive with a reminder that the reason is mandatory.
        """
        for candidate in (line, line - 1):
            match = _ALLOW.search(self.comment_on(candidate))
            if match is None:
                continue
            rules = {part.strip() for part in match.group(1).split(",")}
            if rule_id in rules:
                reason = (match.group(2) or "").strip()
                return (bool(reason), reason)
        return None


__all__ = ["ModuleContext"]
