"""Walk files, run every applicable rule, apply inline suppressions."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from .context import ModuleContext
from .findings import Finding
from .registry import LintRule, all_rules

PathLike = Union[str, Path]

#: Directories never descended into (build junk, VCS, caches).
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "build", "dist",
             ".eggs", "node_modules"}


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    errors: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation (CLI ``--format json``)."""
        return {
            "files_scanned": self.files_scanned,
            "suppressed": self.suppressed,
            "errors": list(self.errors),
            "findings": [finding.to_dict() for finding in self.findings],
        }


def iter_python_files(paths: Sequence[PathLike]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files pass through as-is)."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                if not SKIP_DIRS.intersection(child.parts):
                    yield child
        elif path.suffix == ".py":
            yield path


def module_name(path: Path, root: Optional[Path] = None) -> str:
    """The posix path rules scope on, relative to ``root`` when possible."""
    root = root or Path.cwd()
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_source(text: str, module: str,
                rules: Optional[Sequence[LintRule]] = None,
                report: Optional[LintReport] = None) -> List[Finding]:
    """Lint one source string as if it lived at ``module``.

    This is the fixture-driving entry point: rule tests hand in a snippet
    plus the module path that puts it in (or out of) a rule's scope.
    Inline ``# lint: allow(...)`` suppressions are honoured; an allow
    without a justification does not suppress (the finding survives with a
    reminder appended).
    """
    report = report if report is not None else LintReport()
    try:
        context = ModuleContext(module, text)
    except SyntaxError as exc:
        report.errors.append(f"{module}:{exc.lineno or 0}: {exc.msg}")
        return []
    kept: List[Finding] = []
    for rule in (rules if rules is not None else all_rules()):
        if not rule.applies_to(module):
            continue
        for finding in rule.check(context):
            allow = context.allow_for(finding.rule, finding.line)
            if allow is None:
                kept.append(finding)
            elif allow[0]:
                report.suppressed += 1
            else:
                kept.append(Finding(
                    file=finding.file, line=finding.line, rule=finding.rule,
                    message=finding.message
                    + " (allow comment present but missing its mandatory"
                      " '-- reason')"))
    return kept


def lint_paths(paths: Sequence[PathLike],
               rules: Optional[Sequence[LintRule]] = None,
               root: Optional[PathLike] = None) -> LintReport:
    """Lint files and directories; returns the aggregate report."""
    report = LintReport()
    root_path = Path(root) if root is not None else None
    for path in iter_python_files(paths):
        module = module_name(path, root_path)
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            report.errors.append(f"{module}: unreadable ({exc})")
            continue
        report.files_scanned += 1
        report.findings.extend(
            lint_source(text, module, rules=rules, report=report))
    report.findings = sorted(set(report.findings))
    return report


__all__ = ["LintReport", "SKIP_DIRS", "iter_python_files", "lint_paths",
           "lint_source", "module_name"]
