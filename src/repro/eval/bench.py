"""Headless top-k benchmark suite (``repro bench --suite``).

Runs the same shapes as the ``benchmarks/bench_fig*`` harness — per-query
latency across algorithms, vectorized vs scalar exact scoring on the
Figure-6 medium corpus — without pytest, and emits one machine-readable
JSON document so the performance trajectory of the engine can be tracked
commit over commit (``benchmarks/results/BENCH_topk.json`` in this repo).

The suite deliberately separates two numbers:

* the **kernel speedup** — vectorized vs scalar exact search with a warm
  proximity cache, isolating the scoring/top-k kernels this PR vectorizes;
* the **per-algorithm serving view** — p50/p95 latency and throughput per
  algorithm with the engine's normal cache configuration.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Dict, List, Sequence, Union

from ..config import EngineConfig, ProximityConfig, ScoringConfig, WorkloadConfig
from ..core.engine import SocialSearchEngine
from ..core.query import Query
from ..storage.dataset import Dataset
from ..workload.datasets import scaled_dataset
from ..workload.queries import generate_workload
from .timing import percentile

PathLike = Union[str, Path]

#: Figure-6 user counts; the suite benchmarks the "medium" point.
MEDIUM_USERS = 200

DEFAULT_ALGORITHMS = ("exact", "ta", "nra", "social-first", "hybrid")


def _time_queries(engine: SocialSearchEngine, queries: Sequence[Query],
                  algorithm: str, rounds: int) -> List[float]:
    """Per-query wall-clock latencies (seconds) over ``rounds`` passes."""
    # Warm-up pass: fills the proximity cache and JIT-warms numpy buffers so
    # the measured rounds reflect steady-state serving, as in PR 1's service.
    for query in queries:
        engine.run(query, algorithm=algorithm)
    samples: List[float] = []
    for _ in range(rounds):
        for query in queries:
            started = time.perf_counter()
            engine.run(query, algorithm=algorithm)
            samples.append(time.perf_counter() - started)
    return samples


def _summarise(samples: List[float]) -> Dict[str, float]:
    total = sum(samples)
    return {
        "queries": len(samples),
        "p50_ms": percentile(samples, 0.5) * 1000.0,
        "p95_ms": percentile(samples, 0.95) * 1000.0,
        "mean_ms": (total / len(samples)) * 1000.0 if samples else 0.0,
        "qps": len(samples) / total if total > 0 else 0.0,
    }


def _engine(dataset: Dataset, vectorized: bool, alpha: float,
            measure: str, algorithm: str = "social-first") -> SocialSearchEngine:
    config = EngineConfig(
        algorithm=algorithm,
        scoring=ScoringConfig(alpha=alpha, vectorized=vectorized),
        proximity=ProximityConfig(measure=measure, cache_size=256),
    )
    return SocialSearchEngine(dataset, config)


def run_topk_suite(num_users: int = MEDIUM_USERS, num_queries: int = 20,
                   k: int = 10, rounds: int = 3, alpha: float = 0.5,
                   measure: str = "shortest-path",
                   algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
                   seed: int = 23) -> Dict[str, object]:
    """Run the suite and return the JSON-serialisable report."""
    dataset = scaled_dataset(num_users, seed=seed, homophily=0.5)
    queries = generate_workload(
        dataset, WorkloadConfig(num_queries=num_queries, k=k, seed=3))

    report: Dict[str, object] = {
        "suite": "topk",
        "dataset": {
            "name": dataset.name,
            "num_users": dataset.num_users,
            "num_items": dataset.num_items,
            "num_tags": dataset.num_tags,
            "num_actions": dataset.num_actions,
        },
        "workload": {"num_queries": len(queries), "k": k, "rounds": rounds,
                     "alpha": alpha, "proximity": measure},
        "platform": {"python": platform.python_version(),
                     "machine": platform.machine()},
        "entries": [],
    }

    # Kernel speedup: vectorized vs scalar exact, identical engine otherwise.
    vectorized_exact = _time_queries(
        _engine(dataset, vectorized=True, alpha=alpha, measure=measure),
        queries, "exact", rounds)
    scalar_exact = _time_queries(
        _engine(dataset, vectorized=False, alpha=alpha, measure=measure),
        queries, "exact", rounds)
    entries: List[Dict[str, object]] = report["entries"]  # type: ignore[assignment]
    entries.append(dict(_summarise(vectorized_exact),
                        algorithm="exact", mode="vectorized"))
    entries.append(dict(_summarise(scalar_exact),
                        algorithm="exact", mode="scalar"))
    vectorized_qps = entries[0]["qps"]
    scalar_qps = entries[1]["qps"]
    report["speedup_vectorized_exact"] = (
        float(vectorized_qps) / float(scalar_qps) if scalar_qps else 0.0)

    # Per-algorithm serving view with the default (vectorized) engine.
    serving_engine = _engine(dataset, vectorized=True, alpha=alpha, measure=measure)
    for algorithm in algorithms:
        if algorithm == "exact":
            continue  # already covered above in both modes
        samples = _time_queries(serving_engine, queries, algorithm, rounds)
        entries.append(dict(_summarise(samples), algorithm=algorithm,
                            mode="vectorized"))
    return report


def write_report(report: Dict[str, object], output: PathLike) -> Path:
    """Persist the report as pretty-printed JSON; returns the path."""
    path = Path(output)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def format_report(report: Dict[str, object]) -> str:
    """Human-readable one-screen summary of a suite report."""
    lines = [
        "top-k benchmark suite "
        f"({report['dataset']['num_users']} users, "  # type: ignore[index]
        f"{report['workload']['num_queries']} queries x "  # type: ignore[index]
        f"{report['workload']['rounds']} rounds)",  # type: ignore[index]
        f"{'algorithm':<14} {'mode':<11} {'p50 ms':>8} {'p95 ms':>8} {'qps':>9}",
    ]
    for entry in report["entries"]:  # type: ignore[union-attr]
        lines.append(
            f"{entry['algorithm']:<14} {entry['mode']:<11} "
            f"{entry['p50_ms']:>8.3f} {entry['p95_ms']:>8.3f} {entry['qps']:>9.1f}"
        )
    lines.append(
        f"vectorized exact speedup vs scalar: "
        f"{report['speedup_vectorized_exact']:.2f}x"
    )
    return "\n".join(lines)
