"""Headless benchmark suites (``repro bench --suite [topk|proximity|updates]``).

Runs the same shapes as the ``benchmarks/bench_fig*`` harness without
pytest and emits machine-readable JSON documents so the performance
trajectory of the engine can be tracked commit over commit
(``benchmarks/results/BENCH_*.json`` in this repo).

Three suites:

* ``topk`` — per-query latency across algorithms plus vectorized vs scalar
  exact scoring on the Figure-6 medium corpus (PR 2's kernel layer);
* ``proximity`` — the offline/online materialization trade-off: cold-seeker
  latency with shard-served vs online-computed proximity, mmap-arena vs
  JSON-snapshot cold start, batched vs sequential execution, and a strict
  equivalence check (rankings *and* access accounting) across the online,
  materialized and batched paths that doubles as a CI gate;
* ``updates`` — the live-update write path: an interleaved query/update
  trace over an arena-backed, shard-served dataset, reporting post-update
  vs pre-update query p50 (the delta overlays + incremental shard repair
  must keep the fast path) and gating on exact equivalence with a dataset
  rebuilt from scratch after the same updates, for the online,
  materialized and batched execution paths;
* ``partitioned`` — the planner/scatter-gather layer: query p50 against
  partition counts 1/2/4 on a community corpus with community-correlated
  vocabularies, reporting per-shard bound pruning, with a strict
  equivalence gate (rankings, scores, accounting) across partition counts
  and the online/materialized/batched execution paths;
* ``durability`` — the crash-safety story: a chaos sweep that kills the
  durable write path at every named fault-injection point (plus a torn
  final WAL record), recovers each directory, and gates on **zero
  acknowledged updates lost** and bit-identical recovered reads vs a
  from-scratch rebuild, across the online/materialized/batched paths;
  also measures WAL fsync-policy overhead, replay latency, and that
  concurrent queries see no downtime during a generation swap;
* ``anytime`` — the accuracy-for-latency story: latency-vs-quality curves
  for the budgeted anytime scan (a ``max_scanned`` sweep) and the
  landmark-sketch tier (a sketch-size sweep), with recall@k / rank
  correlation / measured admissible error bounds per point, gated on the
  default-budget operating point and on full-budget anytime answers
  being bit-identical to exact.
"""

from __future__ import annotations

import json
import platform
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..config import EngineConfig, ProximityConfig, ScoringConfig
from ..core.engine import SocialSearchEngine
from ..core.query import Query
from ..storage.dataset import Dataset
from ..storage.tagging import TaggingAction
from ..workload.datasets import scaled_dataset
from ..workload.sampler import dataset_workload
from .quality import quality_summary, result_signature
from .timing import memory_summary, percentile

PathLike = Union[str, Path]

#: Figure-6 user counts; the suite benchmarks the "medium" point.
MEDIUM_USERS = 200

DEFAULT_ALGORITHMS = ("exact", "ta", "nra", "social-first", "hybrid")


def _time_queries(engine: SocialSearchEngine, queries: Sequence[Query],
                  algorithm: str, rounds: int) -> List[float]:
    """Per-query wall-clock latencies (seconds) over ``rounds`` passes."""
    # Warm-up pass: fills the proximity cache and JIT-warms numpy buffers so
    # the measured rounds reflect steady-state serving, as in PR 1's service.
    for query in queries:
        engine.run(query, algorithm=algorithm)
    samples: List[float] = []
    for _ in range(rounds):
        for query in queries:
            started = time.perf_counter()
            engine.run(query, algorithm=algorithm)
            samples.append(time.perf_counter() - started)
    return samples


def _summarise(samples: List[float]) -> Dict[str, float]:
    total = sum(samples)
    return {
        "queries": len(samples),
        "p50_ms": percentile(samples, 0.5) * 1000.0,
        "p95_ms": percentile(samples, 0.95) * 1000.0,
        "mean_ms": (total / len(samples)) * 1000.0 if samples else 0.0,
        "qps": len(samples) / total if total > 0 else 0.0,
    }


def _engine(dataset: Dataset, vectorized: bool, alpha: float,
            measure: str, algorithm: str = "social-first") -> SocialSearchEngine:
    config = EngineConfig(
        algorithm=algorithm,
        scoring=ScoringConfig(alpha=alpha, vectorized=vectorized),
        proximity=ProximityConfig(measure=measure, cache_size=256),
    )
    return SocialSearchEngine(dataset, config)


def run_topk_suite(num_users: int = MEDIUM_USERS, num_queries: int = 20,
                   k: int = 10, rounds: int = 3, alpha: float = 0.5,
                   measure: str = "shortest-path",
                   algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
                   seed: int = 23, instrumentation: bool = False,
                   trace_jsonl: PathLike = None) -> Dict[str, object]:
    """Run the suite and return the JSON-serialisable report.

    With ``instrumentation=True`` the report gains an ``instrumentation``
    block: an A/B/C of the exact vectorized path with the tracer off,
    installed-but-unsampled and fully sampled (the disabled-path overhead
    gate), plus the per-stage time breakdown aggregated over the traced
    round.  ``trace_jsonl`` additionally writes one fully-traced query's
    spans as JSON lines (the CI artifact).
    """
    dataset = scaled_dataset(num_users, seed=seed, homophily=0.5)
    queries = dataset_workload(dataset, num_queries=num_queries, k=k, seed=3)

    report: Dict[str, object] = {
        "suite": "topk",
        "dataset": {
            "name": dataset.name,
            "num_users": dataset.num_users,
            "num_items": dataset.num_items,
            "num_tags": dataset.num_tags,
            "num_actions": dataset.num_actions,
        },
        "workload": {"num_queries": len(queries), "k": k, "rounds": rounds,
                     "alpha": alpha, "proximity": measure},
        "platform": {"python": platform.python_version(),
                     "machine": platform.machine()},
        "entries": [],
    }

    # Kernel speedup: vectorized vs scalar exact, identical engine otherwise.
    vectorized_exact = _time_queries(
        _engine(dataset, vectorized=True, alpha=alpha, measure=measure),
        queries, "exact", rounds)
    scalar_exact = _time_queries(
        _engine(dataset, vectorized=False, alpha=alpha, measure=measure),
        queries, "exact", rounds)
    entries: List[Dict[str, object]] = report["entries"]  # type: ignore[assignment]
    entries.append(dict(_summarise(vectorized_exact),
                        algorithm="exact", mode="vectorized"))
    entries.append(dict(_summarise(scalar_exact),
                        algorithm="exact", mode="scalar"))
    vectorized_qps = entries[0]["qps"]
    scalar_qps = entries[1]["qps"]
    report["speedup_vectorized_exact"] = (
        float(vectorized_qps) / float(scalar_qps) if scalar_qps else 0.0)

    # Per-algorithm serving view with the default (vectorized) engine.
    serving_engine = _engine(dataset, vectorized=True, alpha=alpha, measure=measure)
    for algorithm in algorithms:
        if algorithm == "exact":
            continue  # already covered above in both modes
        samples = _time_queries(serving_engine, queries, algorithm, rounds)
        entries.append(dict(_summarise(samples), algorithm=algorithm,
                            mode="vectorized"))

    if instrumentation:
        report["instrumentation"] = _measure_instrumentation(
            _engine(dataset, vectorized=True, alpha=alpha, measure=measure),
            queries, rounds, trace_jsonl=trace_jsonl)
    report["memory"] = memory_summary()
    return report


def _measure_instrumentation(engine: SocialSearchEngine,
                             queries: Sequence[Query], rounds: int,
                             trace_jsonl: PathLike = None) -> Dict[str, object]:
    """A/B/C the tracer's cost on the exact vectorized path.

    Four measurements, interleaved round by round on ONE engine so cache
    state and allocator drift hit all modes equally, each query keeping
    its minimum across rounds (scheduler noise stripped):

    * ``off`` — no tracer installed (the production default; the call
      sites take their ``tracer is None`` seed branch);
    * ``unsampled`` — tracer installed with ``sample_rate=0.0``: call
      sites build span attributes that are then thrown away.  Reported,
      not gated — this is the cost of *turning tracing on* at rate 0;
    * ``traced`` — ``sample_rate=1.0``, every span recorded and retained;
    * ``disabled_check`` — no tracer again, AFTER tracers were installed
      and removed.  ``overhead_disabled`` (the CI gate) is
      ``disabled_check / off``: the disabled path must cost the same
      whether or not tracing was ever enabled in the process.  A leaked
      global tracer, or disabled-path state that does not reset, fires
      this gate immediately.
    """
    from ..obs.trace import Tracer, stage_breakdown, use

    capacity = max(1, len(queries)) * max(1, rounds)
    unsampled_tracer = Tracer(sample_rate=0.0)
    traced_tracer = Tracer(sample_rate=1.0, capacity=capacity)

    for query in queries:  # warm-up: proximity cache, numpy buffers
        engine.run(query, algorithm="exact")

    best: Dict[str, List[float]] = {
        mode: [float("inf")] * len(queries)
        for mode in ("off", "unsampled", "traced", "disabled_check")}

    def measure_pass(mode: str) -> None:
        minima = best[mode]
        for position, query in enumerate(queries):
            started = time.perf_counter()
            engine.run(query, algorithm="exact")
            elapsed = time.perf_counter() - started
            if elapsed < minima[position]:
                minima[position] = elapsed

    for _ in range(max(1, rounds)):
        measure_pass("off")
        with use(unsampled_tracer):
            measure_pass("unsampled")
        with use(traced_tracer):
            measure_pass("traced")
        measure_pass("disabled_check")

    p50 = {mode: percentile(samples, 0.5) * 1000.0
           for mode, samples in best.items()}
    traces = traced_tracer.recent(limit=capacity)
    block: Dict[str, object] = {
        "p50_off_ms": p50["off"],
        "p50_unsampled_ms": p50["unsampled"],
        "p50_traced_ms": p50["traced"],
        "p50_disabled_check_ms": p50["disabled_check"],
        "overhead_disabled": (p50["disabled_check"] / p50["off"]
                              if p50["off"] else 0.0),
        "overhead_unsampled": (p50["unsampled"] / p50["off"]
                               if p50["off"] else 0.0),
        "overhead_traced": (p50["traced"] / p50["off"]
                            if p50["off"] else 0.0),
        "traces_recorded": len(traces),
        "stage_breakdown": stage_breakdown(traces),
    }
    if trace_jsonl:
        sample = traced_tracer.last()
        if sample is not None:
            path = Path(trace_jsonl)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(sample.to_jsonl(), encoding="utf-8")
            block["trace_jsonl"] = str(path)
    return block


# Shared with the quality meter (and re-exported for the scale suite):
# rankings, scores and access accounting in one comparable value.
_result_signature = result_signature


def run_proximity_suite(num_users: int = MEDIUM_USERS, num_queries: int = 20,
                        k: int = 10, rounds: int = 3, alpha: float = 0.5,
                        measure: str = "ppr",
                        algorithms: Sequence[str] = ("exact", "social-first"),
                        seed: int = 23) -> Dict[str, object]:
    """Run the materialization/arena/batching suite; returns the JSON report.

    The three headline numbers:

    * ``speedup_cold_seeker`` — p50 latency of online proximity computation
      (no cache, every query recomputes, e.g. a PPR power iteration) over
      p50 latency with prebuilt materialized shards;
    * ``speedup_cold_start`` — JSON-snapshot load time over mmap-arena load
      time for the same corpus;
    * ``speedup_batched`` — sequential ``run_many`` throughput vs coalesced
      ``run_batch`` throughput on the exact algorithm.

    ``equivalent`` is a hard correctness verdict: rankings, scores and
    access accounting must be identical across the online, materialized and
    batched execution paths for every query and algorithm measured.
    """
    dataset = scaled_dataset(num_users, seed=seed, homophily=0.5)
    queries = dataset_workload(dataset, num_queries=num_queries, k=k, seed=3)

    def online_engine() -> SocialSearchEngine:
        # cache_size=0: every query is a cold seeker paying the full online
        # proximity computation — the "no precomputation" end of the
        # trade-off.
        return _engine_with(dataset, ProximityConfig(measure=measure, cache_size=0),
                            alpha)

    def materialized_engine() -> SocialSearchEngine:
        return _engine_with(
            dataset,
            ProximityConfig(measure=measure, materialize=True, cluster_rounds=5),
            alpha)

    report: Dict[str, object] = {
        "suite": "proximity",
        "dataset": {
            "name": dataset.name,
            "num_users": dataset.num_users,
            "num_items": dataset.num_items,
            "num_tags": dataset.num_tags,
            "num_actions": dataset.num_actions,
        },
        "workload": {"num_queries": len(queries), "k": k, "rounds": rounds,
                     "alpha": alpha, "proximity": measure},
        "platform": {"python": platform.python_version(),
                     "machine": platform.machine()},
    }

    # 1. Cold-seeker latency: online per-query computation vs shard lookup.
    # Each query keeps its *minimum* across rounds — the intrinsic cost with
    # scheduler/allocator noise stripped — and the distribution summary runs
    # over those per-query minima.
    online = online_engine()
    online_samples = _best_of_rounds(online, queries, rounds)

    materialized = materialized_engine()
    build_started = time.perf_counter()
    rows_built = materialized.proximity.build()
    build_seconds = time.perf_counter() - build_started
    materialized_samples = _best_of_rounds(materialized, queries, rounds)
    report["cold_seeker"] = {
        "online": _summarise(online_samples),
        "materialized": _summarise(materialized_samples),
        "offline_build_seconds": build_seconds,
        "rows_built": rows_built,
        "shard_bytes": materialized.proximity.memory_bytes(),
    }
    online_p50 = report["cold_seeker"]["online"]["p50_ms"]  # type: ignore[index]
    materialized_p50 = report["cold_seeker"]["materialized"]["p50_ms"]  # type: ignore[index]
    report["speedup_cold_seeker"] = (
        float(online_p50) / float(materialized_p50) if materialized_p50 else 0.0)

    # 2. Cold start: JSON snapshot load vs mmap arena load.
    from ..storage.arena import build_arena
    from ..storage.persistence import load_dataset, save_dataset

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as scratch:
        snapshot_dir = Path(scratch) / "snapshot"
        arena_path = Path(scratch) / "dataset.arena"
        save_dataset(dataset, snapshot_dir)
        build_arena(dataset, arena_path, proximity=materialized.proximity)
        repeats = max(3, rounds)
        snapshot_seconds = min(
            _timed(lambda: load_dataset(snapshot_dir)) for _ in range(repeats))
        arena_seconds = min(
            _timed(lambda: Dataset.from_arena(arena_path)) for _ in range(repeats))
        arena_bytes = arena_path.stat().st_size
        # Prove the mapped dataset actually serves queries before timing is
        # trusted: one query through a fresh arena-backed engine.
        arena_engine = _engine_with(Dataset.from_arena(arena_path),
                                    ProximityConfig(measure=measure), alpha)
        arena_engine.run(queries[0], algorithm="exact")
    report["cold_start"] = {
        "snapshot_ms": snapshot_seconds * 1000.0,
        "arena_ms": arena_seconds * 1000.0,
        "arena_bytes": arena_bytes,
    }
    report["speedup_cold_start"] = (
        snapshot_seconds / arena_seconds if arena_seconds else 0.0)

    # 3. Batched execution: shared scans + in-batch coalescing vs sequential
    # runs (warm engine) over a Zipf-skewed serving trace — the request mix
    # QueryService.run_batch sees when concurrent clients hammer the hot
    # head of the query distribution (cf. bench_fig10_serving).
    import numpy as _np

    rng = _np.random.default_rng(seed)
    zipf_weights = 1.0 / _np.arange(1, len(queries) + 1, dtype=_np.float64) ** 1.1
    zipf_weights /= zipf_weights.sum()
    trace = [queries[int(position)] for position in
             rng.choice(len(queries), size=4 * len(queries), p=zipf_weights)]
    batch_engine = materialized_engine()
    batch_engine.proximity.build()
    batch_engine.run_many(trace, algorithm="exact")  # warm-up pass
    sequential_seconds = min(
        _timed(lambda: batch_engine.run_many(trace, algorithm="exact"))
        for _ in range(rounds))
    batched_seconds = min(
        _timed(lambda: batch_engine.run_batch(trace, algorithm="exact"))
        for _ in range(rounds))
    report["batched"] = {
        "sequential_ms": sequential_seconds * 1000.0,
        "batched_ms": batched_seconds * 1000.0,
        "queries": len(trace),
        "distinct_queries": len(queries),
    }
    report["speedup_batched"] = (
        sequential_seconds / batched_seconds if batched_seconds else 0.0)

    # 4. Equivalence gate: identical rankings, scores and access accounting
    # across online / materialized / batched execution.
    mismatches: List[Dict[str, object]] = []
    verify_online = online_engine()
    verify_materialized = materialized_engine()
    verify_materialized.proximity.build()
    for algorithm in algorithms:
        baseline = [verify_online.run(query, algorithm=algorithm)
                    for query in queries]
        shard_served = [verify_materialized.run(query, algorithm=algorithm)
                        for query in queries]
        batched = verify_materialized.run_batch(queries, algorithm=algorithm)
        for query, expected, *observed in zip(queries, baseline, shard_served,
                                              batched):
            want = _result_signature(expected)
            for path_name, result in zip(("materialized", "batched"), observed):
                got = _result_signature(result)
                if got != want:
                    mismatches.append({
                        "algorithm": algorithm,
                        "path": path_name,
                        "query": query.to_dict(),
                        "expected": want,
                        "got": got,
                    })
    report["equivalence"] = {
        "algorithms": list(algorithms),
        "queries_checked": len(queries) * len(algorithms),
        "mismatches": mismatches[:10],
        "num_mismatches": len(mismatches),
    }
    report["equivalent"] = not mismatches
    report["memory"] = memory_summary()
    return report


def run_updates_suite(num_users: int = MEDIUM_USERS, num_queries: int = 20,
                      k: int = 10, rounds: int = 3, alpha: float = 0.5,
                      measure: str = "katz", seed: int = 23,
                      update_batches: int = 6, actions_per_batch: int = 50,
                      friendships_per_batch: int = 3,
                      algorithms: Sequence[str] = ("exact", "social-first"),
                      ) -> Dict[str, object]:
    """Run the live-update suite; returns the JSON-serialisable report.

    The scenario is the paper's serving story under churn: an arena-backed
    dataset with materialized proximity shards keeps answering top-k
    queries while tagging actions and friendships stream in through
    :class:`~repro.storage.updates.DatasetUpdater` (watched by a
    :class:`~repro.service.QueryService`, which drives selective
    invalidation and eager shard repair).  Headline numbers:

    * ``p50_ratio`` — post-update over pre-update query p50.  Before the
      delta-overlay write path, the first mutation collapsed every
      array-backed structure to the scalar fallback; the ratio is the
      regression gate for that cliff.
    * ``equivalent`` — post-update rankings, scores and access accounting
      must be identical to a dataset rebuilt from scratch from the merged
      action/edge log, for the online, materialized and batched execution
      paths.

    Mid-trace the delta overlays are compacted once (the epoch swap), so
    both the merged and the freshly-folded read paths are measured.
    """
    import numpy as np

    from ..storage.arena import build_arena
    from ..storage.updates import DatasetUpdater
    from ..graph import SocialGraphBuilder

    base = scaled_dataset(num_users, seed=seed, homophily=0.5)
    base_actions = list(base.tagging.actions())
    base_edges = list(base.graph.iter_edges())
    base_items = [item.item_id for item in base.items]
    queries = dataset_workload(base, num_queries=num_queries, k=k, seed=3)

    report: Dict[str, object] = {
        "suite": "updates",
        "dataset": {
            "name": base.name,
            "num_users": base.num_users,
            "num_items": base.num_items,
            "num_tags": base.num_tags,
            "num_actions": base.num_actions,
        },
        "workload": {"num_queries": len(queries), "k": k, "rounds": rounds,
                     "alpha": alpha, "proximity": measure,
                     "update_batches": update_batches,
                     "actions_per_batch": actions_per_batch,
                     "friendships_per_batch": friendships_per_batch},
        "platform": {"python": platform.python_version(),
                     "machine": platform.machine()},
    }

    from ..config import ServiceConfig
    from ..service import QueryService

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as scratch:
        arena_path = Path(scratch) / "dataset.arena"
        build_arena(base, arena_path)
        live = Dataset.from_arena(arena_path)
        engine = _engine_with(
            live, ProximityConfig(measure=measure, materialize=True), alpha)
        engine.proximity.build()
        updater = DatasetUpdater(live)
        service = QueryService(engine, ServiceConfig(
            workers=1, cache_capacity=0, cache_ttl_seconds=0.0,
            deduplicate=False), updater=updater)

        pre_samples = _best_of_rounds(engine, queries, rounds)

        # Interleave update batches with full query passes.  Tagging
        # actions dominate (the common live update); every batch also adds
        # a few friendships, exercising the incremental shard repair.
        rng = np.random.default_rng(seed)
        tags = live.tags()
        added_actions = []
        added_edges = []
        next_item = max(base_items) + 1
        timestamp = 1_000_000
        best_post = [float("inf")] * len(queries)
        update_seconds = 0.0
        compaction_seconds = 0.0
        for batch_index in range(update_batches):
            actions = []
            for _ in range(actions_per_batch):
                user = int(rng.integers(0, num_users))
                tag = str(tags[int(rng.integers(0, len(tags)))]) \
                    if rng.random() < 0.95 else f"live-tag-{batch_index}"
                if rng.random() < 0.7:
                    item = int(base_items[int(rng.integers(0, len(base_items)))])
                else:
                    item = next_item
                    next_item += 1
                timestamp += 1
                actions.append(TaggingAction(user_id=user, item_id=item,
                                             tag=tag, timestamp=timestamp))
            edges = [(int(rng.integers(0, num_users)),
                      int(rng.integers(0, num_users)), 0.5)
                     for _ in range(friendships_per_batch)]
            edges = [(u, v, w) for u, v, w in edges if u != v]
            started = time.perf_counter()
            updater.add_actions(actions)
            if edges:
                updater.add_friendships(edges)
            update_seconds += time.perf_counter() - started
            added_actions.extend(actions)
            added_edges.extend(edges)
            if batch_index == update_batches // 2:
                # Mid-trace epoch swap: fold the delta overlays once, so the
                # second half measures freshly compacted arrays.
                started = time.perf_counter()
                updater.compact()
                compaction_seconds = time.perf_counter() - started
            for position, query in enumerate(queries):
                started = time.perf_counter()
                engine.run(query, algorithm="exact")
                elapsed = time.perf_counter() - started
                if elapsed < best_post[position]:
                    best_post[position] = elapsed

        shards = engine.proximity
        report["pre_update"] = _summarise(pre_samples)
        report["post_update"] = _summarise(best_post)
        pre_p50 = report["pre_update"]["p50_ms"]  # type: ignore[index]
        post_p50 = report["post_update"]["p50_ms"]  # type: ignore[index]
        report["p50_ratio"] = float(post_p50) / float(pre_p50) if pre_p50 else 0.0
        report["updates"] = {
            "batches": update_batches,
            "actions_added": len(added_actions),
            "edges_added": len(added_edges),
            "update_ms": update_seconds * 1000.0,
            "compaction_ms": compaction_seconds * 1000.0,
            "epoch": updater.epoch,
            "pending_delta": updater.pending_delta(),
            "shard_rows": shards.num_rows(),
            "shard_repairs": shards.statistics.repairs,
        }
        service.close()

        # Equivalence gate: the live (updated in place) dataset must answer
        # exactly like a dataset rebuilt from scratch from the merged logs,
        # across the online, materialized and batched execution paths.
        builder = SocialGraphBuilder(live.num_users)
        for u, v, w in base_edges:
            builder.add_edge(u, v, w)
        for u, v, w in added_edges:
            builder.add_edge(u, v, w)
        fresh = Dataset.build(builder.build(), base_actions + added_actions,
                              name=base.name)
        fresh_online = _engine_with(
            fresh, ProximityConfig(measure=measure, cache_size=0), alpha)
        live_online = _engine_with(
            live, ProximityConfig(measure=measure, cache_size=0), alpha)
        mismatches: List[Dict[str, object]] = []
        for algorithm in algorithms:
            baseline = [fresh_online.run(query, algorithm=algorithm)
                        for query in queries]
            observed_paths = (
                ("online", [live_online.run(query, algorithm=algorithm)
                            for query in queries]),
                ("materialized", [engine.run(query, algorithm=algorithm)
                                  for query in queries]),
                ("batched", engine.run_batch(queries, algorithm=algorithm)),
            )
            for path_name, observed in observed_paths:
                for query, expected, result in zip(queries, baseline, observed):
                    want = _result_signature(expected)
                    got = _result_signature(result)
                    if got != want:
                        mismatches.append({
                            "algorithm": algorithm,
                            "path": path_name,
                            "query": query.to_dict(),
                            "expected": want,
                            "got": got,
                        })
    report["equivalence"] = {
        "algorithms": list(algorithms),
        "paths": ["online", "materialized", "batched"],
        "queries_checked": len(queries) * len(algorithms) * 3,
        "mismatches": mismatches[:10],
        "num_mismatches": len(mismatches),
    }
    report["equivalent"] = not mismatches
    report["memory"] = memory_summary()
    return report


def run_partitioned_suite(num_users: int = 600, num_queries: int = 20,
                          k: int = 10, rounds: int = 3, alpha: float = 0.5,
                          measure: str = "ppr",
                          partition_counts: Sequence[int] = (1, 2, 4),
                          seed: int = 23,
                          algorithms: Sequence[str] = ("exact", "social-first"),
                          ) -> Dict[str, object]:
    """Run the scatter-gather suite; returns the JSON-serialisable report.

    The corpus is a dense community-structured tagging site with
    community-correlated vocabularies (``DatasetConfig.tag_locality``) —
    the workload shape that gives item shards prunable per-shard bounds.
    For each partition count the engine serves the same Zipf-profile
    workload through the planner; the headline numbers:

    * ``p50_by_partitions`` — exact-scan query p50 per partition count;
    * ``speedup_partitions`` — ``p50(P=1) / p50(P)`` per measured ``P``;
    * ``pruning`` — shards skipped by admissible bounds and candidates
      dropped before their social gather, per partition count.

    ``equivalent`` is a hard correctness verdict: rankings, scores and
    access accounting must be identical across every partition count and
    the online / materialized / batched execution paths.
    """
    from ..config import DatasetConfig
    from ..workload.datasets import build_dataset

    config = DatasetConfig(
        name=f"partitioned-{num_users}",
        num_users=num_users,
        num_items=num_users * 2,
        num_tags=max(24, num_users // 40),
        num_actions=num_users * 400,
        graph_model="community",
        avg_degree=8.0,
        homophily=0.85,
        tag_locality=0.95,
        seed=seed,
    )
    dataset = build_dataset(config)
    queries = dataset_workload(dataset, num_queries=num_queries, k=k, seed=7)

    def partitioned_engine(partitions: int,
                           materialize: bool = True) -> SocialSearchEngine:
        proximity = ProximityConfig(measure=measure, materialize=True) \
            if materialize else ProximityConfig(measure=measure, cache_size=0)
        engine = SocialSearchEngine(dataset, EngineConfig(
            algorithm="exact",
            scoring=ScoringConfig(alpha=alpha, vectorized=True),
            proximity=proximity,
            partitions=partitions,
        ))
        if materialize:
            engine.proximity.build()
        return engine

    report: Dict[str, object] = {
        "suite": "partitioned",
        "dataset": {
            "name": dataset.name,
            "num_users": dataset.num_users,
            "num_items": dataset.num_items,
            "num_tags": dataset.num_tags,
            "num_actions": dataset.num_actions,
            "tag_locality": config.tag_locality,
            "homophily": config.homophily,
        },
        "workload": {"num_queries": len(queries), "k": k, "rounds": rounds,
                     "alpha": alpha, "proximity": measure,
                     "partition_counts": list(partition_counts)},
        "platform": {"python": platform.python_version(),
                     "machine": platform.machine()},
    }

    # 1. p50 per partition count on the serving (materialized) engine.
    p50_by_partitions: Dict[str, float] = {}
    pruning: Dict[str, Dict[str, float]] = {}
    engines: Dict[int, SocialSearchEngine] = {}
    for partitions in partition_counts:
        engine = partitioned_engine(partitions)
        engines[partitions] = engine
        samples = _best_of_rounds(engine, queries, rounds)
        p50_by_partitions[str(partitions)] = percentile(samples, 0.5) * 1000.0
        executor = engine.partition_executor
        pruning[str(partitions)] = (
            executor.statistics.to_dict() if executor is not None
            else {"searches": len(queries) * max(1, rounds),
                  "partitions_scanned": 0, "partitions_pruned": 0,
                  "candidates_pruned": 0, "parallel_searches": 0})
    report["p50_by_partitions"] = p50_by_partitions
    report["pruning"] = pruning
    base_p50 = p50_by_partitions[str(partition_counts[0])]
    report["speedup_partitions"] = {
        str(partitions): (base_p50 / p50_by_partitions[str(partitions)]
                          if p50_by_partitions[str(partitions)] else 0.0)
        for partitions in partition_counts
    }

    # 2. Equivalence gate: every partition count, across the online,
    # materialized and batched paths, must answer exactly like the
    # single-partition online baseline.
    mismatches: List[Dict[str, object]] = []
    baseline_engine = partitioned_engine(partition_counts[0],
                                         materialize=False)
    for algorithm in algorithms:
        baseline = [baseline_engine.run(query, algorithm=algorithm)
                    for query in queries]
        for partitions in partition_counts:
            online = partitioned_engine(partitions, materialize=False)
            served = engines[partitions]
            observed_paths = (
                ("online", [online.run(query, algorithm=algorithm)
                            for query in queries]),
                ("materialized", [served.run(query, algorithm=algorithm)
                                  for query in queries]),
                ("batched", served.run_batch(queries, algorithm=algorithm)),
            )
            for path_name, observed in observed_paths:
                for query, expected, result in zip(queries, baseline,
                                                   observed):
                    want = _result_signature(expected)
                    got = _result_signature(result)
                    if got != want:
                        mismatches.append({
                            "algorithm": algorithm,
                            "partitions": partitions,
                            "path": path_name,
                            "query": query.to_dict(),
                            "expected": want,
                            "got": got,
                        })
    report["equivalence"] = {
        "algorithms": list(algorithms),
        "paths": ["online", "materialized", "batched"],
        "queries_checked": len(queries) * len(algorithms)
        * len(partition_counts) * 3,
        "mismatches": mismatches[:10],
        "num_mismatches": len(mismatches),
    }
    report["equivalent"] = not mismatches
    report["memory"] = memory_summary()
    return report


def format_partitioned_report(report: Dict[str, object]) -> str:
    """Human-readable one-screen summary of a partitioned-suite report."""
    p50s = report["p50_by_partitions"]
    speedups = report["speedup_partitions"]
    pruning = report["pruning"]
    lines = [
        "partitioned scatter-gather suite "
        f"({report['dataset']['num_users']} users, "  # type: ignore[index]
        f"{report['workload']['num_queries']} queries x "  # type: ignore[index]
        f"{report['workload']['rounds']} rounds, "  # type: ignore[index]
        f"measure={report['workload']['proximity']})",  # type: ignore[index]
    ]
    for partitions in report["workload"]["partition_counts"]:  # type: ignore[index]
        key = str(partitions)
        stats = pruning[key]  # type: ignore[index]
        lines.append(
            f"P={key}: p50 {p50s[key]:.3f} ms"  # type: ignore[index]
            f" | speedup {speedups[key]:.2f}x"  # type: ignore[index]
            f" | shards pruned {int(stats['partitions_pruned'])}"
            f" / scanned {int(stats['partitions_scanned'])}"
            f" | candidates pruned {int(stats['candidates_pruned'])}")
    lines.append(
        f"equivalence   {'OK' if report['equivalent'] else 'FAILED'} "
        f"({report['equivalence']['queries_checked']} checks, "  # type: ignore[index]
        f"{report['equivalence']['num_mismatches']} mismatches)")  # type: ignore[index]
    lines.extend(_memory_line(report))
    return "\n".join(lines)


def run_anytime_suite(num_users: int = 600, num_queries: int = 20,
                      k: int = 10, rounds: int = 3, alpha: float = 0.5,
                      measure: str = "ppr", partitions: int = 8,
                      seed: int = 23,
                      budgets: Sequence[int] = (64, 128, 256, 512, 1024),
                      landmark_counts: Sequence[int] = (4, 8, 16, 32),
                      ) -> Dict[str, object]:
    """Run the anytime/approximate serving suite; returns the JSON report.

    The corpus and Zipf workload are the partitioned suite's (community
    graph, community-correlated vocabularies), but the engine serves in
    the regime ROADMAP item 2 targets: **no precomputed proximity** — no
    materialized rows, no row cache — so the exact path pays a full
    power-iteration proximity row per query, exactly the precomputation
    vs. on-line work trade the paper family studies.  One engine serves
    every mode, so measured differences are pure work avoidance.  The
    headline blocks:

    * ``default_budget`` — latency and quality at the planner's default
      anytime budget (``effort="balanced"``); ``recall_at_k_default`` is
      the CI-gated quality number;
    * ``anytime_curve`` — the latency-vs-quality curve over a
      ``max_scanned`` budget sweep, each point carrying recall@k, rank
      correlation and the measured admissible error bounds;
    * ``landmark_curve`` — the same trade-off over landmark-sketch sizes
      (``effort="fast"`` through a landmark executor per sketch size),
      plus each sketch's build time and memory;
    * ``gate`` — the headline serving point: the fastest approximate
      configuration whose measured recall@k stays >= 0.95, with its p50
      speedup over exact (the CI-gated latency number);
    * ``full_budget`` — a hard gate: an anytime scan whose budget covers
      the whole sweep must be bit-identical (rankings, scores, access
      accounting) to the exact scan.
    """
    from dataclasses import replace as _replace

    from ..config import DatasetConfig
    from ..core.plan import default_budget
    from ..core.query import QueryBudget
    from ..proximity.landmarks import LandmarkProximity
    from ..workload.datasets import build_dataset

    # Wider item catalogue than the partitioned suite so hot-tag queries
    # touch thousands of candidates, and — deliberately — no materialized
    # proximity and no row cache: at corpus scale the O(users^2) row table
    # cannot be precomputed, so the serving question this suite answers is
    # what each approximation buys when the exact path must run a full
    # power-iteration row per query.
    config = DatasetConfig(
        name=f"anytime-{num_users}",
        num_users=num_users,
        num_items=num_users * 10,
        num_tags=max(24, num_users // 40),
        num_actions=num_users * 400,
        graph_model="community",
        avg_degree=8.0,
        homophily=0.85,
        tag_locality=0.95,
        seed=seed,
    )
    dataset = build_dataset(config)
    queries = dataset_workload(dataset, num_queries=num_queries, k=k, seed=7)

    engine = SocialSearchEngine(dataset, EngineConfig(
        algorithm="exact",
        scoring=ScoringConfig(alpha=alpha, vectorized=True),
        proximity=ProximityConfig(measure=measure, materialize=False,
                                  cache_size=0),
        partitions=partitions,
    ))

    report: Dict[str, object] = {
        "suite": "anytime",
        "dataset": {
            "name": dataset.name,
            "num_users": dataset.num_users,
            "num_items": dataset.num_items,
            "num_tags": dataset.num_tags,
            "num_actions": dataset.num_actions,
            "tag_locality": config.tag_locality,
            "homophily": config.homophily,
        },
        "workload": {"num_queries": len(queries), "k": k, "rounds": rounds,
                     "alpha": alpha, "proximity": measure,
                     "partitions": partitions,
                     "budgets": list(budgets),
                     "landmark_counts": list(landmark_counts)},
        "platform": {"python": platform.python_version(),
                     "machine": platform.machine()},
    }

    # 1. Exact baseline: latencies + the reference answers every quality
    # number compares against.
    exact_samples = _best_of_rounds(engine, queries, rounds)
    exact_results = [engine.run(query) for query in queries]
    report["exact"] = _summarise(exact_samples)
    exact_p50 = percentile(exact_samples, 0.5) * 1000.0

    def measure_point(point_queries: Sequence[Query]) -> Dict[str, object]:
        return _measure_serving_point(engine, point_queries, exact_results,
                                exact_p50, rounds, k)

    # 2. Anytime curve: a max_scanned budget sweep (deadlines would make
    # the curve hostage to scheduler noise on a 1-CPU runner).
    curve: List[Dict[str, object]] = []
    for cap in budgets:
        budgeted = [_replace(query, budget=QueryBudget(max_scanned=int(cap)))
                    for query in queries]
        point = dict(measure_point(budgeted), max_scanned=int(cap))
        curve.append(point)
    report["anytime_curve"] = curve

    # 3. The gated operating point: the planner's default anytime budget.
    default = default_budget(k)
    budgeted = [_replace(query, budget=default) for query in queries]
    default_point = dict(measure_point(budgeted),
                         max_scanned=default.max_scanned)
    report["default_budget"] = default_point
    report["speedup_anytime_default"] = default_point["speedup"]
    report["recall_at_k_default"] = (
        default_point["quality"]["recall_mean"])  # type: ignore[index]

    # 4. Landmark curve: one sketch per size, sharing the engine's corpus
    # partitions and materialized proximity (only the sketch differs).
    landmark_curve: List[Dict[str, object]] = []
    fast = [_replace(query, effort="fast") for query in queries]
    for count in landmark_counts:
        build_started = time.perf_counter()
        sketch = LandmarkProximity(dataset.graph,
                                   ProximityConfig(measure=measure),
                                   num_landmarks=int(count))
        build_seconds = time.perf_counter() - build_started
        landmark_engine = SocialSearchEngine(
            dataset, engine.config, proximity=engine.proximity,
            partitions=engine.partitions, landmark_proximity=sketch)
        point = _measure_serving_point(landmark_engine, fast, exact_results,
                                 exact_p50, rounds, k)
        landmark_curve.append(dict(point, num_landmarks=int(count),
                                   build_seconds=build_seconds,
                                   sketch_bytes=sketch.memory_bytes()))
    report["landmark_curve"] = landmark_curve

    # 5. Headline serving point: the fastest measured configuration that
    # holds recall@k >= 0.95.  CI gates its speedup; an empty gate (no
    # configuration met the floor) is itself a failure downstream.
    candidates = [("anytime-default", default_point)]
    candidates += [(f"anytime-budget-{p['max_scanned']}", p) for p in curve]
    candidates += [(f"landmarks-{p['num_landmarks']}", p)
                   for p in landmark_curve]
    qualifying = [(label, point) for label, point in candidates
                  if point["quality"]["recall_mean"] >= 0.95]  # type: ignore[index]
    if qualifying:
        gate_label, gate_point = max(
            qualifying, key=lambda item: float(item[1]["speedup"]))  # type: ignore[arg-type]
        report["gate"] = {
            "point": gate_label,
            "speedup": gate_point["speedup"],
            "recall_at_k": gate_point["quality"]["recall_mean"],  # type: ignore[index]
            "p50_ms": gate_point["latency"]["p50_ms"],  # type: ignore[index]
            "recall_floor": 0.95,
        }
    else:
        report["gate"] = {"point": None, "speedup": 0.0, "recall_at_k": 0.0,
                          "p50_ms": None, "recall_floor": 0.95}

    # 6. Full-budget equivalence gate: a budget that covers every shard
    # must reproduce the exact scan bit for bit — accounting included.
    full = [_replace(query,
                     budget=QueryBudget(max_scanned=dataset.num_items + 1))
            for query in queries]
    mismatches: List[Dict[str, object]] = []
    for query, expected, budgeted_query in zip(queries, exact_results, full):
        result = engine.run(budgeted_query)
        want = _result_signature(expected)
        got = _result_signature(result)
        if got != want or not result.is_exact or result.error_bound != 0.0:
            mismatches.append({
                "query": query.to_dict(),
                "expected": want,
                "got": got,
                "is_exact": result.is_exact,
                "error_bound": result.error_bound,
            })
    report["full_budget"] = {
        "queries_checked": len(queries),
        "mismatches": mismatches[:10],
        "num_mismatches": len(mismatches),
    }
    report["equivalent"] = not mismatches
    executor = engine.partition_executor
    if executor is not None:
        report["pruning"] = executor.statistics.to_dict()
    report["memory"] = memory_summary()
    return report


def _measure_serving_point(engine: SocialSearchEngine, queries: Sequence[Query],
                     exact_results, exact_p50: float, rounds: int,
                     k: int) -> Dict[str, object]:
    """Latency + quality of one serving configuration vs the exact baseline."""
    samples = _best_of_rounds(engine, queries, rounds)
    results = [engine.run(query) for query in queries]
    latency = _summarise(samples)
    p50 = latency["p50_ms"]
    return {
        "latency": latency,
        "quality": quality_summary(exact_results, results, k=k),
        "speedup": (exact_p50 / float(p50)) if p50 else 0.0,
    }


def format_anytime_report(report: Dict[str, object]) -> str:
    """Human-readable one-screen summary of an anytime-suite report."""
    exact = report["exact"]
    default = report["default_budget"]
    lines = [
        "anytime/approximate serving suite "
        f"({report['dataset']['num_users']} users, "  # type: ignore[index]
        f"{report['workload']['num_queries']} queries x "  # type: ignore[index]
        f"{report['workload']['rounds']} rounds, "  # type: ignore[index]
        f"P={report['workload']['partitions']}, "  # type: ignore[index]
        f"measure={report['workload']['proximity']})",  # type: ignore[index]
        f"exact          p50 {exact['p50_ms']:.3f} ms",  # type: ignore[index]
        f"default budget p50 {default['latency']['p50_ms']:.3f} ms"  # type: ignore[index]
        f" (max-scanned={default['max_scanned']})"  # type: ignore[index]
        f" | speedup {default['speedup']:.2f}x"  # type: ignore[index]
        f" | recall@k {default['quality']['recall_mean']:.3f}"  # type: ignore[index]
        f" | tau {default['quality']['rank_correlation_mean']:.3f}"  # type: ignore[index]
        f" | bound max {default['quality']['error_bound_max']:.4f}",  # type: ignore[index]
    ]
    for point in report["anytime_curve"]:  # type: ignore[union-attr]
        lines.append(
            f"  budget {point['max_scanned']:>5}: "
            f"p50 {point['latency']['p50_ms']:.3f} ms"
            f" | speedup {point['speedup']:.2f}x"
            f" | recall@k {point['quality']['recall_mean']:.3f}"
            f" | exact {point['quality']['exact_fraction']:.2f}")
    for point in report["landmark_curve"]:  # type: ignore[union-attr]
        lines.append(
            f"  landmarks {point['num_landmarks']:>3}: "
            f"p50 {point['latency']['p50_ms']:.3f} ms"
            f" | speedup {point['speedup']:.2f}x"
            f" | recall@k {point['quality']['recall_mean']:.3f}"
            f" | build {point['build_seconds'] * 1000.0:.0f} ms"
            f" | {point['sketch_bytes']} bytes")
    gate = report.get("gate") or {}
    if gate.get("point"):
        lines.append(
            f"gate point     {gate['point']}: "
            f"speedup {gate['speedup']:.2f}x"
            f" at recall@k {gate['recall_at_k']:.3f}"
            f" (floor {gate['recall_floor']:.2f})")
    else:
        lines.append("gate point     NONE met the recall floor")
    lines.append(
        f"full budget    {'OK' if report['equivalent'] else 'FAILED'} "
        f"({report['full_budget']['queries_checked']} checks, "  # type: ignore[index]
        f"{report['full_budget']['num_mismatches']} mismatches)")  # type: ignore[index]
    lines.extend(_memory_line(report))
    return "\n".join(lines)


def format_updates_report(report: Dict[str, object]) -> str:
    """Human-readable one-screen summary of an updates-suite report."""
    updates = report["updates"]
    lines = [
        "live-update write-path suite "
        f"({report['dataset']['num_users']} users, "  # type: ignore[index]
        f"{report['workload']['num_queries']} queries, "  # type: ignore[index]
        f"{updates['batches']} update batches, "  # type: ignore[index]
        f"measure={report['workload']['proximity']})",  # type: ignore[index]
        f"query p50      pre-update {report['pre_update']['p50_ms']:.3f} ms"  # type: ignore[index]
        f" | post-update {report['post_update']['p50_ms']:.3f} ms"  # type: ignore[index]
        f" | ratio {report['p50_ratio']:.2f}x",
        f"updates        {updates['actions_added']} actions + "  # type: ignore[index]
        f"{updates['edges_added']} edges in {updates['update_ms']:.1f} ms"  # type: ignore[index]
        f" | compaction {updates['compaction_ms']:.1f} ms"  # type: ignore[index]
        f" (epoch {updates['epoch']}, {updates['pending_delta']} pending)",  # type: ignore[index]
        f"shards         {updates['shard_rows']} rows kept, "  # type: ignore[index]
        f"{updates['shard_repairs']} repaired in place",  # type: ignore[index]
        f"equivalence    {'OK' if report['equivalent'] else 'FAILED'} "
        f"({report['equivalence']['queries_checked']} checks vs fresh "  # type: ignore[index]
        f"rebuild, {report['equivalence']['num_mismatches']} mismatches)",  # type: ignore[index]
    ]
    lines.extend(_memory_line(report))
    return "\n".join(lines)


#: Crash scenarios of the durability chaos sweep.  ``write`` scenarios arm
#: the point and stream update batches until the kill fires mid-append;
#: ``checkpoint`` scenarios ack every batch first and kill inside the
#: generation publish; ``torn`` writes one unacknowledged record and tears
#: it the way a mid-write power cut does.
_DURABILITY_SCENARIOS = (
    ("wal.before_append", "write"),
    ("wal.after_append", "write"),
    ("wal.fsync", "write"),
    ("compact.stage", "checkpoint"),
    ("compact.commit", "checkpoint"),
    ("publish.after_arena", "checkpoint"),
    ("publish.before_manifest", "checkpoint"),
    ("arena.before_replace", "checkpoint"),
    ("torn-final-record", "torn"),
)


def run_durability_suite(num_users: int = MEDIUM_USERS, num_queries: int = 10,
                         k: int = 10, rounds: int = 2, alpha: float = 0.5,
                         measure: str = "katz", seed: int = 23,
                         update_batches: int = 5, actions_per_batch: int = 40,
                         friendships_per_batch: int = 2,
                         algorithms: Sequence[str] = ("exact",),
                         ) -> Dict[str, object]:
    """Run the durability chaos sweep; returns the JSON-serialisable report.

    For every named injection point on the durable write path the suite
    initialises a fresh :class:`~repro.storage.durable.DurableStore`,
    drives acknowledged update batches through its WAL-attached updater,
    kills the process (simulated: an :class:`InjectedCrash` unwinds and
    every in-memory object is discarded) at that point, and re-opens the
    directory the way a restarted process would.  Two hard verdicts:

    * ``acked_updates_lost`` — every update whose call returned before the
      kill must be found again.  The check is deliberately *independent of
      the recovery code*: the raw WAL segment named by the surviving
      manifest is scanned directly, and every acknowledged action/edge
      must appear in it (or in the base arena).  Under the ``always``
      fsync policy this count must be exactly 0.
    * ``equivalent`` — the recovered store must answer queries
      bit-identically (rankings, scores, access accounting) to a dataset
      rebuilt from scratch from base + the durable log, across the
      online, materialized and batched execution paths; and the
      concurrent-query thread of the generation-swap check must complete
      with zero errors (no downtime during a checkpoint).

    Also measured: WAL fsync-policy overhead (``always`` / ``interval`` /
    ``off`` vs a no-WAL updater on the same arena), and replay latency on
    a clean re-open.
    """
    import threading

    import numpy as np

    from ..config import DurabilityConfig
    from ..graph import SocialGraphBuilder
    from ..obs.faults import InjectedCrash, faults, tear_final_record
    from ..storage.durable import DurableStore, read_manifest
    from ..storage.updates import DatasetUpdater
    from ..storage.wal import FSYNC_POLICIES, scan_wal
    from ..storage.arena import build_arena

    base = scaled_dataset(num_users, seed=seed, homophily=0.5)
    base_actions = list(base.tagging.actions())
    base_edges = list(base.graph.iter_edges())
    base_action_keys = {(a.user_id, a.item_id, a.tag) for a in base_actions}
    base_edge_keys = {(min(u, v), max(u, v)) for u, v, _ in base_edges}
    base_items = [item.item_id for item in base.items]
    tags = base.tags()
    queries = dataset_workload(base, num_queries=num_queries, k=k, seed=3)

    def make_batches(rng) -> List[Tuple[List[TaggingAction],
                                        List[Tuple[int, int, float]]]]:
        """Deterministic update stream: mostly actions, a few friendships."""
        batches = []
        timestamp = 5_000_000
        for _ in range(update_batches):
            actions = []
            for _ in range(actions_per_batch):
                timestamp += 1
                actions.append(TaggingAction(
                    user_id=int(rng.integers(0, num_users)),
                    item_id=int(base_items[int(rng.integers(0, len(base_items)))]),
                    tag=str(tags[int(rng.integers(0, len(tags)))]),
                    timestamp=timestamp))
            edges = [(int(rng.integers(0, num_users)),
                      int(rng.integers(0, num_users)), 0.5)
                     for _ in range(friendships_per_batch)]
            batches.append((actions, [(u, v, w) for u, v, w in edges
                                      if u != v]))
        return batches

    report: Dict[str, object] = {
        "suite": "durability",
        "dataset": {
            "name": base.name,
            "num_users": base.num_users,
            "num_items": base.num_items,
            "num_tags": base.num_tags,
            "num_actions": base.num_actions,
        },
        "workload": {"num_queries": len(queries), "k": k, "rounds": rounds,
                     "alpha": alpha, "proximity": measure,
                     "update_batches": update_batches,
                     "actions_per_batch": actions_per_batch,
                     "friendships_per_batch": friendships_per_batch,
                     "wal_fsync": "always"},
        "platform": {"python": platform.python_version(),
                     "machine": platform.machine()},
    }

    scenario_rows: List[Dict[str, object]] = []
    all_mismatches: List[Dict[str, object]] = []
    total_lost = 0

    with tempfile.TemporaryDirectory(prefix="repro-durability-") as scratch:
        scratch_dir = Path(scratch)

        # ------------------------------------------------------------- #
        # 1. The kill matrix: one fresh store per injection point.
        # ------------------------------------------------------------- #
        for index, (point, mode) in enumerate(_DURABILITY_SCENARIOS):
            directory = scratch_dir / f"crash-{index}-{mode}"
            faults.reset()
            store = DurableStore.initialise(base, directory)
            batches = make_batches(np.random.default_rng(seed + 7))
            acked_actions: List[TaggingAction] = []
            acked_edges: List[Tuple[int, int, float]] = []
            crash: Optional[str] = None
            try:
                if mode == "write":
                    # Skip the first two records so the kill lands
                    # mid-stream, between acknowledged batches.
                    exc = OSError("injected fsync failure") \
                        if point == "wal.fsync" else None
                    faults.arm(point, exc=exc, after=2)
                    for actions, edges in batches:
                        store.updater.add_actions(actions)
                        acked_actions.extend(actions)
                        if edges:
                            store.updater.add_friendships(edges)
                            acked_edges.extend(edges)
                elif mode == "checkpoint":
                    for actions, edges in batches:
                        store.updater.add_actions(actions)
                        acked_actions.extend(actions)
                        if edges:
                            store.updater.add_friendships(edges)
                            acked_edges.extend(edges)
                    faults.arm(point)
                    store.checkpoint(force=True)
                else:  # torn final record
                    for actions, edges in batches:
                        store.updater.add_actions(actions)
                        acked_actions.extend(actions)
                        if edges:
                            store.updater.add_friendships(edges)
                            acked_edges.extend(edges)
                    # One more record reaches the disk, but the process
                    # dies mid-write: the caller never saw the ack, and
                    # only a prefix of the record's bytes survives.
                    store.wal.append_actions([TaggingAction(
                        user_id=0, item_id=int(base_items[0]),
                        tag="torn-tag", timestamp=9_999_999)])
                    tear_final_record(store.wal.path, keep_bytes=5)
                    crash = "torn final record"
            except (InjectedCrash, OSError) as exc:
                crash = repr(exc)
            finally:
                faults.reset()
            # Simulated kill: the store object (open WAL handle included)
            # is simply abandoned, never closed.
            del store

            # Ack gate, independent of recovery: every acknowledged
            # update must be in the surviving manifest's raw WAL segment
            # (or already in the base arena).
            manifest = read_manifest(directory)
            scan = scan_wal(directory / str(manifest["wal"]))
            durable_actions: List[TaggingAction] = []
            durable_edges: List[Tuple[int, int, float]] = []
            for record in scan.records:
                if record.kind == "actions":
                    durable_actions.extend(record.actions())
                elif record.kind == "friendships":
                    durable_edges.extend(record.friendships())
            durable_action_keys = {(a.user_id, a.item_id, a.tag)
                                   for a in durable_actions}
            durable_edge_keys = {(min(u, v), max(u, v))
                                 for u, v, _ in durable_edges}
            lost = [a for a in acked_actions
                    if (a.user_id, a.item_id, a.tag) not in base_action_keys
                    and (a.user_id, a.item_id, a.tag) not in durable_action_keys]
            lost += [e for e in acked_edges  # type: ignore[list-item]
                     if (min(e[0], e[1]), max(e[0], e[1])) not in base_edge_keys
                     and (min(e[0], e[1]), max(e[0], e[1])) not in durable_edge_keys]
            total_lost += len(lost)

            # Recover the directory the way a restarted process would.
            recovered = DurableStore.open(directory)
            recovery = recovered.recovery

            # Equivalence gate: the recovered store must answer exactly
            # like a dataset rebuilt from scratch from base + durable log.
            builder = SocialGraphBuilder(base.num_users)
            for u, v, w in base_edges:
                builder.add_edge(u, v, w)
            for u, v, w in durable_edges:
                builder.add_edge(u, v, w)
            fresh = Dataset.build(builder.build(),
                                  base_actions + durable_actions,
                                  name=base.name)
            fresh_online = _engine_with(
                fresh, ProximityConfig(measure=measure, cache_size=0), alpha)
            live_online = _engine_with(
                recovered.dataset,
                ProximityConfig(measure=measure, cache_size=0), alpha)
            served = _engine_with(
                recovered.dataset,
                ProximityConfig(measure=measure, materialize=True), alpha)
            served.proximity.build()
            scenario_mismatches = 0
            for algorithm in algorithms:
                baseline = [fresh_online.run(query, algorithm=algorithm)
                            for query in queries]
                observed_paths = (
                    ("online", [live_online.run(query, algorithm=algorithm)
                                for query in queries]),
                    ("materialized", [served.run(query, algorithm=algorithm)
                                      for query in queries]),
                    ("batched", served.run_batch(queries,
                                                 algorithm=algorithm)),
                )
                for path_name, observed in observed_paths:
                    for query, expected, result in zip(queries, baseline,
                                                       observed):
                        want = _result_signature(expected)
                        got = _result_signature(result)
                        if got != want:
                            scenario_mismatches += 1
                            all_mismatches.append({
                                "point": point,
                                "algorithm": algorithm,
                                "path": path_name,
                                "query": query.to_dict(),
                                "expected": want,
                                "got": got,
                            })
            recovered.close()
            scenario_rows.append({
                "point": point,
                "mode": mode,
                "crash": crash,
                "fired": crash is not None,
                "acked_actions": len(acked_actions),
                "acked_edges": len(acked_edges),
                "acked_lost": len(lost),
                "durable_records": len(scan.records),
                "records_replayed": recovery.records_replayed,
                "replay_ms": recovery.duration_seconds * 1000.0,
                "torn_tail_bytes": recovery.torn_tail_bytes,
                "strays_removed": len(recovery.strays_removed),
                "generation": recovered.generation,
                "epoch": recovery.epoch,
                "mismatches": scenario_mismatches,
            })

        # ------------------------------------------------------------- #
        # 2. Zero-downtime generation swap: queries keep answering while
        #    checkpoints fold, publish and rotate underneath them.
        # ------------------------------------------------------------- #
        swap_dir = scratch_dir / "swap"
        store = DurableStore.initialise(base, swap_dir)
        swap_engine = _engine_with(
            store.dataset, ProximityConfig(measure=measure, cache_size=0),
            alpha)
        swap_errors: List[str] = []
        swap_served = [0]
        stop = threading.Event()

        def _query_loop() -> None:
            while not stop.is_set():
                for query in queries:
                    try:
                        swap_engine.run(query, algorithm="exact")
                    except Exception as exc:  # noqa: BLE001 - verdict data
                        swap_errors.append(repr(exc))
                        return
                    swap_served[0] += 1

        query_thread = threading.Thread(target=_query_loop, daemon=True)
        query_thread.start()
        checkpoint_seconds = 0.0
        swap_checkpoints = 0
        for actions, edges in make_batches(np.random.default_rng(seed + 11)):
            store.updater.add_actions(actions)
            if edges:
                store.updater.add_friendships(edges)
            started = time.perf_counter()
            summary = store.checkpoint(force=True)
            checkpoint_seconds += time.perf_counter() - started
            swap_checkpoints += 1 if summary["published"] else 0
        stop.set()
        query_thread.join(timeout=30.0)
        swap = {
            "checkpoints": swap_checkpoints,
            "final_generation": store.generation,
            "checkpoint_ms": checkpoint_seconds * 1000.0,
            "queries_served": swap_served[0],
            "num_errors": len(swap_errors),
            "errors": swap_errors[:5],
        }
        store.close()

        # ------------------------------------------------------------- #
        # 3. Fsync-policy overhead vs a no-WAL updater on the same arena.
        # ------------------------------------------------------------- #
        baseline_arena = scratch_dir / "fsync-baseline.arena"
        build_arena(base, baseline_arena)
        plain_updater = DatasetUpdater(Dataset.from_arena(baseline_arena))
        baseline_seconds = 0.0
        for actions, edges in make_batches(np.random.default_rng(seed + 13)):
            started = time.perf_counter()
            plain_updater.add_actions(actions)
            if edges:
                plain_updater.add_friendships(edges)
            baseline_seconds += time.perf_counter() - started
        fsync_overhead: Dict[str, object] = {
            "no_wal_ms": baseline_seconds * 1000.0}
        always_dir = None
        for policy in FSYNC_POLICIES:
            directory = scratch_dir / f"fsync-{policy}"
            policy_store = DurableStore.initialise(
                base, directory,
                config=DurabilityConfig(directory=str(directory),
                                        wal_fsync=policy))
            policy_seconds = 0.0
            for actions, edges in make_batches(
                    np.random.default_rng(seed + 13)):
                started = time.perf_counter()
                policy_store.updater.add_actions(actions)
                if edges:
                    policy_store.updater.add_friendships(edges)
                policy_seconds += time.perf_counter() - started
            fsync_overhead[policy] = {
                "total_ms": policy_seconds * 1000.0,
                "overhead_vs_no_wal": (policy_seconds / baseline_seconds
                                       if baseline_seconds else 0.0),
                "fsyncs": policy_store.wal.stats()["fsyncs"],
                "records": policy_store.wal.stats()["records_appended"],
            }
            policy_store.close()
            if policy == "always":
                always_dir = directory

        # ------------------------------------------------------------- #
        # 4. Replay latency on a clean re-open of the "always" store.
        # ------------------------------------------------------------- #
        reopened = DurableStore.open(always_dir)
        replay = {
            "records_replayed": reopened.recovery.records_replayed,
            "replay_ms": reopened.recovery.duration_seconds * 1000.0,
            "actions_replayed": reopened.recovery.actions_replayed,
            "edges_replayed": reopened.recovery.edges_replayed,
        }
        reopened.close()

    all_fired = all(row["fired"] for row in scenario_rows)
    report["scenarios"] = scenario_rows
    report["acked_updates_lost"] = total_lost
    report["swap"] = swap
    report["fsync_overhead"] = fsync_overhead
    report["replay"] = replay
    report["equivalence"] = {
        "algorithms": list(algorithms),
        "paths": ["online", "materialized", "batched"],
        "queries_checked": len(queries) * len(algorithms) * 3
        * len(scenario_rows),
        "mismatches": all_mismatches[:10],
        "num_mismatches": len(all_mismatches),
        "all_faults_fired": all_fired,
        "swap_errors": len(swap_errors),
    }
    report["equivalent"] = (not all_mismatches and all_fired
                            and not swap_errors)
    report["memory"] = memory_summary()
    return report


def format_durability_report(report: Dict[str, object]) -> str:
    """Human-readable one-screen summary of a durability-suite report."""
    lines = [
        "durability chaos suite "
        f"({report['dataset']['num_users']} users, "  # type: ignore[index]
        f"{report['workload']['num_queries']} queries, "  # type: ignore[index]
        f"{len(report['scenarios'])} crash scenarios, "  # type: ignore[arg-type]
        f"fsync={report['workload']['wal_fsync']})",  # type: ignore[index]
    ]
    for row in report["scenarios"]:  # type: ignore[union-attr]
        verdict = "OK" if (row["fired"] and not row["acked_lost"]
                           and not row["mismatches"]) else "FAILED"
        lines.append(
            f"{row['point']:<24} acked {row['acked_actions']:>3}+"
            f"{row['acked_edges']:<2} lost {row['acked_lost']}"
            f" | replayed {row['records_replayed']:>2} rec"
            f" in {row['replay_ms']:.2f} ms"
            f" | gen {row['generation']} epoch {row['epoch']}"
            f" | {verdict}")
    swap = report["swap"]
    lines.append(
        f"generation swap   {swap['checkpoints']} checkpoints "  # type: ignore[index]
        f"in {swap['checkpoint_ms']:.1f} ms"  # type: ignore[index]
        f" | {swap['queries_served']} queries served concurrently, "  # type: ignore[index]
        f"{swap['num_errors']} errors")  # type: ignore[index]
    overhead = report["fsync_overhead"]
    lines.append(
        "fsync overhead    " + " | ".join(
            f"{policy} {overhead[policy]['overhead_vs_no_wal']:.2f}x"  # type: ignore[index]
            f" ({int(overhead[policy]['fsyncs'])} fsyncs)"  # type: ignore[index]
            for policy in ("off", "interval", "always"))
        + f" vs no-WAL {overhead['no_wal_ms']:.1f} ms")  # type: ignore[index]
    replay = report["replay"]
    lines.append(
        f"clean reopen      {replay['records_replayed']} records "  # type: ignore[index]
        f"({replay['actions_replayed']} actions, "  # type: ignore[index]
        f"{replay['edges_replayed']} edges) "  # type: ignore[index]
        f"replayed in {replay['replay_ms']:.2f} ms")  # type: ignore[index]
    lines.append(
        f"acked-update loss {report['acked_updates_lost']} across "
        f"{len(report['scenarios'])} scenarios")  # type: ignore[arg-type]
    lines.append(
        f"equivalence       {'OK' if report['equivalent'] else 'FAILED'} "
        f"({report['equivalence']['queries_checked']} checks vs fresh "  # type: ignore[index]
        f"rebuild, {report['equivalence']['num_mismatches']} mismatches)")  # type: ignore[index]
    lines.extend(_memory_line(report))
    return "\n".join(lines)


def _best_of_rounds(engine: SocialSearchEngine, queries: Sequence[Query],
                    rounds: int, algorithm: str = "exact") -> List[float]:
    """Per-query minimum latency (seconds) across ``rounds`` passes."""
    best = [float("inf")] * len(queries)
    for _ in range(max(1, rounds)):
        for position, query in enumerate(queries):
            started = time.perf_counter()
            engine.run(query, algorithm=algorithm)
            elapsed = time.perf_counter() - started
            if elapsed < best[position]:
                best[position] = elapsed
    return best


def _engine_with(dataset: Dataset, proximity: ProximityConfig,
                 alpha: float) -> SocialSearchEngine:
    return SocialSearchEngine(dataset, EngineConfig(
        algorithm="exact",
        scoring=ScoringConfig(alpha=alpha, vectorized=True),
        proximity=proximity,
    ))


def _timed(thunk) -> float:
    started = time.perf_counter()
    thunk()
    return time.perf_counter() - started


def format_proximity_report(report: Dict[str, object]) -> str:
    """Human-readable one-screen summary of a proximity-suite report."""
    cold = report["cold_seeker"]
    start = report["cold_start"]
    batched = report["batched"]
    lines = [
        "proximity materialization suite "
        f"({report['dataset']['num_users']} users, "  # type: ignore[index]
        f"{report['workload']['num_queries']} queries x "  # type: ignore[index]
        f"{report['workload']['rounds']} rounds, "  # type: ignore[index]
        f"measure={report['workload']['proximity']})",  # type: ignore[index]
        f"cold seeker   online p50 {cold['online']['p50_ms']:.3f} ms"  # type: ignore[index]
        f" | materialized p50 {cold['materialized']['p50_ms']:.3f} ms"  # type: ignore[index]
        f" | speedup {report['speedup_cold_seeker']:.2f}x",
        f"cold start    snapshot {start['snapshot_ms']:.2f} ms"  # type: ignore[index]
        f" | arena {start['arena_ms']:.2f} ms"  # type: ignore[index]
        f" | speedup {report['speedup_cold_start']:.2f}x",
        f"batched       sequential {batched['sequential_ms']:.2f} ms"  # type: ignore[index]
        f" | batched {batched['batched_ms']:.2f} ms"  # type: ignore[index]
        f" | speedup {report['speedup_batched']:.2f}x",
        f"offline build {cold['offline_build_seconds'] * 1000.0:.1f} ms"  # type: ignore[index]
        f" for {cold['rows_built']} rows"  # type: ignore[index]
        f" ({cold['shard_bytes']} bytes)",  # type: ignore[index]
        f"equivalence   {'OK' if report['equivalent'] else 'FAILED'} "
        f"({report['equivalence']['queries_checked']} checks, "  # type: ignore[index]
        f"{report['equivalence']['num_mismatches']} mismatches)",  # type: ignore[index]
    ]
    lines.extend(_memory_line(report))
    return "\n".join(lines)


def _memory_line(report: Dict[str, object]) -> List[str]:
    """The peak-memory footer every suite formatter appends."""
    memory = report.get("memory")
    if not memory:
        return []
    return [
        f"memory        peak rss {memory['peak_rss_mb']:.1f} MB"  # type: ignore[index]
        f" | current rss {memory['current_rss_mb']:.1f} MB"  # type: ignore[index]
    ]


def write_report(report: Dict[str, object], output: PathLike) -> Path:
    """Persist the report as pretty-printed JSON; returns the path."""
    path = Path(output)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def format_report(report: Dict[str, object]) -> str:
    """Human-readable one-screen summary of a suite report."""
    lines = [
        "top-k benchmark suite "
        f"({report['dataset']['num_users']} users, "  # type: ignore[index]
        f"{report['workload']['num_queries']} queries x "  # type: ignore[index]
        f"{report['workload']['rounds']} rounds)",  # type: ignore[index]
        f"{'algorithm':<14} {'mode':<11} {'p50 ms':>8} {'p95 ms':>8} {'qps':>9}",
    ]
    for entry in report["entries"]:  # type: ignore[union-attr]
        lines.append(
            f"{entry['algorithm']:<14} {entry['mode']:<11} "
            f"{entry['p50_ms']:>8.3f} {entry['p95_ms']:>8.3f} {entry['qps']:>9.1f}"
        )
    lines.append(
        f"vectorized exact speedup vs scalar: "
        f"{report['speedup_vectorized_exact']:.2f}x"
    )
    instrumentation = report.get("instrumentation")
    if instrumentation:
        lines.append(
            "tracing overhead (exact): "
            f"off {instrumentation['p50_off_ms']:.3f} ms"  # type: ignore[index]
            f" | disabled-after "
            f"{instrumentation['p50_disabled_check_ms']:.3f} ms"  # type: ignore[index]
            f" ({instrumentation['overhead_disabled']:.3f}x)"  # type: ignore[index]
            f" | unsampled {instrumentation['p50_unsampled_ms']:.3f} ms"  # type: ignore[index]
            f" ({instrumentation['overhead_unsampled']:.3f}x)"  # type: ignore[index]
            f" | traced {instrumentation['p50_traced_ms']:.3f} ms"  # type: ignore[index]
            f" ({instrumentation['overhead_traced']:.3f}x)")  # type: ignore[index]
        breakdown = instrumentation["stage_breakdown"]  # type: ignore[index]
        for name in sorted(breakdown,  # type: ignore[arg-type]
                           key=lambda entry: -breakdown[entry]["total_ms"]):  # type: ignore[index]
            stage = breakdown[name]  # type: ignore[index]
            lines.append(f"  stage {name:<22} {stage['count']:>6.0f} spans "
                         f"{stage['total_ms']:>10.3f} ms total "
                         f"{stage['mean_ms']:>8.4f} ms mean")
    lines.extend(_memory_line(report))
    return "\n".join(lines)
