"""Ranking-quality metrics.

All metrics operate on a ranked list of item ids and a relevance judgement,
which is either a set of relevant items (binary relevance, used with the
holdout ground truth) or a reference ranking (used when comparing an
approximate algorithm against the exact baseline).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Sequence, Set

from ..errors import EvaluationError


def _as_set(relevant: Iterable[int]) -> Set[int]:
    return set(int(item) for item in relevant)


def precision_at_k(ranking: Sequence[int], relevant: Iterable[int], k: int) -> float:
    """Fraction of the top-``k`` results that are relevant."""
    if k < 1:
        raise EvaluationError(f"k must be >= 1, got {k}")
    relevant_set = _as_set(relevant)
    top = list(ranking)[:k]
    if not top:
        return 0.0
    hits = sum(1 for item in top if item in relevant_set)
    return hits / float(k)


def recall_at_k(ranking: Sequence[int], relevant: Iterable[int], k: int) -> float:
    """Fraction of the relevant items that appear in the top-``k``."""
    if k < 1:
        raise EvaluationError(f"k must be >= 1, got {k}")
    relevant_set = _as_set(relevant)
    if not relevant_set:
        return 0.0
    top = set(list(ranking)[:k])
    return len(top & relevant_set) / float(len(relevant_set))


def average_precision(ranking: Sequence[int], relevant: Iterable[int]) -> float:
    """Mean of precision@i over the ranks i holding a relevant item."""
    relevant_set = _as_set(relevant)
    if not relevant_set:
        return 0.0
    hits = 0
    total = 0.0
    for index, item in enumerate(ranking, start=1):
        if item in relevant_set:
            hits += 1
            total += hits / float(index)
    if hits == 0:
        return 0.0
    return total / float(min(len(relevant_set), len(ranking)))


def ndcg_at_k(ranking: Sequence[int], relevance: Mapping[int, float], k: int) -> float:
    """Normalised discounted cumulative gain with graded relevance.

    ``relevance`` maps item ids to non-negative gains; missing items have
    gain zero.  The ideal ordering is computed from the same mapping.
    """
    if k < 1:
        raise EvaluationError(f"k must be >= 1, got {k}")
    gains = {int(item): float(gain) for item, gain in relevance.items() if gain > 0.0}
    if not gains:
        return 0.0
    dcg = 0.0
    for index, item in enumerate(list(ranking)[:k], start=1):
        gain = gains.get(item, 0.0)
        if gain > 0.0:
            dcg += (2.0 ** gain - 1.0) / math.log2(index + 1.0)
    ideal_gains = sorted(gains.values(), reverse=True)[:k]
    idcg = sum((2.0 ** gain - 1.0) / math.log2(index + 1.0)
               for index, gain in enumerate(ideal_gains, start=1))
    if idcg <= 0.0:
        return 0.0
    return dcg / idcg


def binary_ndcg_at_k(ranking: Sequence[int], relevant: Iterable[int], k: int) -> float:
    """NDCG with binary relevance (every relevant item has gain 1)."""
    return ndcg_at_k(ranking, {item: 1.0 for item in _as_set(relevant)}, k)


def reciprocal_rank(ranking: Sequence[int], relevant: Iterable[int]) -> float:
    """1 / rank of the first relevant result (0 when none appears)."""
    relevant_set = _as_set(relevant)
    for index, item in enumerate(ranking, start=1):
        if item in relevant_set:
            return 1.0 / index
    return 0.0


def overlap_at_k(ranking: Sequence[int], reference: Sequence[int], k: int) -> float:
    """Set overlap between two top-``k`` lists (the paper-family 'accuracy')."""
    if k < 1:
        raise EvaluationError(f"k must be >= 1, got {k}")
    top = set(list(ranking)[:k])
    ref = set(list(reference)[:k])
    if not ref:
        return 1.0 if not top else 0.0
    return len(top & ref) / float(min(k, len(ref)))


def kendall_tau(ranking_a: Sequence[int], ranking_b: Sequence[int]) -> float:
    """Kendall rank correlation over the items common to both rankings.

    Returns a value in ``[-1, 1]``; 1 means identical relative order.  Pairs
    involving items absent from either ranking are ignored.  When fewer than
    two common items exist the rankings are trivially concordant (1.0).
    """
    positions_a = {item: index for index, item in enumerate(ranking_a)}
    positions_b = {item: index for index, item in enumerate(ranking_b)}
    common = [item for item in ranking_a if item in positions_b]
    n = len(common)
    if n < 2:
        return 1.0
    concordant = 0
    discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            a_order = positions_a[common[i]] - positions_a[common[j]]
            b_order = positions_b[common[i]] - positions_b[common[j]]
            product = a_order * b_order
            if product > 0:
                concordant += 1
            elif product < 0:
                discordant += 1
    total = n * (n - 1) / 2
    return (concordant - discordant) / total


def rank_biased_overlap(ranking_a: Sequence[int], ranking_b: Sequence[int],
                        persistence: float = 0.9) -> float:
    """Rank-biased overlap (truncated): top-weighted similarity in [0, 1]."""
    if not 0.0 < persistence < 1.0:
        raise EvaluationError(f"persistence must be in (0, 1), got {persistence}")
    depth = min(len(ranking_a), len(ranking_b))
    if depth == 0:
        return 1.0 if not ranking_a and not ranking_b else 0.0
    seen_a: Set[int] = set()
    seen_b: Set[int] = set()
    score = 0.0
    weight_total = 0.0
    for d in range(1, depth + 1):
        seen_a.add(ranking_a[d - 1])
        seen_b.add(ranking_b[d - 1])
        agreement = len(seen_a & seen_b) / float(d)
        weight = persistence ** (d - 1)
        score += agreement * weight
        weight_total += weight
    return score / weight_total


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty iterable)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def summarize_metric(per_query_values: Iterable[float]) -> Dict[str, float]:
    """Mean / min / max summary of a per-query metric."""
    values = list(per_query_values)
    if not values:
        return {"mean": 0.0, "min": 0.0, "max": 0.0, "count": 0}
    return {
        "mean": sum(values) / len(values),
        "min": min(values),
        "max": max(values),
        "count": len(values),
    }
