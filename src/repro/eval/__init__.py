"""Evaluation framework: metrics, timing, experiment runner, result tables."""

from .metrics import (
    average_precision,
    binary_ndcg_at_k,
    kendall_tau,
    mean,
    ndcg_at_k,
    overlap_at_k,
    precision_at_k,
    rank_biased_overlap,
    recall_at_k,
    reciprocal_rank,
    summarize_metric,
)
from .timing import (
    LatencyRecorder,
    MemoryMeter,
    Timer,
    current_rss_bytes,
    measure_in_subprocess,
    memory_summary,
    peak_rss_bytes,
)
from .runner import AlgorithmReport, ExperimentRunner, WorkloadReport, sweep
from .bench import (
    format_anytime_report,
    format_proximity_report,
    format_report,
    format_updates_report,
    run_anytime_suite,
    run_proximity_suite,
    run_topk_suite,
    run_updates_suite,
    write_report,
)
from .quality import quality_summary, result_signature
from .scale import format_scale_report, run_scale_suite
from .tables import format_series, format_table, select_columns
from .plots import ascii_bar_chart, ascii_line_chart, series_from_rows

__all__ = [
    "precision_at_k",
    "recall_at_k",
    "average_precision",
    "ndcg_at_k",
    "binary_ndcg_at_k",
    "reciprocal_rank",
    "overlap_at_k",
    "kendall_tau",
    "rank_biased_overlap",
    "mean",
    "summarize_metric",
    "Timer",
    "LatencyRecorder",
    "MemoryMeter",
    "current_rss_bytes",
    "measure_in_subprocess",
    "memory_summary",
    "peak_rss_bytes",
    "ExperimentRunner",
    "AlgorithmReport",
    "WorkloadReport",
    "sweep",
    "run_anytime_suite",
    "run_proximity_suite",
    "run_scale_suite",
    "run_topk_suite",
    "run_updates_suite",
    "write_report",
    "format_anytime_report",
    "format_proximity_report",
    "format_report",
    "format_scale_report",
    "format_updates_report",
    "quality_summary",
    "result_signature",
    "format_table",
    "format_series",
    "select_columns",
    "ascii_bar_chart",
    "ascii_line_chart",
    "series_from_rows",
]
