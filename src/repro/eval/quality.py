"""Quality metering for approximate serving (anytime / landmark answers).

The anytime and landmark tiers trade accuracy for latency; this module
measures what the trade actually buys.  Everything compares an approximate
:class:`~repro.core.query.QueryResult` against the exact answer for the
same query, delegating the metric math to :mod:`repro.eval.metrics`:

* :func:`recall_at_k` — fraction of the exact top-k the approximate answer
  returned (the headline serving-quality number, gated in CI);
* :func:`rank_correlation` — Kendall tau between the exact and approximate
  rankings over their common items;
* :func:`quality_summary` — the aggregate block a bench suite emits for a
  whole workload (mean/min recall, mean correlation, exact fraction and
  the measured admissible error bounds).

:func:`result_signature` is the strict bit-identity form used by the
equivalence gates — rankings, scores *and* access accounting — shared by
every bench suite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.query import QueryResult
from .metrics import kendall_tau as _kendall_tau
from .metrics import recall_at_k as _recall_at_k

__all__ = [
    "recall_at_k",
    "rank_correlation",
    "result_signature",
    "quality_summary",
]


def _ranking(result: QueryResult) -> List[int]:
    return [item.item_id for item in result.items]


def result_signature(result: QueryResult) -> Dict[str, object]:
    """Comparable identity of a query answer: ranking, scores, accounting."""
    return {
        "items": [(item.item_id, item.score) for item in result.items],
        "accounting": result.accounting.to_dict(),
    }


def recall_at_k(exact: QueryResult, approx: QueryResult,
                k: Optional[int] = None) -> float:
    """Fraction of the exact top-k items present in the approximate top-k.

    ``k`` defaults to the exact answer's length.  An empty exact answer
    has nothing to miss, so recall is 1.0 by convention.
    """
    if k is None:
        k = len(exact.items)
    relevant = _ranking(exact)[:k]
    if not relevant:
        return 1.0
    return _recall_at_k(_ranking(approx), relevant, k)


def rank_correlation(exact: QueryResult, approx: QueryResult) -> float:
    """Kendall tau between the exact and approximate rankings, in [-1, 1].

    Measures ordering agreement over the items both answers returned;
    items the approximate answer dropped are :func:`recall_at_k`'s job.
    """
    return _kendall_tau(_ranking(exact), _ranking(approx))


def quality_summary(exact_results: Sequence[QueryResult],
                    approx_results: Sequence[QueryResult],
                    k: Optional[int] = None) -> Dict[str, float]:
    """Aggregate quality of a workload served approximately vs exactly."""
    if len(exact_results) != len(approx_results):
        raise ValueError(
            f"workload mismatch: {len(exact_results)} exact vs "
            f"{len(approx_results)} approximate results")
    recalls: List[float] = []
    correlations: List[float] = []
    bounds: List[float] = []
    exact_answers = 0
    for expected, observed in zip(exact_results, approx_results):
        recalls.append(recall_at_k(expected, observed, k=k))
        correlations.append(rank_correlation(expected, observed))
        if observed.is_exact:
            exact_answers += 1
        if observed.error_bound is not None:
            bounds.append(float(observed.error_bound))
    count = len(recalls) or 1
    return {
        "queries": float(len(recalls)),
        "recall_mean": sum(recalls) / count,
        "recall_min": min(recalls) if recalls else 1.0,
        "rank_correlation_mean": sum(correlations) / count,
        "exact_fraction": exact_answers / count,
        "error_bound_mean": (sum(bounds) / len(bounds)) if bounds else 0.0,
        "error_bound_max": max(bounds) if bounds else 0.0,
    }
