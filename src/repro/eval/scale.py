"""Corpus-scale sweep: out-of-core builds, RSS ceilings, operating points.

The paper's scalability story is a curve, not a number: how large a corpus
can one box build and serve before latency or memory gives out?  This suite
measures exactly that:

* for each corpus size it **builds the arena out-of-core** (streaming
  generator + chunked writer, :mod:`repro.storage.arena_stream`) in a forked
  child so the build's peak RSS is measured in isolation, then **serves** a
  query workload from the memory-mapped arena in a second child (cold-start
  time, p50/p95, serving peak RSS);
* at one comparison size it builds the same corpus with the classic
  in-memory :func:`build_dataset` + :func:`build_arena` path and reports the
  peak-RSS ratio between the two builders — the headline out-of-core win;
* at a small size it runs the **equivalence gate**: the streaming arena must
  be byte-identical to the in-memory one and both engines must answer the
  same queries identically;
* when a latency target (and optionally an RSS ceiling) is given, it
  **binary-searches the largest corpus** that still meets the target,
  bracketed by the sweep measurements — the operating point of this box.

Queries are sampled directly from the arena's action arrays
(activity-weighted seekers, popularity-weighted tags) instead of going
through :class:`QueryWorkloadGenerator`, whose per-user profile scans would
materialise the whole corpus in Python dicts and defeat the measurement.
"""

from __future__ import annotations

import hashlib
import platform
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import EngineConfig, ProximityConfig, ScoringConfig
from ..core.engine import SocialSearchEngine
from ..core.query import Query
from ..storage.arena import Arena, build_arena
from ..storage.arena_stream import DEFAULT_CHUNK_SIZE, build_arena_streaming
from ..storage.dataset import Dataset
from ..workload.datasets import build_dataset, scaled_config
from ..workload.sampler import dataset_workload, sample_workload
from .bench import _result_signature
from .timing import Timer, measure_in_subprocess, memory_summary

#: default sweep (the last entry is the headline out-of-core size).
DEFAULT_SIZES = (2500, 10000, 25000, 50000, 100000)

_MB = 1024.0 * 1024.0


def _engine_for(dataset: Dataset) -> SocialSearchEngine:
    return SocialSearchEngine(dataset, EngineConfig(
        algorithm="social-first",
        scoring=ScoringConfig(alpha=0.5, vectorized=True),
        proximity=ProximityConfig(measure="shortest-path", cache_size=256),
    ))


def arena_workload(arena: Arena, num_queries: int, k: int,
                   seed: int = 3, tags_per_query: float = 2.0) -> List[Query]:
    """Sample a query workload straight from the arena's action arrays.

    Mirrors the default workload semantics — seekers drawn proportionally to
    their activity, tags proportionally to popularity, a Poisson number of
    distinct tags per query — using only ``np.bincount`` over the mapped
    action log, so generating queries for a 100k-user corpus touches no
    per-user Python structures.  The draw itself lives in
    :func:`~repro.workload.sampler.sample_workload`; this wrapper only
    computes the histograms from the mapped arrays.
    """
    num_users = int(arena.meta["num_users"])
    tag_table = [str(tag) for tag in arena.meta["tags"]]
    activity = np.bincount(np.asarray(arena.array("actions.user_ids")),
                           minlength=num_users).astype(np.float64)
    popularity = np.bincount(np.asarray(arena.array("actions.tag_ids")),
                             minlength=len(tag_table)).astype(np.float64)
    return sample_workload(tag_table, activity, popularity,
                           num_queries=num_queries, k=k, seed=seed,
                           tags_per_query=tags_per_query)


def _percentile_ms(samples: List[float], fraction: float) -> float:
    ordered = sorted(samples)
    rank = min(len(ordered) - 1,
               max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank] * 1000.0


def _serve_from_arena(arena_path: Path, num_queries: int, k: int,
                      rounds: int) -> Dict[str, float]:
    """Cold-start + steady-state serving numbers for one arena (runs in a
    forked child so its RSS growth is attributable)."""
    with Timer() as cold:
        dataset = Dataset.from_arena(arena_path)
        engine = _engine_for(dataset)
    queries = arena_workload(Arena.open(arena_path), num_queries, k)
    for query in queries:  # warm-up: proximity cache, numpy buffers
        engine.run(query)
    samples: List[float] = []
    for _ in range(rounds):
        for query in queries:
            started = time.perf_counter()
            engine.run(query)
            samples.append(time.perf_counter() - started)
    return {
        "cold_start_ms": cold.elapsed_milliseconds,
        "p50_ms": _percentile_ms(samples, 0.5),
        "p95_ms": _percentile_ms(samples, 0.95),
        "mean_ms": sum(samples) / len(samples) * 1000.0,
        "queries": float(len(queries)),
        "rounds": float(rounds),
    }


def _measure_size(num_users: int, workdir: Path, chunk_size: int,
                  num_queries: int, k: int, rounds: int, seed: int
                  ) -> Dict[str, object]:
    """Streaming build + serve measurements for one corpus size."""
    config = scaled_config(num_users, seed=seed)
    arena_path = workdir / f"scaled-{num_users}.arena"
    _, build_peak, build_seconds = measure_in_subprocess(
        lambda: str(build_arena_streaming(config, arena_path,
                                          chunk_size=chunk_size)))
    arena = Arena.open(arena_path)
    stored_actions = int(arena.meta["num_actions"])
    serve, serve_peak, _ = measure_in_subprocess(
        lambda: _serve_from_arena(arena_path, num_queries, k, rounds))
    return {
        "num_users": num_users,
        "config": {
            "num_items": config.num_items,
            "num_tags": config.num_tags,
            "num_actions": config.num_actions,
        },
        "build": {
            "streaming_seconds": build_seconds,
            "streaming_peak_rss_mb": build_peak / _MB,
            "arena_mb": arena_path.stat().st_size / _MB,
            "actions_stored": stored_actions,
        },
        "serve": dict(serve, serve_peak_rss_mb=serve_peak / _MB),
    }


def _entry_passes(entry: Dict[str, object], target_p50_ms: Optional[float],
                  rss_ceiling_mb: Optional[float]) -> bool:
    serve = entry["serve"]  # type: ignore[index]
    build = entry["build"]  # type: ignore[index]
    if target_p50_ms is not None and serve["p50_ms"] > target_p50_ms:
        return False
    if rss_ceiling_mb is not None:
        peak = max(build["streaming_peak_rss_mb"], serve["serve_peak_rss_mb"])
        if peak > rss_ceiling_mb:
            return False
    return True


def _equivalence_gate(num_users: int, chunk_sizes: Sequence[int],
                      workdir: Path, num_queries: int, k: int,
                      seed: int) -> Dict[str, object]:
    """Byte-level and answer-level identity of streaming vs in-memory."""
    config = scaled_config(num_users, seed=seed)
    dataset = build_dataset(config)
    reference_path = workdir / "equivalence-reference.arena"
    build_arena(dataset, reference_path)
    reference_digest = hashlib.sha256(
        reference_path.read_bytes()).hexdigest()
    bytes_identical = True
    digests: Dict[str, str] = {"in_memory": reference_digest}
    last_stream_path = reference_path
    for chunk in chunk_sizes:
        stream_path = workdir / f"equivalence-stream-{chunk}.arena"
        build_arena_streaming(config, stream_path, chunk_size=chunk)
        digest = hashlib.sha256(stream_path.read_bytes()).hexdigest()
        digests[f"stream_chunk_{chunk}"] = digest
        if digest != reference_digest:
            bytes_identical = False
        last_stream_path = stream_path

    queries = dataset_workload(dataset, num_queries=num_queries, k=k, seed=3)
    memory_engine = _engine_for(dataset)
    arena_engine = _engine_for(Dataset.from_arena(last_stream_path))
    mismatches = 0
    for query in queries:
        expected = _result_signature(memory_engine.run(query))
        got = _result_signature(arena_engine.run(query))
        if expected != got:
            mismatches += 1
    return {
        "num_users": num_users,
        "chunk_sizes": list(chunk_sizes),
        "digests": digests,
        "arena_bytes_identical": bytes_identical,
        "queries_checked": len(queries),
        "query_mismatches": mismatches,
        "query_results_identical": mismatches == 0,
    }


def _operating_point(entries: List[Dict[str, object]], workdir: Path,
                     chunk_size: int, num_queries: int, k: int, rounds: int,
                     seed: int, target_p50_ms: Optional[float],
                     rss_ceiling_mb: Optional[float],
                     max_probes: int) -> Dict[str, object]:
    """Binary-search the largest corpus meeting the latency/RSS targets.

    The sweep entries bracket the answer; each probe is a full streaming
    build + serve measurement at the midpoint size.
    """
    passing = [entry for entry in entries
               if _entry_passes(entry, target_p50_ms, rss_ceiling_mb)]
    failing = [entry for entry in entries
               if not _entry_passes(entry, target_p50_ms, rss_ceiling_mb)]
    result: Dict[str, object] = {
        "target_p50_ms": target_p50_ms,
        "rss_ceiling_mb": rss_ceiling_mb,
        "probes": [],
    }
    if not passing:
        result["max_users"] = 0
        result["note"] = "no sweep size met the targets"
        return result
    low = max(int(entry["num_users"]) for entry in passing)  # type: ignore[arg-type]
    failing_above = [int(entry["num_users"]) for entry in failing  # type: ignore[arg-type]
                     if int(entry["num_users"]) > low]  # type: ignore[arg-type]
    if not failing_above:
        result["max_users"] = low
        result["note"] = ("largest sweep size met the targets; "
                          "the true limit lies beyond the sweep")
        return result
    high = min(failing_above)
    probes: List[Dict[str, object]] = []
    for _ in range(max_probes):
        if high - low <= max(low // 10, 1):
            break
        mid = (low + high) // 2
        entry = _measure_size(mid, workdir, chunk_size, num_queries, k,
                              rounds, seed)
        passed = _entry_passes(entry, target_p50_ms, rss_ceiling_mb)
        probes.append({
            "num_users": mid,
            "p50_ms": entry["serve"]["p50_ms"],  # type: ignore[index]
            "build_peak_rss_mb":
                entry["build"]["streaming_peak_rss_mb"],  # type: ignore[index]
            "serve_peak_rss_mb":
                entry["serve"]["serve_peak_rss_mb"],  # type: ignore[index]
            "passed": passed,
        })
        if passed:
            low = mid
        else:
            high = mid
    result["max_users"] = low
    result["bracket"] = [low, high]
    result["probes"] = probes
    return result


def run_scale_suite(sizes: Sequence[int] = DEFAULT_SIZES,
                    num_queries: int = 25, k: int = 10, rounds: int = 3,
                    chunk_size: int = DEFAULT_CHUNK_SIZE, seed: int = 23,
                    equivalence_users: int = 2500,
                    equivalence_chunk_sizes: Sequence[int] = (7, 4096),
                    compare_users: Optional[int] = None,
                    target_p50_ms: Optional[float] = None,
                    rss_ceiling_mb: Optional[float] = None,
                    max_probes: int = 4,
                    workdir: Optional[Path] = None) -> Dict[str, object]:
    """Run the corpus-scale suite; returns the JSON report.

    ``compare_users`` (default: the largest sweep size) selects where the
    in-memory builder is run for the peak-RSS comparison; ``target_p50_ms``
    / ``rss_ceiling_mb`` enable the operating-point binary search.
    """
    sizes = sorted(set(int(size) for size in sizes))
    if not sizes:
        raise ValueError("sizes must not be empty")
    if compare_users is None:
        compare_users = sizes[-1]
    # The gate needs a corpus small enough to build in memory twice; never
    # exceed the sweep itself.
    equivalence_users = min(equivalence_users, sizes[-1])

    scratch: Optional[tempfile.TemporaryDirectory] = None
    if workdir is None:
        scratch = tempfile.TemporaryDirectory(prefix="repro-scale-")
        workdir = Path(scratch.name)
    else:
        workdir = Path(workdir)
        workdir.mkdir(parents=True, exist_ok=True)
    try:
        report: Dict[str, object] = {
            "suite": "scale",
            "workload": {
                "sizes": list(sizes),
                "num_queries": num_queries,
                "k": k,
                "rounds": rounds,
                "chunk_size": chunk_size,
                "seed": seed,
            },
            "platform": {"python": platform.python_version(),
                         "machine": platform.machine()},
        }

        entries = [
            _measure_size(size, workdir, chunk_size, num_queries, k, rounds,
                          seed)
            for size in sizes
        ]
        report["entries"] = entries

        # In-memory comparison build at the chosen size: same corpus, the
        # classic build_dataset -> build_arena path, isolated fork.
        compare_config = scaled_config(compare_users, seed=seed)
        compare_path = workdir / f"inmemory-{compare_users}.arena"
        _, inmem_peak, inmem_seconds = measure_in_subprocess(
            lambda: str(build_arena(build_dataset(compare_config),
                                    compare_path)))
        stream_entry = next(
            (entry for entry in entries
             if int(entry["num_users"]) == compare_users), None)  # type: ignore[arg-type]
        if stream_entry is None:
            stream_entry = _measure_size(compare_users, workdir, chunk_size,
                                         num_queries, k, rounds, seed)
        stream_peak_mb = \
            stream_entry["build"]["streaming_peak_rss_mb"]  # type: ignore[index]
        report["memory_comparison"] = {
            "num_users": compare_users,
            "in_memory_build_peak_rss_mb": inmem_peak / _MB,
            "in_memory_build_seconds": inmem_seconds,
            "streaming_build_peak_rss_mb": stream_peak_mb,
            "streaming_build_seconds":
                stream_entry["build"]["streaming_seconds"],  # type: ignore[index]
            "rss_ratio": (inmem_peak / _MB) / max(stream_peak_mb, 1e-9),
        }

        gate = _equivalence_gate(equivalence_users, equivalence_chunk_sizes,
                                 workdir, num_queries, k, seed)
        report["equivalence"] = gate
        report["equivalent"] = bool(gate["arena_bytes_identical"]
                                    and gate["query_results_identical"])

        if target_p50_ms is not None or rss_ceiling_mb is not None:
            report["operating_point"] = _operating_point(
                entries, workdir, chunk_size, num_queries, k, rounds, seed,
                target_p50_ms, rss_ceiling_mb, max_probes)
        else:
            report["operating_point"] = None

        report["memory"] = memory_summary()
        return report
    finally:
        if scratch is not None:
            scratch.cleanup()


def format_scale_report(report: Dict[str, object]) -> str:
    """Human-readable one-screen summary of a scale-suite report."""
    workload = report["workload"]
    lines = [
        "corpus scale suite "
        f"(sizes {', '.join(str(s) for s in workload['sizes'])}; "  # type: ignore[index]
        f"{workload['num_queries']} queries x "  # type: ignore[index]
        f"{workload['rounds']} rounds, "  # type: ignore[index]
        f"chunk {workload['chunk_size']})",  # type: ignore[index]
        f"{'users':>8} {'build s':>9} {'build MB':>9} {'arena MB':>9} "
        f"{'cold ms':>9} {'p50 ms':>8} {'p95 ms':>8} {'serve MB':>9}",
    ]
    for entry in report["entries"]:  # type: ignore[union-attr]
        build = entry["build"]
        serve = entry["serve"]
        lines.append(
            f"{entry['num_users']:>8} {build['streaming_seconds']:>9.1f} "
            f"{build['streaming_peak_rss_mb']:>9.1f} "
            f"{build['arena_mb']:>9.1f} {serve['cold_start_ms']:>9.1f} "
            f"{serve['p50_ms']:>8.3f} {serve['p95_ms']:>8.3f} "
            f"{serve['serve_peak_rss_mb']:>9.1f}")
    comparison = report["memory_comparison"]
    lines.append(
        f"memory        in-memory build "
        f"{comparison['in_memory_build_peak_rss_mb']:.1f} MB"  # type: ignore[index]
        f" vs streaming {comparison['streaming_build_peak_rss_mb']:.1f} MB"  # type: ignore[index]
        f" at {comparison['num_users']} users"  # type: ignore[index]
        f" -> {comparison['rss_ratio']:.1f}x less resident memory")  # type: ignore[index]
    gate = report["equivalence"]
    lines.append(
        f"equivalence   {'OK' if report['equivalent'] else 'FAILED'} "
        f"(bytes {'identical' if gate['arena_bytes_identical'] else 'DIFFER'}"  # type: ignore[index]
        f" across chunks {gate['chunk_sizes']}, "  # type: ignore[index]
        f"{gate['queries_checked']} queries, "  # type: ignore[index]
        f"{gate['query_mismatches']} mismatches)")  # type: ignore[index]
    point = report.get("operating_point")
    if point:
        ceiling = point.get("rss_ceiling_mb")  # type: ignore[union-attr]
        target = point.get("target_p50_ms")  # type: ignore[union-attr]
        constraints = " + ".join(
            part for part in (
                f"p50 <= {target:.1f} ms" if target is not None else None,
                f"rss <= {ceiling:.0f} MB" if ceiling is not None else None)
            if part)
        lines.append(
            f"operating pt  {point['max_users']} users under {constraints}"  # type: ignore[index]
            f" ({len(point['probes'])} probes)")  # type: ignore[index]
        if point.get("note"):  # type: ignore[union-attr]
            lines.append(f"              note: {point['note']}")  # type: ignore[index]
    memory = report.get("memory")
    if memory:
        lines.append(
            f"suite memory  peak rss {memory['peak_rss_mb']:.1f} MB"  # type: ignore[index]
            f" | current rss {memory['current_rss_mb']:.1f} MB")  # type: ignore[index]
    return "\n".join(lines)


__all__ = ["DEFAULT_SIZES", "arena_workload", "format_scale_report",
           "run_scale_suite"]
