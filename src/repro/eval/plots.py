"""ASCII charts for experiment series.

The benchmark harness prints its figures as plain result rows; these helpers
additionally render a rough line/bar chart in monospace text, which is often
enough to eyeball a trend in a CI log without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..errors import EvaluationError


def _format_number(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.3g}"


def ascii_bar_chart(values: Mapping[str, float], width: int = 40,
                    title: Optional[str] = None) -> str:
    """Render a horizontal bar chart of label → value.

    Bars are scaled to the maximum value; zero/negative values render as an
    empty bar.
    """
    if width < 1:
        raise EvaluationError(f"width must be >= 1, got {width}")
    lines: List[str] = []
    if title:
        lines.append(title)
    if not values:
        lines.append("(no data)")
        return "\n".join(lines)
    peak = max(values.values())
    label_width = max(len(str(label)) for label in values)
    for label, value in values.items():
        if peak > 0 and value > 0:
            filled = max(1, int(round(width * value / peak)))
        else:
            filled = 0
        bar = "#" * filled
        lines.append(f"{str(label).ljust(label_width)} | {bar} {_format_number(value)}")
    return "\n".join(lines)


def ascii_line_chart(series: Mapping[str, Sequence[tuple]], width: int = 50,
                     height: int = 12, title: Optional[str] = None) -> str:
    """Render one or more ``(x, y)`` series as a character grid.

    Each series gets its own marker character.  Axes are scaled to the union
    of all points; ties on a grid cell keep the first series' marker.
    """
    if width < 2 or height < 2:
        raise EvaluationError("width and height must both be >= 2")
    points = [(x, y) for entries in series.values() for x, y in entries]
    lines: List[str] = []
    if title:
        lines.append(title)
    if not points:
        lines.append("(no data)")
        return "\n".join(lines)
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x@%&$"
    legend: Dict[str, str] = {}
    for index, (name, entries) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        legend[name] = marker
        for x, y in entries:
            column = int(round((x - x_low) / x_span * (width - 1)))
            row = int(round((y - y_low) / y_span * (height - 1)))
            cell_row = height - 1 - row
            if grid[cell_row][column] == " ":
                grid[cell_row][column] = marker

    top_label = _format_number(y_high)
    bottom_label = _format_number(y_low)
    gutter = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label.rjust(gutter)
        elif row_index == height - 1:
            label = bottom_label.rjust(gutter)
        else:
            label = " " * gutter
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * gutter + " +" + "-" * width)
    lines.append(" " * gutter + f"  {_format_number(x_low)}"
                 + " " * max(1, width - len(_format_number(x_low))
                             - len(_format_number(x_high)))
                 + _format_number(x_high))
    lines.append("legend: " + ", ".join(f"{marker}={name}"
                                        for name, marker in legend.items()))
    return "\n".join(lines)


def series_from_rows(rows: Sequence[Mapping[str, object]], x_column: str,
                     y_column: str, group_column: str = "algorithm"
                     ) -> Dict[str, List[tuple]]:
    """Convert flat result rows into the series mapping the charts consume."""
    series: Dict[str, List[tuple]] = {}
    for row in rows:
        try:
            x = float(row[x_column])
            y = float(row[y_column])
        except (KeyError, TypeError, ValueError) as exc:
            raise EvaluationError(
                f"row is missing numeric columns {x_column!r}/{y_column!r}: {exc}"
            ) from exc
        series.setdefault(str(row.get(group_column, "")), []).append((x, y))
    for entries in series.values():
        entries.sort(key=lambda point: point[0])
    return series
