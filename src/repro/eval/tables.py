"""Plain-text result tables.

The benchmark harness prints the same rows the paper-style tables and figure
series would contain.  Formatting is deliberately dependency-free (fixed
width columns, markdown-ish) so output is readable in CI logs and can be
diffed between runs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def _format_value(value: object, precision: int = 3) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != 0.0 and abs(value) < 10 ** (-precision):
            return f"{value:.2e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 precision: int = 3,
                 title: Optional[str] = None) -> str:
    """Render rows as an aligned text table.

    Parameters
    ----------
    rows:
        Mappings of column name to value.
    columns:
        Column order; defaults to the keys of the first row (stable order).
    precision:
        Decimal places for float columns.
    title:
        Optional heading printed above the table.
    """
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        [_format_value(row.get(column, ""), precision) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(str(column)), max(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(widths[index])
                        for index, column in enumerate(columns))
    separator = "-+-".join("-" * widths[index] for index in range(len(columns)))
    lines.append(header)
    lines.append(separator)
    for line in rendered:
        lines.append(" | ".join(line[index].ljust(widths[index])
                                for index in range(len(columns))))
    return "\n".join(lines)


def format_series(rows: Sequence[Mapping[str, object]], x_column: str,
                  y_column: str, group_column: str = "algorithm",
                  precision: int = 3, title: Optional[str] = None) -> str:
    """Render a figure-style series: one line per group, x → y pairs.

    This is the textual analogue of a line plot: for every group (usually an
    algorithm) the swept x values and the measured y values are listed in
    order, which is exactly the data a plotting script would consume.
    """
    groups: Dict[object, List[Mapping[str, object]]] = {}
    for row in rows:
        groups.setdefault(row.get(group_column, ""), []).append(row)
    lines: List[str] = []
    if title:
        lines.append(title)
    for group in sorted(groups, key=str):
        points = sorted(groups[group], key=lambda row: row.get(x_column, 0))
        rendered = ", ".join(
            f"{_format_value(point.get(x_column), precision)}:"
            f"{_format_value(point.get(y_column), precision)}"
            for point in points
        )
        lines.append(f"{group}: {rendered}")
    return "\n".join(lines)


def select_columns(rows: Iterable[Mapping[str, object]],
                   columns: Sequence[str]) -> List[Dict[str, object]]:
    """Project rows onto a subset of columns (missing values become '')."""
    return [{column: row.get(column, "") for column in columns} for row in rows]
