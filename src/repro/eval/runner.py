"""Experiment runner.

The runner executes a query workload against one or more algorithms on one
engine and aggregates, per algorithm:

* latency distribution (mean / median / p95),
* access counts (sequential / random / social / users visited),
* agreement with the exact baseline (overlap, Kendall tau),
* quality against the holdout ground truth (precision / recall / NDCG),
  when the dataset carries one.

Every benchmark in ``benchmarks/`` is a thin wrapper around this module, so
the numbers printed by the harness and the numbers unit tests assert on come
from the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.accounting import AccessAccountant
from ..core.engine import SocialSearchEngine
from ..core.query import Query, QueryResult
from ..errors import EvaluationError
from ..storage.dataset import Dataset
from .metrics import (
    binary_ndcg_at_k,
    kendall_tau,
    mean,
    overlap_at_k,
    precision_at_k,
    recall_at_k,
)
from .timing import LatencyRecorder


@dataclass
class AlgorithmReport:
    """Aggregated measurements of one algorithm over one workload."""

    algorithm: str
    num_queries: int = 0
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    accounting: AccessAccountant = field(default_factory=AccessAccountant)
    early_terminations: int = 0
    overlap_with_exact: List[float] = field(default_factory=list)
    kendall_with_exact: List[float] = field(default_factory=list)
    precision: List[float] = field(default_factory=list)
    recall: List[float] = field(default_factory=list)
    ndcg: List[float] = field(default_factory=list)

    def row(self) -> Dict[str, float]:
        """One result-table row (the unit every benchmark prints)."""
        timing = self.latency.summary()
        queries = max(1, self.num_queries)
        row: Dict[str, float] = {
            "algorithm": self.algorithm,
            "queries": self.num_queries,
            "mean_latency_ms": timing["mean_ms"],
            "median_latency_ms": timing["median_ms"],
            "p95_latency_ms": timing["p95_ms"],
            "sequential_per_query": self.accounting.sequential_accesses / queries,
            "random_per_query": self.accounting.random_accesses / queries,
            "social_per_query": self.accounting.social_accesses / queries,
            "users_visited_per_query": self.accounting.users_visited / queries,
            "early_termination_rate": self.early_terminations / queries,
        }
        if self.overlap_with_exact:
            row["overlap_with_exact"] = mean(self.overlap_with_exact)
            row["kendall_with_exact"] = mean(self.kendall_with_exact)
        if self.precision:
            row["precision_at_k"] = mean(self.precision)
            row["recall_at_k"] = mean(self.recall)
            row["ndcg_at_k"] = mean(self.ndcg)
        return row


@dataclass
class WorkloadReport:
    """Reports for every algorithm that ran over the same workload."""

    dataset_name: str
    reports: Dict[str, AlgorithmReport] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, float]]:
        """All result rows, in algorithm-name order."""
        return [self.reports[name].row() for name in sorted(self.reports)]

    def report(self, algorithm: str) -> AlgorithmReport:
        """The report of one algorithm (KeyError when it did not run)."""
        return self.reports[algorithm]


class ExperimentRunner:
    """Runs workloads against a set of algorithms and aggregates the results."""

    def __init__(self, engine: SocialSearchEngine,
                 reference_algorithm: str = "exact") -> None:
        self._engine = engine
        self._reference_algorithm = reference_algorithm

    @property
    def engine(self) -> SocialSearchEngine:
        """The engine used for every run."""
        return self._engine

    @property
    def dataset(self) -> Dataset:
        """The dataset behind the engine."""
        return self._engine.dataset

    # ------------------------------------------------------------------ #
    # Ground truth
    # ------------------------------------------------------------------ #

    def _relevant_items(self, query: Query) -> Optional[set]:
        """Holdout items of the seeker that match at least one query tag."""
        holdout = self.dataset.holdout
        if holdout is None:
            return None
        relevant = set()
        for tag in query.tags:
            relevant.update(holdout.items_for_user_tag(query.seeker, tag))
        # Fall back to any held-out item of the seeker when the per-tag view
        # is empty; queries are drawn from the seeker's profile so this keeps
        # the judgement non-degenerate without inflating scores.
        if not relevant:
            relevant = set(holdout.items_for_user(query.seeker))
        return relevant

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #

    def run(self, queries: Sequence[Query], algorithms: Iterable[str],
            compare_to_reference: bool = True) -> WorkloadReport:
        """Run every algorithm over every query and aggregate the results."""
        algorithms = list(algorithms)
        if not algorithms:
            raise EvaluationError("at least one algorithm is required")
        if not queries:
            raise EvaluationError("the workload is empty")

        reference_results: Optional[List[QueryResult]] = None
        if compare_to_reference:
            reference_results = [
                self._engine.run(query, algorithm=self._reference_algorithm)
                for query in queries
            ]

        report = WorkloadReport(dataset_name=self.dataset.name)
        for algorithm in algorithms:
            algo_report = AlgorithmReport(algorithm=algorithm)
            for index, query in enumerate(queries):
                if algorithm == self._reference_algorithm and reference_results is not None:
                    result = reference_results[index]
                else:
                    result = self._engine.run(query, algorithm=algorithm)
                self._accumulate(algo_report, query, result,
                                 reference_results[index] if reference_results else None)
            report.reports[algorithm] = algo_report
        return report

    def _accumulate(self, report: AlgorithmReport, query: Query, result: QueryResult,
                    reference: Optional[QueryResult]) -> None:
        report.num_queries += 1
        report.latency.record(result.latency_seconds)
        report.accounting.merge(result.accounting)
        if result.terminated_early:
            report.early_terminations += 1
        if reference is not None:
            report.overlap_with_exact.append(
                overlap_at_k(result.item_ids, reference.item_ids, query.k)
            )
            report.kendall_with_exact.append(
                kendall_tau(result.item_ids, reference.item_ids)
            )
        relevant = self._relevant_items(query)
        if relevant is not None and relevant:
            report.precision.append(precision_at_k(result.item_ids, relevant, query.k))
            report.recall.append(recall_at_k(result.item_ids, relevant, query.k))
            report.ndcg.append(binary_ndcg_at_k(result.item_ids, relevant, query.k))


def sweep(engine_factory, parameter_values: Iterable, queries_factory,
          algorithms: Iterable[str], parameter_name: str = "parameter",
          compare_to_reference: bool = True) -> List[Dict[str, float]]:
    """Run a one-dimensional parameter sweep and return flat result rows.

    Parameters
    ----------
    engine_factory:
        Callable ``value -> SocialSearchEngine`` building the engine for one
        parameter value.
    parameter_values:
        The swept values (k, alpha, |U|, homophily, ...).
    queries_factory:
        Callable ``(value, engine) -> Sequence[Query]`` building the workload
        for one parameter value.
    algorithms:
        Algorithm names to run at every point.
    parameter_name:
        Column name of the swept parameter in the result rows.
    """
    rows: List[Dict[str, float]] = []
    algorithms = list(algorithms)
    for value in parameter_values:
        engine = engine_factory(value)
        queries = queries_factory(value, engine)
        runner = ExperimentRunner(engine)
        report = runner.run(queries, algorithms, compare_to_reference=compare_to_reference)
        for row in report.rows():
            row = dict(row)
            row[parameter_name] = value
            rows.append(row)
    return rows
