"""Latency and memory measurement helpers.

All timings use ``time.perf_counter`` (monotonic, highest available
resolution).  :class:`LatencyRecorder` accumulates per-query latencies and
reports the usual distribution summary (mean / median / p95 / max), which is
what the latency figures plot.

Memory comes in three complementary views, all used by the scale sweep:

* :func:`peak_rss_bytes` — the OS high-water mark (``ru_maxrss``), which
  includes numpy buffers and mapped pages but never decreases;
* :func:`current_rss_bytes` — the instantaneous resident set, cheap enough
  to sample inside a benchmark loop;
* :func:`measure_in_subprocess` — run a build in a forked child so its
  ``ru_maxrss`` starts fresh, giving a *per-build* peak that is not
  polluted by whatever the parent already allocated.  This is the only way
  to compare the in-memory and streaming builders' footprints in one
  process run.
"""

from __future__ import annotations

import multiprocessing
import os
import resource
import sys
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


def _ru_maxrss_bytes() -> int:
    """``ru_maxrss`` normalised to bytes (Linux reports KB, macOS bytes)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return int(peak)
    return int(peak) * 1024


def peak_rss_bytes() -> int:
    """High-water-mark resident set size of this process, in bytes.

    Monotone non-decreasing over the process lifetime; use
    :func:`measure_in_subprocess` when an isolated per-task peak is needed.
    """
    return _ru_maxrss_bytes()


def current_rss_bytes() -> int:
    """Instantaneous resident set size in bytes (0 when unavailable)."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            fields = handle.read().split()
        return int(fields[1]) * os.sysconf("SC_PAGESIZE")
    except (OSError, IndexError, ValueError):  # pragma: no cover - non-linux
        return 0


def memory_summary() -> Dict[str, float]:
    """The memory block every benchmark report embeds (MB units)."""
    return {
        "peak_rss_mb": peak_rss_bytes() / (1024.0 * 1024.0),
        "current_rss_mb": current_rss_bytes() / (1024.0 * 1024.0),
    }


class MemoryMeter:
    """Context manager around :mod:`tracemalloc` for Python-heap peaks.

    Measures allocations made *inside* the block (numpy's heap buffers are
    tracked via PEP 445 hooks; memory-mapped pages are not, which is exactly
    the distinction the out-of-core builder exploits).  Nesting-safe: if
    tracemalloc is already running, the meter only resets the peak.
    """

    def __init__(self) -> None:
        self.peak_bytes = 0
        self._started_here = False

    def __enter__(self) -> "MemoryMeter":
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_here = True
        tracemalloc.reset_peak()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        _current, peak = tracemalloc.get_traced_memory()
        self.peak_bytes = int(peak)
        if self._started_here:
            tracemalloc.stop()

    @property
    def peak_mb(self) -> float:
        """Peak traced Python-heap allocation inside the block, in MB."""
        return self.peak_bytes / (1024.0 * 1024.0)


def _subprocess_entry(func: Callable[[], Any], conn) -> None:
    baseline = _ru_maxrss_bytes()
    start = time.perf_counter()
    try:
        value = func()
    # lint: allow(durability-ordering) -- fork boundary: error is serialised to the parent, which re-raises it; nothing is swallowed
    except BaseException as exc:  # pragma: no cover - propagated to parent
        conn.send(("error", f"{type(exc).__name__}: {exc}", 0, 0.0))
        conn.close()
        return
    elapsed = time.perf_counter() - start
    peak_delta = max(0, _ru_maxrss_bytes() - baseline)
    conn.send(("ok", value, peak_delta, elapsed))
    conn.close()


def measure_in_subprocess(func: Callable[[], Any]
                          ) -> Tuple[Any, int, float]:
    """Run ``func`` in a forked child; return ``(value, peak_bytes, secs)``.

    ``peak_bytes`` is the child's ``ru_maxrss`` *growth* beyond what it
    inherited at fork time, i.e. the memory the measured work itself
    demanded.  Fork start is required (no pickling of ``func``: closures
    over configs are fine); on platforms without fork the function runs
    in-process and the peak is a best-effort delta.
    """
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-posix
        before = peak_rss_bytes()
        with Timer() as timer:
            value = func()
        return value, max(0, peak_rss_bytes() - before), timer.elapsed_seconds
    parent_conn, child_conn = context.Pipe(duplex=False)
    process = context.Process(target=_subprocess_entry,
                              args=(func, child_conn))
    process.start()
    child_conn.close()
    try:
        status, value, peak_bytes, elapsed = parent_conn.recv()
    except EOFError:
        process.join()
        raise RuntimeError(
            f"measured subprocess died (exit code {process.exitcode})")
    finally:
        parent_conn.close()
    process.join()
    if status == "error":
        raise RuntimeError(f"measured subprocess failed: {value}")
    return value, int(peak_bytes), float(elapsed)


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values``; 0.0 when empty.

    ``fraction`` is in ``[0, 1]`` (e.g. 0.99 for the p99).  Shared by the
    evaluation tables and the serving-layer metrics so both report the same
    quantile semantics.
    """
    if not values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as timer:
    ...     do_work()
    >>> timer.elapsed_seconds
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed_seconds: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if self._start is not None:
            self.elapsed_seconds = time.perf_counter() - self._start

    @property
    def elapsed_milliseconds(self) -> float:
        """Elapsed time in milliseconds."""
        return self.elapsed_seconds * 1000.0


@dataclass
class LatencyRecorder:
    """Accumulates per-query latencies (in seconds)."""

    samples: List[float] = field(default_factory=list)

    def record(self, seconds: float) -> None:
        """Add one latency sample."""
        self.samples.append(float(seconds))

    def __len__(self) -> int:
        return len(self.samples)

    def _sorted(self) -> List[float]:
        return sorted(self.samples)

    def percentile(self, fraction: float) -> float:
        """Latency at the given quantile (nearest-rank, 0 when empty)."""
        return percentile(self.samples, fraction)

    @property
    def mean(self) -> float:
        """Mean latency in seconds."""
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def median(self) -> float:
        """Median latency in seconds."""
        return self.percentile(0.5)

    @property
    def p95(self) -> float:
        """95th-percentile latency in seconds."""
        return self.percentile(0.95)

    @property
    def maximum(self) -> float:
        """Maximum latency in seconds."""
        return max(self.samples) if self.samples else 0.0

    def summary(self) -> Dict[str, float]:
        """Distribution summary in milliseconds (plot-friendly units)."""
        return {
            "mean_ms": self.mean * 1000.0,
            "median_ms": self.median * 1000.0,
            "p95_ms": self.p95 * 1000.0,
            "max_ms": self.maximum * 1000.0,
            "count": float(len(self.samples)),
        }
