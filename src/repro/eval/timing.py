"""Latency measurement helpers.

All timings use ``time.perf_counter`` (monotonic, highest available
resolution).  :class:`LatencyRecorder` accumulates per-query latencies and
reports the usual distribution summary (mean / median / p95 / max), which is
what the latency figures plot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values``; 0.0 when empty.

    ``fraction`` is in ``[0, 1]`` (e.g. 0.99 for the p99).  Shared by the
    evaluation tables and the serving-layer metrics so both report the same
    quantile semantics.
    """
    if not values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as timer:
    ...     do_work()
    >>> timer.elapsed_seconds
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed_seconds: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if self._start is not None:
            self.elapsed_seconds = time.perf_counter() - self._start

    @property
    def elapsed_milliseconds(self) -> float:
        """Elapsed time in milliseconds."""
        return self.elapsed_seconds * 1000.0


@dataclass
class LatencyRecorder:
    """Accumulates per-query latencies (in seconds)."""

    samples: List[float] = field(default_factory=list)

    def record(self, seconds: float) -> None:
        """Add one latency sample."""
        self.samples.append(float(seconds))

    def __len__(self) -> int:
        return len(self.samples)

    def _sorted(self) -> List[float]:
        return sorted(self.samples)

    def percentile(self, fraction: float) -> float:
        """Latency at the given quantile (nearest-rank, 0 when empty)."""
        return percentile(self.samples, fraction)

    @property
    def mean(self) -> float:
        """Mean latency in seconds."""
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def median(self) -> float:
        """Median latency in seconds."""
        return self.percentile(0.5)

    @property
    def p95(self) -> float:
        """95th-percentile latency in seconds."""
        return self.percentile(0.95)

    @property
    def maximum(self) -> float:
        """Maximum latency in seconds."""
        return max(self.samples) if self.samples else 0.0

    def summary(self) -> Dict[str, float]:
        """Distribution summary in milliseconds (plot-friendly units)."""
        return {
            "mean_ms": self.mean * 1000.0,
            "median_ms": self.median * 1000.0,
            "p95_ms": self.p95 * 1000.0,
            "max_ms": self.maximum * 1000.0,
            "count": float(len(self.samples)),
        }
