"""Random-ranking baseline.

Returns a uniformly random sample of the items matching the query tags.
Its only purpose is to anchor the quality metrics: any ranking that does not
clearly beat it carries no signal.  Deterministic under a fixed seed.
"""

from __future__ import annotations

import time
from typing import Optional, Set

import numpy as np

from ..config import EngineConfig
from ..core.accounting import AccessAccountant
from ..core.query import Query, QueryResult, ScoredItem
from ..core.topk.base import TopKAlgorithm, register_algorithm
from ..proximity.base import ProximityMeasure
from ..storage.dataset import Dataset


@register_algorithm("random")
class RandomRank(TopKAlgorithm):
    """Uniformly random ranking of the items matching the query tags."""

    def __init__(self, dataset: Dataset, proximity: ProximityMeasure,
                 config: Optional[EngineConfig] = None, seed: int = 97) -> None:
        super().__init__(dataset, proximity, config)
        self._seed = int(seed)

    def search(self, query: Query) -> QueryResult:
        """Sample ``k`` matching items uniformly at random (seeded)."""
        self._validate(query)
        started_at = time.perf_counter()
        accountant = AccessAccountant()

        candidates: Set[int] = set()
        for tag in query.tags:
            candidates.update(self._dataset.tagging.items_for_tag(tag))
            accountant.charge_sequential(self._dataset.inverted_index.list_length(tag))
        accountant.charge_candidate(len(candidates))

        ordered = sorted(candidates)
        rng = np.random.default_rng(self._seed + query.seeker)
        rng.shuffle(ordered)
        chosen = ordered[: query.k]

        items = [
            ScoredItem(item_id=item_id, score=(len(chosen) - rank) / max(1, len(chosen)),
                       textual=0.0, social=0.0)
            for rank, item_id in enumerate(chosen)
        ]
        return QueryResult(
            query=query,
            items=items,
            algorithm=self.name,
            latency_seconds=time.perf_counter() - started_at,
            accounting=accountant,
            terminated_early=False,
        )
