"""Materialised-proximity baseline.

Precomputes and stores the *complete* proximity vector of every user at
build time, so query processing only has to look proximities up.  This is
the "unlimited precomputation" end of the design space: fastest per query,
but with a per-user storage and maintenance cost that does not scale —
exactly the trade-off the on-line algorithms are designed to avoid.  The
footprint benchmark (Table 3) reports its memory cost next to its latency.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Set

from ..config import EngineConfig
from ..core.accounting import AccessAccountant
from ..core.query import Query, QueryResult
from ..core.topk.base import TopKAlgorithm, register_algorithm
from ..core.topk.heap import TopKHeap
from ..proximity.base import ProximityMeasure
from ..storage.dataset import Dataset


@register_algorithm("materialized")
class MaterializedBaseline(TopKAlgorithm):
    """Exhaustive scoring over proximity vectors precomputed for all users."""

    def __init__(self, dataset: Dataset, proximity: ProximityMeasure,
                 config: Optional[EngineConfig] = None) -> None:
        super().__init__(dataset, proximity, config)
        self._materialised: Dict[int, Dict[int, float]] = {}

    def materialise(self, users=None) -> int:
        """Precompute proximity vectors for ``users`` (default: every user).

        Returns the total number of stored (seeker, friend) entries.
        """
        if users is None:
            users = range(self._dataset.num_users)
        for user in users:
            if user not in self._materialised:
                self._materialised[user] = self._proximity.vector(user)
        return self.num_entries()

    def num_entries(self) -> int:
        """Number of stored (seeker, friend, proximity) entries."""
        return sum(len(vector) for vector in self._materialised.values())

    def memory_bytes(self) -> int:
        """Approximate memory used by the materialised vectors."""
        return self.num_entries() * 16 + len(self._materialised) * 64

    def search(self, query: Query) -> QueryResult:
        """Exhaustive scoring using the stored vector (computed lazily if missing)."""
        self._validate(query)
        started_at = time.perf_counter()
        accountant = AccessAccountant()

        vector = self._materialised.get(query.seeker)
        if vector is None:
            vector = self._proximity.vector(query.seeker)
            self._materialised[query.seeker] = vector

        candidates: Set[int] = set()
        for tag in query.tags:
            for item_id in self._dataset.tagging.items_for_tag(tag):
                candidates.add(item_id)
            accountant.charge_sequential(self._dataset.inverted_index.list_length(tag))
        accountant.charge_candidate(len(candidates))

        heap = TopKHeap(query.k)
        for item_id in sorted(candidates):
            breakdown = self._scoring.exact_score(
                query.seeker, item_id, query.tags, vector, accountant=accountant,
            )
            heap.offer(item_id, breakdown.score)

        return self._finalise(query, heap, accountant, started_at,
                              terminated_early=False, proximity_vector=vector)
