"""Comparison baselines: non-social, fully materialised, and random rankings."""

from .global_topk import GlobalTopK
from .materialized import MaterializedBaseline
from .random_rank import RandomRank

__all__ = [
    "GlobalTopK",
    "MaterializedBaseline",
    "RandomRank",
]
