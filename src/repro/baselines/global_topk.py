"""Non-personalised (purely textual) baseline.

Ranks items by tag frequency alone — exactly what a system without access to
the social graph would return, and the quality baseline the social-aware
ranking is compared against in the Figure-7 style experiment.  Implemented
as a registered top-k algorithm so it can be swapped in anywhere the engine
accepts an algorithm name.
"""

from __future__ import annotations

import time

from ..core.accounting import AccessAccountant
from ..core.query import Query, QueryResult, ScoredItem
from ..core.topk.base import TopKAlgorithm, register_algorithm
from ..core.topk.heap import TopKHeap


@register_algorithm("global")
class GlobalTopK(TopKAlgorithm):
    """Rank by normalised tag frequency only; the social component is ignored."""

    def search(self, query: Query) -> QueryResult:
        """Merge the query tags' posting lists by frequency."""
        self._validate(query)
        started_at = time.perf_counter()
        accountant = AccessAccountant()
        heap = TopKHeap(query.k)

        textual: dict = {}
        for tag in query.tags:
            normaliser = self._scoring.normaliser(tag)
            cursor = self._dataset.inverted_index.cursor(tag)
            while True:
                posting = cursor.next()
                if posting is None:
                    break
                accountant.charge_sequential()
                textual[posting.item_id] = textual.get(posting.item_id, 0.0) \
                    + posting.frequency / normaliser
        accountant.charge_candidate(len(textual))

        m = float(query.num_tags)
        for item_id, total in textual.items():
            heap.offer(item_id, total / m)

        items = [
            ScoredItem(item_id=item_id, score=score, textual=score, social=0.0)
            for item_id, score in heap.items()
        ]
        return QueryResult(
            query=query,
            items=items,
            algorithm=self.name,
            latency_seconds=time.perf_counter() - started_at,
            accounting=accountant,
            terminated_early=False,
        )
