"""repro — social-aware top-k query processing.

Reproduction of the ICDE 2013 paper "With a little help from my friends"
(social/collaborative query technique).  See DESIGN.md for the paper-text
mismatch notice and the reconstruction scope.

Quickstart
----------

>>> from repro import SocialSearchEngine, delicious_like
>>> dataset = delicious_like(scale=0.2)
>>> engine = SocialSearchEngine(dataset)
>>> result = engine.search(seeker=4, tags=[dataset.tags()[0]], k=5)
>>> [item.item_id for item in result.items]
"""

from .config import (
    DatasetConfig,
    DurabilityConfig,
    EngineConfig,
    ExperimentConfig,
    ProximityConfig,
    ScoringConfig,
    ServiceConfig,
    WorkloadConfig,
    default_engine_config,
)
from .errors import (
    ConfigurationError,
    EvaluationError,
    GraphError,
    InvalidQueryError,
    PersistenceError,
    QueryError,
    ReproError,
    ServiceError,
    StorageError,
    UnknownAlgorithmError,
    UnknownItemError,
    UnknownProximityError,
    UnknownTagError,
    UnknownUserError,
    WorkloadError,
)
from .graph import SocialGraph, SocialGraphBuilder, generate_graph
from .proximity import (
    CachedProximity,
    ProximityMeasure,
    available_proximities,
    create_proximity,
)
from .storage import (
    Dataset,
    DurableStore,
    InvertedIndex,
    Item,
    ItemStore,
    SocialIndex,
    TaggingAction,
    TaggingStore,
    User,
    UserStore,
    WriteAheadLog,
    compute_dataset_statistics,
    load_dataset,
    save_dataset,
)
from .core import (
    ExecutionPlan,
    Query,
    QueryPlanner,
    QueryResult,
    ScoredItem,
    ScoringModel,
    SocialSearchEngine,
    available_algorithms,
    create_algorithm,
)
# Importing the baselines registers them with the algorithm registry.
from . import baselines  # noqa: F401
from .baselines import GlobalTopK, MaterializedBaseline, RandomRank
from .workload import (
    build_dataset,
    delicious_like,
    flickr_like,
    generate_workload,
    scaled_dataset,
    tiny_dataset,
)
from .eval import ExperimentRunner, format_series, format_table
from .service import (
    QueryService,
    ResultCache,
    ServedResult,
    ServiceMetrics,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "ScoringConfig",
    "ProximityConfig",
    "EngineConfig",
    "ServiceConfig",
    "DatasetConfig",
    "DurabilityConfig",
    "WorkloadConfig",
    "ExperimentConfig",
    "default_engine_config",
    # errors
    "ReproError",
    "ConfigurationError",
    "GraphError",
    "UnknownUserError",
    "StorageError",
    "UnknownItemError",
    "UnknownTagError",
    "PersistenceError",
    "QueryError",
    "InvalidQueryError",
    "UnknownAlgorithmError",
    "UnknownProximityError",
    "WorkloadError",
    "EvaluationError",
    "ServiceError",
    # graph
    "SocialGraph",
    "SocialGraphBuilder",
    "generate_graph",
    # proximity
    "ProximityMeasure",
    "create_proximity",
    "available_proximities",
    "CachedProximity",
    # storage
    "Dataset",
    "Item",
    "ItemStore",
    "User",
    "UserStore",
    "TaggingAction",
    "TaggingStore",
    "InvertedIndex",
    "SocialIndex",
    "save_dataset",
    "load_dataset",
    "compute_dataset_statistics",
    "WriteAheadLog",
    "DurableStore",
    # core
    "Query",
    "QueryResult",
    "ScoredItem",
    "ScoringModel",
    "SocialSearchEngine",
    "ExecutionPlan",
    "QueryPlanner",
    "available_algorithms",
    "create_algorithm",
    # baselines
    "GlobalTopK",
    "MaterializedBaseline",
    "RandomRank",
    # workload
    "build_dataset",
    "delicious_like",
    "flickr_like",
    "tiny_dataset",
    "scaled_dataset",
    "generate_workload",
    # evaluation
    "ExperimentRunner",
    "format_table",
    "format_series",
    # service
    "QueryService",
    "ResultCache",
    "ServedResult",
    "ServiceMetrics",
]
