"""Descriptive statistics of social graphs.

Used by the Table-1 style "dataset statistics" benchmark and by tests that
check the synthetic generators produce graphs with the intended shape
(degree skew, clustering, connectivity).
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Dict, Optional

import numpy as np

from .graph import SocialGraph
from .traversal import bfs_levels, connected_components


@dataclass(frozen=True)
class GraphStatistics:
    """Summary statistics of a social graph."""

    num_users: int
    num_edges: int
    avg_degree: float
    max_degree: int
    min_degree: int
    degree_gini: float
    clustering_coefficient: float
    num_components: int
    largest_component_fraction: float
    approx_avg_path_length: float

    def to_dict(self) -> Dict[str, float]:
        """Return a plain dictionary view for result tables."""
        return asdict(self)


def degree_gini(graph: SocialGraph) -> float:
    """Gini coefficient of the degree distribution (0 = uniform, →1 = skewed)."""
    degrees = np.sort(graph.degrees().astype(np.float64))
    n = degrees.shape[0]
    if n == 0 or degrees.sum() == 0:
        return 0.0
    index = np.arange(1, n + 1)
    return float((2.0 * np.sum(index * degrees) / (n * degrees.sum())) - (n + 1.0) / n)


def clustering_coefficient(graph: SocialGraph, sample: Optional[int] = None,
                           seed: int = 0) -> float:
    """Average local clustering coefficient (optionally over a node sample)."""
    rng = np.random.default_rng(seed)
    nodes = np.arange(graph.num_users)
    if sample is not None and sample < graph.num_users:
        nodes = rng.choice(nodes, size=sample, replace=False)
    total = 0.0
    counted = 0
    for u in nodes.tolist():
        nbrs = graph.neighbour_ids(u).tolist()
        k = len(nbrs)
        if k < 2:
            continue
        nbr_set = set(nbrs)
        links = 0
        for v in nbrs:
            for w in graph.neighbour_ids(v).tolist():
                if w in nbr_set and w > v:
                    links += 1
        total += 2.0 * links / (k * (k - 1))
        counted += 1
    return total / counted if counted else 0.0


def approximate_average_path_length(graph: SocialGraph, num_sources: int = 16,
                                    seed: int = 0) -> float:
    """Average hop distance estimated by BFS from a sample of sources."""
    if graph.num_users == 0:
        return 0.0
    rng = np.random.default_rng(seed)
    sources = rng.choice(graph.num_users, size=min(num_sources, graph.num_users),
                         replace=False)
    total = 0.0
    pairs = 0
    for source in sources.tolist():
        levels = bfs_levels(graph, int(source))
        for node, hops in levels.items():
            if node != source:
                total += hops
                pairs += 1
    return total / pairs if pairs else math.inf


def compute_statistics(graph: SocialGraph, clustering_sample: Optional[int] = 200,
                       path_sources: int = 16, seed: int = 0) -> GraphStatistics:
    """Compute the full :class:`GraphStatistics` summary."""
    degrees = graph.degrees()
    components = connected_components(graph)
    largest = len(components[0]) if components else 0
    return GraphStatistics(
        num_users=graph.num_users,
        num_edges=graph.num_edges,
        avg_degree=float(degrees.mean()) if degrees.size else 0.0,
        max_degree=int(degrees.max()) if degrees.size else 0,
        min_degree=int(degrees.min()) if degrees.size else 0,
        degree_gini=degree_gini(graph),
        clustering_coefficient=clustering_coefficient(graph, sample=clustering_sample,
                                                      seed=seed),
        num_components=len(components),
        largest_component_fraction=(largest / graph.num_users) if graph.num_users else 0.0,
        approx_avg_path_length=approximate_average_path_length(graph, num_sources=path_sources,
                                                               seed=seed),
    )
