"""Synthetic social-graph generators.

The paper-family evaluations run on crawled social networks (del.icio.us,
Flickr, Twitter).  Those crawls are not redistributable, so the benchmark
harness builds structurally similar synthetic graphs instead.  Each
generator below is deterministic under a fixed seed and produces weighted,
undirected :class:`~repro.graph.graph.SocialGraph` instances whose tie
strengths are sampled from a configurable distribution.

Available models
----------------
* ``erdos-renyi`` — uniform random edges (low clustering control).
* ``barabasi-albert`` — preferential attachment (power-law degrees, the
  closest match to real social-tagging crawls).
* ``watts-strogatz`` — rewired ring lattice (high clustering, small world).
* ``forest-fire`` — recursive burning model (heavy-tailed, community-ish).
* ``community`` — planted-partition model with dense intra-community and
  sparse inter-community edges.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

import numpy as np

from ..errors import WorkloadError
from .graph import SocialGraph, SocialGraphBuilder

GeneratorFn = Callable[..., SocialGraph]

_GENERATORS: Dict[str, GeneratorFn] = {}


def register_generator(name: str) -> Callable[[GeneratorFn], GeneratorFn]:
    """Class-free registry decorator for graph generators."""

    def decorator(fn: GeneratorFn) -> GeneratorFn:
        _GENERATORS[name] = fn
        return fn

    return decorator


def available_generators() -> tuple:
    """Names of all registered graph generators."""
    return tuple(sorted(_GENERATORS))


def generate_graph(model: str, num_users: int, avg_degree: float,
                   seed: int = 0, **kwargs) -> SocialGraph:
    """Generate a social graph with the named model.

    Parameters
    ----------
    model:
        One of :func:`available_generators`.
    num_users:
        Number of nodes.
    avg_degree:
        Target average degree; each model maps this to its own parameters.
    seed:
        Seed for the deterministic RNG.
    kwargs:
        Model-specific extra parameters forwarded verbatim.
    """
    if model not in _GENERATORS:
        raise WorkloadError(
            f"unknown graph model {model!r}; available: {', '.join(available_generators())}"
        )
    if num_users < 2:
        raise WorkloadError(f"graph generators need at least 2 users, got {num_users}")
    if avg_degree <= 0:
        raise WorkloadError(f"avg_degree must be positive, got {avg_degree}")
    return _GENERATORS[model](num_users=num_users, avg_degree=avg_degree,
                              seed=seed, **kwargs)


def _sample_weight(rng: np.random.Generator) -> float:
    """Sample a tie strength in (0, 1]; skewed towards weaker ties."""
    return float(min(1.0, max(1e-3, rng.beta(2.0, 2.0))))


def _add_edge_safe(builder: SocialGraphBuilder, u: int, v: int,
                   rng: np.random.Generator) -> None:
    if u != v and not builder.has_edge(u, v):
        builder.add_edge(u, v, _sample_weight(rng))


@register_generator("erdos-renyi")
def erdos_renyi(num_users: int, avg_degree: float, seed: int = 0) -> SocialGraph:
    """G(n, p) with ``p = avg_degree / (n - 1)``."""
    rng = np.random.default_rng(seed)
    p = min(1.0, avg_degree / max(1, num_users - 1))
    builder = SocialGraphBuilder(num_users)
    # Sample the number of edges then draw endpoints; equivalent in
    # expectation to per-pair coin flips but much faster for sparse graphs.
    expected_edges = int(round(p * num_users * (num_users - 1) / 2))
    attempts = 0
    max_attempts = expected_edges * 10 + 100
    while builder.num_edges < expected_edges and attempts < max_attempts:
        u = int(rng.integers(num_users))
        v = int(rng.integers(num_users))
        _add_edge_safe(builder, u, v, rng)
        attempts += 1
    return builder.build()


@register_generator("barabasi-albert")
def barabasi_albert(num_users: int, avg_degree: float, seed: int = 0) -> SocialGraph:
    """Preferential attachment with ``m = avg_degree / 2`` edges per new node."""
    rng = np.random.default_rng(seed)
    m = max(1, int(round(avg_degree / 2)))
    m = min(m, num_users - 1)
    builder = SocialGraphBuilder(num_users)
    # Seed clique over the first m + 1 nodes.
    targets = []
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            _add_edge_safe(builder, u, v, rng)
    for u in range(m + 1):
        targets.extend([u] * m)
    for new_node in range(m + 1, num_users):
        chosen = set()
        while len(chosen) < m:
            # Preferential attachment: sample from the repeated-targets list.
            pick = int(targets[int(rng.integers(len(targets)))])
            if pick != new_node:
                chosen.add(pick)
        for v in chosen:
            _add_edge_safe(builder, new_node, v, rng)
            targets.append(v)
            targets.append(new_node)
    return builder.build()


@register_generator("watts-strogatz")
def watts_strogatz(num_users: int, avg_degree: float, seed: int = 0,
                   rewire_probability: float = 0.1) -> SocialGraph:
    """Ring lattice with ``k = avg_degree`` neighbours, rewired with probability p."""
    rng = np.random.default_rng(seed)
    k = max(2, int(round(avg_degree)))
    k = min(k, num_users - 1)
    half = max(1, k // 2)
    builder = SocialGraphBuilder(num_users)
    for u in range(num_users):
        for offset in range(1, half + 1):
            v = (u + offset) % num_users
            if rng.random() < rewire_probability:
                v = int(rng.integers(num_users))
            _add_edge_safe(builder, u, v, rng)
    return builder.build()


@register_generator("forest-fire")
def forest_fire(num_users: int, avg_degree: float, seed: int = 0,
                forward_probability: Optional[float] = None) -> SocialGraph:
    """Simplified forest-fire model: each new node burns through ambassadors."""
    rng = np.random.default_rng(seed)
    if forward_probability is None:
        # Calibrate the burning probability so that the expected out-links per
        # new node roughly matches avg_degree / 2.
        forward_probability = min(0.8, 1.0 - 1.0 / (1.0 + avg_degree / 2.0))
    builder = SocialGraphBuilder(num_users)
    adjacency: Dict[int, set] = {0: set()}
    for new_node in range(1, num_users):
        ambassador = int(rng.integers(new_node))
        visited = set()
        frontier = [ambassador]
        burned = []
        budget = max(1, int(round(avg_degree)))
        while frontier and len(burned) < budget:
            node = frontier.pop()
            if node in visited:
                continue
            visited.add(node)
            burned.append(node)
            links = list(adjacency.get(node, ()))
            rng.shuffle(links)
            num_spread = rng.geometric(max(1e-6, 1.0 - forward_probability)) - 1
            frontier.extend(links[: int(num_spread)])
        adjacency.setdefault(new_node, set())
        for node in burned:
            _add_edge_safe(builder, new_node, node, rng)
            adjacency[new_node].add(node)
            adjacency.setdefault(node, set()).add(new_node)
    return builder.build()


@register_generator("community")
def community(num_users: int, avg_degree: float, seed: int = 0,
              num_communities: int = 8, mixing: float = 0.1) -> SocialGraph:
    """Planted-partition graph: dense inside communities, sparse across."""
    rng = np.random.default_rng(seed)
    num_communities = max(1, min(num_communities, num_users))
    membership = rng.integers(num_communities, size=num_users)
    community_size = max(2.0, num_users / num_communities)
    p_in = min(1.0, avg_degree * (1.0 - mixing) / max(1.0, community_size - 1))
    expected_cross = avg_degree * mixing * num_users / 2.0
    builder = SocialGraphBuilder(num_users)
    # Intra-community edges.
    members: Dict[int, list] = {}
    for user, comm in enumerate(membership.tolist()):
        members.setdefault(int(comm), []).append(user)
    for comm_members in members.values():
        n = len(comm_members)
        if n < 2:
            continue
        expected = int(round(p_in * n * (n - 1) / 2))
        added = 0
        attempts = 0
        while added < expected and attempts < expected * 10 + 100:
            u = comm_members[int(rng.integers(n))]
            v = comm_members[int(rng.integers(n))]
            if u != v and not builder.has_edge(u, v):
                _add_edge_safe(builder, u, v, rng)
                added += 1
            attempts += 1
    # Inter-community edges.
    added = 0
    attempts = 0
    target_cross = int(round(expected_cross))
    while added < target_cross and attempts < target_cross * 10 + 100:
        u = int(rng.integers(num_users))
        v = int(rng.integers(num_users))
        if membership[u] != membership[v] and u != v and not builder.has_edge(u, v):
            _add_edge_safe(builder, u, v, rng)
            added += 1
        attempts += 1
    return builder.build()


def expected_density(num_users: int, avg_degree: float) -> float:
    """Return the edge density implied by the target average degree."""
    if num_users < 2:
        return 0.0
    return min(1.0, avg_degree / (num_users - 1))


def estimate_edges(num_users: int, avg_degree: float) -> int:
    """Return the expected undirected edge count for the target degree."""
    return int(math.floor(num_users * avg_degree / 2.0))
