"""Graph traversal primitives: BFS, Dijkstra, bounded expansion, components.

These are the building blocks of the proximity measures and of the
frontier-based top-k algorithms.  Distances on the weighted graph are
defined as the sum of ``-log(weight)`` along a path, so that the
corresponding *proximity* (``exp(-distance)``) is the product of tie
strengths — a standard multiplicative trust/propagation model.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterator, List, Optional, Tuple

from .graph import SocialGraph


def edge_distance(weight: float) -> float:
    """Convert a tie strength in (0, 1] to an additive distance."""
    return -math.log(max(weight, 1e-12))


def distance_to_proximity(distance: float) -> float:
    """Convert an additive distance back to a multiplicative proximity."""
    return math.exp(-distance)


def bfs_levels(graph: SocialGraph, source: int,
               max_hops: Optional[int] = None) -> Dict[int, int]:
    """Return the hop distance of every node reachable from ``source``.

    Parameters
    ----------
    graph:
        Social graph to traverse.
    source:
        Start node.
    max_hops:
        When given, nodes farther than this many hops are not returned.
    """
    graph.validate_user(source)
    levels = {source: 0}
    frontier = [source]
    hop = 0
    while frontier:
        if max_hops is not None and hop >= max_hops:
            break
        next_frontier: List[int] = []
        for node in frontier:
            nbrs, _ = graph.neighbours(node)
            for v in nbrs.tolist():
                if v not in levels:
                    levels[v] = hop + 1
                    next_frontier.append(v)
        frontier = next_frontier
        hop += 1
    return levels


def dijkstra(graph: SocialGraph, source: int,
             max_distance: Optional[float] = None,
             max_hops: Optional[int] = None) -> Dict[int, float]:
    """Single-source shortest (multiplicative) distances from ``source``.

    Returns a mapping ``node -> distance`` where distance is the sum of
    ``-log(weight)`` along the best path.  The source has distance 0.
    """
    result: Dict[int, float] = {}
    for node, dist, _ in dijkstra_iter(graph, source, max_distance=max_distance,
                                       max_hops=max_hops):
        result[node] = dist
    return result


def dijkstra_iter(graph: SocialGraph, source: int,
                  max_distance: Optional[float] = None,
                  max_hops: Optional[int] = None,
                  hop_penalty: float = 0.0
                  ) -> Iterator[Tuple[int, float, int]]:
    """Yield ``(node, distance, hops)`` in non-decreasing distance order.

    This is the streaming primitive used by frontier-based top-k algorithms:
    consuming it lazily visits the seeker's network in decreasing proximity
    order without materialising the full vector.

    ``hop_penalty`` is an additive distance charged per traversed edge; it
    implements per-hop decay while preserving the non-decreasing yield order.
    """
    graph.validate_user(source)
    heap: List[Tuple[float, int, int]] = [(0.0, source, 0)]
    settled: Dict[int, float] = {}
    while heap:
        dist, node, hops = heapq.heappop(heap)
        if node in settled:
            continue
        if max_distance is not None and dist > max_distance:
            return
        settled[node] = dist
        yield node, dist, hops
        if max_hops is not None and hops >= max_hops:
            continue
        nbrs, weights = graph.neighbours(node)
        for v, w in zip(nbrs.tolist(), weights.tolist()):
            if v not in settled:
                heapq.heappush(
                    heap, (dist + edge_distance(w) + hop_penalty, int(v), hops + 1)
                )


def shortest_path(graph: SocialGraph, source: int, target: int
                  ) -> Tuple[float, List[int]]:
    """Return ``(distance, path)`` between two nodes.

    ``distance`` is ``math.inf`` and ``path`` empty when the nodes are
    disconnected.
    """
    graph.validate_user(source)
    graph.validate_user(target)
    heap: List[Tuple[float, int]] = [(0.0, source)]
    parents: Dict[int, int] = {}
    best: Dict[int, float] = {source: 0.0}
    settled: Dict[int, float] = {}
    while heap:
        dist, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled[node] = dist
        if node == target:
            break
        nbrs, weights = graph.neighbours(node)
        for v, w in zip(nbrs.tolist(), weights.tolist()):
            v = int(v)
            candidate = dist + edge_distance(w)
            if v not in settled and candidate < best.get(v, math.inf):
                best[v] = candidate
                parents[v] = node
                heapq.heappush(heap, (candidate, v))
    if target not in settled:
        return math.inf, []
    path = [target]
    while path[-1] != source:
        path.append(parents[path[-1]])
    path.reverse()
    return settled[target], path


def connected_components(graph: SocialGraph) -> List[List[int]]:
    """Return the connected components as lists of node ids (largest first)."""
    seen = [False] * graph.num_users
    components: List[List[int]] = []
    for start in range(graph.num_users):
        if seen[start]:
            continue
        component = []
        stack = [start]
        seen[start] = True
        while stack:
            node = stack.pop()
            component.append(node)
            nbrs, _ = graph.neighbours(node)
            for v in nbrs.tolist():
                if not seen[v]:
                    seen[v] = True
                    stack.append(int(v))
        components.append(sorted(component))
    components.sort(key=len, reverse=True)
    return components


def largest_component(graph: SocialGraph) -> List[int]:
    """Return the node ids of the largest connected component."""
    components = connected_components(graph)
    return components[0] if components else []


def reachable_within(graph: SocialGraph, source: int, hops: int) -> List[int]:
    """Return all nodes within ``hops`` hops of ``source`` (including it)."""
    return sorted(bfs_levels(graph, source, max_hops=hops))
