"""Social graph substrate: CSR storage, generators, traversal, statistics, IO."""

from .graph import SocialGraph, SocialGraphBuilder
from .generators import (
    available_generators,
    barabasi_albert,
    community,
    erdos_renyi,
    estimate_edges,
    expected_density,
    forest_fire,
    generate_graph,
    watts_strogatz,
)
from .traversal import (
    bfs_levels,
    connected_components,
    dijkstra,
    dijkstra_iter,
    distance_to_proximity,
    edge_distance,
    largest_component,
    reachable_within,
    shortest_path,
)
from .statistics import (
    GraphStatistics,
    approximate_average_path_length,
    clustering_coefficient,
    compute_statistics,
    degree_gini,
)
from .io import (
    graph_from_dict,
    graph_to_dict,
    read_edge_list,
    read_graph_json,
    write_edge_list,
    write_graph_json,
)
from .partition import (
    communities_from_labels,
    label_propagation,
    modularity,
    partition_statistics,
)

__all__ = [
    "SocialGraph",
    "SocialGraphBuilder",
    "available_generators",
    "generate_graph",
    "erdos_renyi",
    "barabasi_albert",
    "watts_strogatz",
    "forest_fire",
    "community",
    "expected_density",
    "estimate_edges",
    "bfs_levels",
    "dijkstra",
    "dijkstra_iter",
    "shortest_path",
    "connected_components",
    "largest_component",
    "reachable_within",
    "edge_distance",
    "distance_to_proximity",
    "GraphStatistics",
    "compute_statistics",
    "degree_gini",
    "clustering_coefficient",
    "approximate_average_path_length",
    "graph_to_dict",
    "graph_from_dict",
    "write_edge_list",
    "read_edge_list",
    "write_graph_json",
    "read_graph_json",
    "label_propagation",
    "communities_from_labels",
    "modularity",
    "partition_statistics",
]
