"""Compressed-sparse-row social graph.

The social graph is the substrate every social-aware algorithm walks at
query time, so it is stored in a cache-friendly CSR layout backed by numpy
arrays: one offsets array of length ``num_users + 1`` plus parallel
neighbour/weight arrays.  Graphs are undirected and weighted; weights model
tie strength and must lie in ``(0, 1]``.

Two entry points are provided:

* :class:`SocialGraphBuilder` — incremental construction from edges.
* :meth:`SocialGraph.from_edges` — one-shot construction from an iterable.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from ..errors import InvalidEdgeError, UnknownUserError

Edge = Tuple[int, int, float]


class SocialGraph:
    """Undirected, weighted social graph in CSR form.

    Parameters
    ----------
    num_users:
        Number of nodes; node ids are ``0 .. num_users - 1``.
    offsets, neighbours, weights:
        CSR arrays.  ``neighbours[offsets[u]:offsets[u + 1]]`` are the
        neighbours of ``u`` with matching ``weights`` entries.

    Instances are immutable once constructed; use :class:`SocialGraphBuilder`
    to assemble one incrementally.
    """

    __slots__ = ("_num_users", "_offsets", "_neighbours", "_weights")

    def __init__(self, num_users: int, offsets: np.ndarray,
                 neighbours: np.ndarray, weights: np.ndarray) -> None:
        if num_users < 0:
            raise InvalidEdgeError(f"num_users must be non-negative, got {num_users}")
        if offsets.shape[0] != num_users + 1:
            raise InvalidEdgeError(
                f"offsets must have length num_users + 1 = {num_users + 1}, "
                f"got {offsets.shape[0]}"
            )
        if neighbours.shape[0] != weights.shape[0]:
            raise InvalidEdgeError("neighbours and weights must have equal length")
        if offsets[-1] != neighbours.shape[0]:
            raise InvalidEdgeError("offsets[-1] must equal the number of directed edges")
        self._num_users = int(num_users)
        self._offsets = offsets
        self._neighbours = neighbours
        self._weights = weights

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(cls, num_users: int, edges: Iterable[Edge]) -> "SocialGraph":
        """Build a graph from ``(u, v, weight)`` triples.

        Each undirected edge should appear once; both directions are stored
        internally.  Duplicate edges keep the maximum weight.
        """
        builder = SocialGraphBuilder(num_users)
        for u, v, w in edges:
            builder.add_edge(u, v, w)
        return builder.build()

    @classmethod
    def empty(cls, num_users: int) -> "SocialGraph":
        """Return a graph with ``num_users`` nodes and no edges."""
        return cls(
            num_users,
            np.zeros(num_users + 1, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
        )

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def num_users(self) -> int:
        """Number of nodes in the graph."""
        return self._num_users

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return int(self._neighbours.shape[0] // 2)

    def validate_user(self, user_id: int) -> None:
        """Raise :class:`UnknownUserError` unless ``user_id`` is a valid node."""
        if not 0 <= user_id < self._num_users:
            raise UnknownUserError(user_id, self._num_users)

    def degree(self, user_id: int) -> int:
        """Number of neighbours of ``user_id``."""
        self.validate_user(user_id)
        return int(self._offsets[user_id + 1] - self._offsets[user_id])

    def neighbours(self, user_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(neighbour_ids, weights)`` arrays for ``user_id``.

        The returned arrays are views into the CSR storage and must not be
        mutated by callers.
        """
        self.validate_user(user_id)
        start = self._offsets[user_id]
        end = self._offsets[user_id + 1]
        return self._neighbours[start:end], self._weights[start:end]

    def neighbour_ids(self, user_id: int) -> np.ndarray:
        """Return only the neighbour ids of ``user_id``."""
        return self.neighbours(user_id)[0]

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` when an edge ``{u, v}`` exists."""
        self.validate_user(u)
        self.validate_user(v)
        nbrs, _ = self.neighbours(u)
        return bool(np.any(nbrs == v))

    def edge_weight(self, u: int, v: int) -> float:
        """Return the weight of edge ``{u, v}``, or ``0.0`` when absent."""
        nbrs, weights = self.neighbours(u)
        self.validate_user(v)
        matches = np.nonzero(nbrs == v)[0]
        if matches.shape[0] == 0:
            return 0.0
        return float(weights[matches[0]])

    def users(self) -> range:
        """Return the range of valid user ids."""
        return range(self._num_users)

    def iter_edges(self) -> Iterator[Edge]:
        """Yield each undirected edge once as ``(u, v, weight)`` with ``u < v``."""
        for u in range(self._num_users):
            nbrs, weights = self.neighbours(u)
            for v, w in zip(nbrs.tolist(), weights.tolist()):
                if u < v:
                    yield (u, int(v), float(w))

    def degrees(self) -> np.ndarray:
        """Return the degree of every node as an array."""
        return np.diff(self._offsets)

    def csr_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return the raw ``(offsets, neighbours, weights)`` CSR arrays.

        The arrays are the graph's own storage and must not be mutated;
        they exist so vectorized kernels (PPR power iteration, Monte-Carlo
        walks) can operate on the full adjacency without per-node slicing.
        """
        return self._offsets, self._neighbours, self._weights

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #

    def subgraph(self, user_ids: Sequence[int]) -> Tuple["SocialGraph", Dict[int, int]]:
        """Return the induced subgraph on ``user_ids`` plus the id remapping.

        The returned mapping translates original ids to compact ids in the
        subgraph.  Edges with either endpoint outside ``user_ids`` are
        dropped.
        """
        keep = sorted(set(int(u) for u in user_ids))
        for u in keep:
            self.validate_user(u)
        remap = {old: new for new, old in enumerate(keep)}
        edges: List[Edge] = []
        for u in keep:
            nbrs, weights = self.neighbours(u)
            for v, w in zip(nbrs.tolist(), weights.tolist()):
                if u < v and v in remap:
                    edges.append((remap[u], remap[int(v)], float(w)))
        return SocialGraph.from_edges(len(keep), edges), remap

    def to_edge_list(self) -> List[Edge]:
        """Return all undirected edges as a list (mostly for tests and IO)."""
        return list(self.iter_edges())

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the CSR arrays in bytes."""
        return int(self._offsets.nbytes + self._neighbours.nbytes + self._weights.nbytes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SocialGraph):
            return NotImplemented
        return (
            self._num_users == other._num_users
            and np.array_equal(self._offsets, other._offsets)
            and np.array_equal(self._neighbours, other._neighbours)
            and np.allclose(self._weights, other._weights)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SocialGraph(num_users={self._num_users}, num_edges={self.num_edges})"


class SocialGraphBuilder:
    """Incrementally assemble a :class:`SocialGraph`.

    The builder accepts undirected edges, rejects self loops and non-positive
    weights, and de-duplicates parallel edges by keeping the maximum weight.
    """

    def __init__(self, num_users: int) -> None:
        if num_users < 0:
            raise InvalidEdgeError(f"num_users must be non-negative, got {num_users}")
        self._num_users = int(num_users)
        self._edges: Dict[Tuple[int, int], float] = {}

    @property
    def num_users(self) -> int:
        """Number of nodes the built graph will have."""
        return self._num_users

    @property
    def num_edges(self) -> int:
        """Number of distinct undirected edges added so far."""
        return len(self._edges)

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add the undirected edge ``{u, v}`` with the given tie strength."""
        if not 0 <= u < self._num_users:
            raise UnknownUserError(u, self._num_users)
        if not 0 <= v < self._num_users:
            raise UnknownUserError(v, self._num_users)
        if u == v:
            raise InvalidEdgeError(f"self loops are not allowed (user {u})")
        if not 0.0 < weight <= 1.0:
            raise InvalidEdgeError(
                f"edge weight must be in (0, 1], got {weight} for edge ({u}, {v})"
            )
        key = (u, v) if u < v else (v, u)
        existing = self._edges.get(key)
        if existing is None or weight > existing:
            self._edges[key] = float(weight)

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` when the undirected edge was already added."""
        key = (u, v) if u < v else (v, u)
        return key in self._edges

    def build(self) -> SocialGraph:
        """Materialise the CSR arrays and return the immutable graph.

        One global lexsort over the doubled edge list replaces the old
        per-node scatter + per-node argsort (a Python loop over every node):
        sorting the directed edges by ``(source, neighbour)`` yields every
        adjacency block contiguous and neighbour-sorted in a single O(E log E)
        vectorized pass.  Keys are unique (the builder deduplicates edges),
        so the result is identical to the per-node stable sort it replaces.
        """
        num_edges = len(self._edges)
        us = np.fromiter((key[0] for key in self._edges), dtype=np.int64,
                         count=num_edges)
        vs = np.fromiter((key[1] for key in self._edges), dtype=np.int64,
                         count=num_edges)
        ws = np.fromiter(self._edges.values(), dtype=np.float64,
                         count=num_edges)
        sources = np.concatenate([us, vs])
        targets = np.concatenate([vs, us])
        doubled_weights = np.concatenate([ws, ws])
        order = np.lexsort((targets, sources))
        neighbours = targets[order]
        weights = doubled_weights[order]
        degrees = np.bincount(sources, minlength=self._num_users)
        offsets = np.zeros(self._num_users + 1, dtype=np.int64)
        np.cumsum(degrees, out=offsets[1:])
        return SocialGraph(self._num_users, offsets, neighbours, weights)
