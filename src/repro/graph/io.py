"""Serialisation of social graphs.

Two formats are supported:

* a whitespace-separated **edge list** (``u v weight`` per line), the
  interchange format most public social-network snapshots use, and
* a **JSON document** used inside dataset snapshots.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from ..errors import PersistenceError
from .graph import SocialGraph

PathLike = Union[str, Path]


def write_edge_list(graph: SocialGraph, path: PathLike) -> None:
    """Write the graph as ``u v weight`` lines preceded by a header comment."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"# users={graph.num_users} edges={graph.num_edges}\n")
        for u, v, w in graph.iter_edges():
            handle.write(f"{u} {v} {w:.6f}\n")


def read_edge_list(path: PathLike) -> SocialGraph:
    """Read a graph written by :func:`write_edge_list`."""
    path = Path(path)
    num_users = None
    edges: List = []
    try:
        with path.open("r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    num_users = _parse_header(line, lineno)
                    continue
                parts = line.split()
                if len(parts) not in (2, 3):
                    raise PersistenceError(
                        f"{path}:{lineno}: expected 'u v [weight]', got {line!r}"
                    )
                u, v = int(parts[0]), int(parts[1])
                w = float(parts[2]) if len(parts) == 3 else 1.0
                edges.append((u, v, w))
    except (ValueError, OSError) as exc:
        raise PersistenceError(f"failed to read edge list from {path}: {exc}") from exc
    if num_users is None:
        num_users = 1 + max((max(u, v) for u, v, _ in edges), default=-1)
    return SocialGraph.from_edges(num_users, edges)


def _parse_header(line: str, lineno: int) -> int:
    for token in line.lstrip("#").split():
        if token.startswith("users="):
            try:
                return int(token.split("=", 1)[1])
            except ValueError as exc:
                raise PersistenceError(f"line {lineno}: malformed header {line!r}") from exc
    raise PersistenceError(f"line {lineno}: header missing 'users=' field: {line!r}")


def graph_to_dict(graph: SocialGraph) -> Dict[str, object]:
    """Return a JSON-serialisable dictionary representation of the graph."""
    return {
        "num_users": graph.num_users,
        "edges": [[u, v, w] for u, v, w in graph.iter_edges()],
    }


def graph_from_dict(data: Dict[str, object]) -> SocialGraph:
    """Rebuild a graph from :func:`graph_to_dict` output."""
    try:
        num_users = int(data["num_users"])
        edges = [(int(u), int(v), float(w)) for u, v, w in data["edges"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(f"malformed graph dictionary: {exc}") from exc
    return SocialGraph.from_edges(num_users, edges)


def write_graph_json(graph: SocialGraph, path: PathLike) -> None:
    """Write the graph as a single JSON document."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(graph_to_dict(graph), handle)


def read_graph_json(path: PathLike) -> SocialGraph:
    """Read a graph written by :func:`write_graph_json`."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise PersistenceError(f"failed to read graph JSON from {path}: {exc}") from exc
    return graph_from_dict(data)
