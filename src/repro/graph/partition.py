"""Community detection and partition quality.

The workload generator needs a notion of "which users belong together" to
model community-correlated interests, and the evaluation occasionally wants
to check that a synthetic graph actually contains the structure its
generator promises.  Two standard, dependency-free tools cover both needs:

* :func:`label_propagation` — near-linear-time community detection: every
  node repeatedly adopts the most frequent label among its neighbours.
* :func:`modularity` — the Newman-Girvan quality of a partition (0 for a
  random split, approaching 1 for strong communities).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..errors import GraphError
from .graph import SocialGraph


def label_propagation(graph: SocialGraph, max_rounds: int = 10,
                      weighted: bool = True,
                      seed: Optional[int] = None) -> List[int]:
    """Assign a community label to every node by synchronous label propagation.

    Parameters
    ----------
    graph:
        The graph to partition.
    max_rounds:
        Upper bound on propagation rounds; the algorithm stops earlier when
        no label changes.
    weighted:
        When true, neighbour labels are counted with the edge weight instead
        of 1, so strong ties pull harder.
    seed:
        Visit order control.  ``None`` (the default) visits nodes in
        ascending id order every round.  An integer seed visits them in a
        per-round shuffled order drawn from a private ``random.Random(seed)``
        — the classic asynchronous variant, which escapes the oscillation
        plateaus the synchronous sweep can fall into on bipartite-ish
        structures.  Either way the function is a pure function of
        ``(graph, max_rounds, weighted, seed)``: ties are broken by the
        smallest label, never by iteration order or hash order, so the same
        seed reproduces the same partition layout run over run (the property
        corpus partitioning and CI rely on).

    Returns
    -------
    list of int
        ``labels[u]`` is the community label of node ``u``.  Labels are node
        ids (the smallest id that propagated into the community), so they are
        stable across runs; isolated nodes keep their own id.
    """
    if max_rounds < 1:
        raise GraphError(f"max_rounds must be >= 1, got {max_rounds}")
    labels = list(range(graph.num_users))
    order = list(range(graph.num_users))
    rng = random.Random(seed) if seed is not None else None
    # Convert the CSR arrays to plain Python lists once, outside the round
    # loop: the old per-node ``graph.neighbours(user)`` + ``.tolist()`` boxed
    # every neighbour id into a fresh Python object on every visit of every
    # round, which dominated the runtime at large corpus sizes.  The
    # propagation itself is unchanged — same visit order, same in-round
    # label reads, same smallest-label tie break — so the returned partition
    # is identical.
    csr_offsets, csr_neighbours, csr_weights = graph.csr_arrays()
    starts = csr_offsets.tolist()
    neighbour_list = csr_neighbours.tolist()
    weight_list = csr_weights.tolist() if weighted else None
    for _ in range(max_rounds):
        if rng is not None:
            rng.shuffle(order)
        changed = False
        for user in order:
            start = starts[user]
            end = starts[user + 1]
            if start == end:
                continue
            scores: Dict[int, float] = {}
            if weighted:
                for neighbour, weight in zip(neighbour_list[start:end],
                                             weight_list[start:end]):
                    label = labels[neighbour]
                    scores[label] = scores.get(label, 0.0) + weight
            else:
                for neighbour in neighbour_list[start:end]:
                    label = labels[neighbour]
                    scores[label] = scores.get(label, 0.0) + 1.0
            top = max(scores.values())
            best = min(label for label, score in scores.items() if score >= top - 1e-12)
            if best != labels[user]:
                labels[user] = best
                changed = True
        if not changed:
            break
    return labels


def communities_from_labels(labels: Sequence[int]) -> List[List[int]]:
    """Group node ids by label; communities are returned largest first."""
    groups: Dict[int, List[int]] = {}
    for node, label in enumerate(labels):
        groups.setdefault(int(label), []).append(node)
    ordered = sorted(groups.values(), key=lambda members: (-len(members), members[0]))
    return [sorted(members) for members in ordered]


def modularity(graph: SocialGraph, labels: Sequence[int]) -> float:
    """Newman-Girvan modularity of a partition (unweighted degrees).

    ``Q = (1/2m) Σ_{uv} [A_uv − d_u d_v / 2m] · 1[label_u = label_v]``

    Returns 0.0 for an edgeless graph.
    """
    if len(labels) != graph.num_users:
        raise GraphError(
            f"labels must have one entry per node ({graph.num_users}), got {len(labels)}"
        )
    m = graph.num_edges
    if m == 0:
        return 0.0
    degrees = graph.degrees()
    # Edge term: fraction of edges inside communities.
    intra = 0
    for u, v, _ in graph.iter_edges():
        if labels[u] == labels[v]:
            intra += 1
    edge_fraction = intra / m
    # Degree term: expected intra fraction under the configuration model.
    degree_sums: Dict[int, float] = {}
    for node, label in enumerate(labels):
        degree_sums[int(label)] = degree_sums.get(int(label), 0.0) + float(degrees[node])
    expected = sum((total / (2.0 * m)) ** 2 for total in degree_sums.values())
    return edge_fraction - expected


def partition_statistics(graph: SocialGraph, labels: Sequence[int]) -> Dict[str, float]:
    """Summary of a partition: community count, sizes, modularity."""
    communities = communities_from_labels(labels)
    sizes = [len(community) for community in communities]
    return {
        "num_communities": float(len(communities)),
        "largest_community": float(max(sizes) if sizes else 0),
        "smallest_community": float(min(sizes) if sizes else 0),
        "mean_community_size": (sum(sizes) / len(sizes)) if sizes else 0.0,
        "modularity": modularity(graph, labels),
    }
