"""Synthetic dataset builders.

The ICDE-2013-era evaluations of social-aware search run on crawls of
del.icio.us, Flickr and similar sites.  Those crawls are proprietary or no
longer distributable, so — per the substitution rule in DESIGN.md — this
module builds *statistically matched* synthetic corpora instead:

* ``delicious_like`` — bookmark-style corpus: many items, a broad tag
  vocabulary, moderate homophily, preferential-attachment social graph.
* ``flickr_like`` — photo-style corpus: fewer, more popular items, a
  narrower vocabulary, stronger social imitation, denser graph.
* ``build_dataset`` — fully parameterised builder used by every benchmark
  sweep (scaling users, homophily, density, ...).

What matters for the algorithms is preserved: power-law degree and tag
popularity, posting-list skew, and a tunable correlation between social
proximity and shared tastes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..config import DatasetConfig
from ..graph import generate_graph
from ..storage.dataset import Dataset
from ..storage.items import Item, ItemStore
from ..storage.users import UserStore
from .tagging_model import TaggingModel


def build_dataset(config: DatasetConfig, holdout_fraction: float = 0.0) -> Dataset:
    """Build a complete synthetic :class:`~repro.storage.dataset.Dataset`.

    Parameters
    ----------
    config:
        Generation parameters (sizes, skews, homophily, seed).
    holdout_fraction:
        When positive, that fraction of every user's actions is withheld
        from the index and stored as relevance ground truth.
    """
    graph = generate_graph(config.graph_model, config.num_users, config.avg_degree,
                           seed=config.seed)
    model = TaggingModel(graph, config)
    actions = model.generate()

    items = ItemStore()
    for item_id in range(config.num_items):
        items.add(Item(item_id=item_id, title=f"{config.name}-item-{item_id}"))
    users = UserStore.with_placeholder_users(config.num_users)

    dataset = Dataset.build(graph, actions, name=config.name, users=users, items=items)
    if holdout_fraction > 0.0:
        dataset = dataset.with_holdout(holdout_fraction, seed=config.seed)
    return dataset


def delicious_like(scale: float = 1.0, seed: int = 7,
                   holdout_fraction: float = 0.0,
                   homophily: float = 0.55) -> Dataset:
    """Bookmark-style corpus (many items, broad vocabulary, moderate homophily)."""
    scale = max(0.05, float(scale))
    config = DatasetConfig(
        name="delicious-like",
        num_users=max(20, int(400 * scale)),
        num_items=max(50, int(1500 * scale)),
        num_tags=max(10, int(120 * scale)),
        num_actions=max(200, int(12000 * scale)),
        graph_model="barabasi-albert",
        avg_degree=10.0,
        tag_zipf_exponent=1.15,
        item_zipf_exponent=1.05,
        homophily=homophily,
        tags_per_item=2.5,
        seed=seed,
    )
    return build_dataset(config, holdout_fraction=holdout_fraction)


def flickr_like(scale: float = 1.0, seed: int = 17,
                holdout_fraction: float = 0.0,
                homophily: float = 0.7) -> Dataset:
    """Photo-style corpus (popular items, narrow vocabulary, strong imitation)."""
    scale = max(0.05, float(scale))
    config = DatasetConfig(
        name="flickr-like",
        num_users=max(20, int(300 * scale)),
        num_items=max(30, int(600 * scale)),
        num_tags=max(8, int(60 * scale)),
        num_actions=max(200, int(9000 * scale)),
        graph_model="watts-strogatz",
        avg_degree=14.0,
        tag_zipf_exponent=1.3,
        item_zipf_exponent=1.2,
        homophily=homophily,
        tags_per_item=3.0,
        seed=seed,
    )
    return build_dataset(config, holdout_fraction=holdout_fraction)


def tiny_dataset(seed: int = 3, homophily: float = 0.5,
                 holdout_fraction: float = 0.0) -> Dataset:
    """A very small corpus for unit tests and doc examples (fast to build)."""
    config = DatasetConfig(
        name="tiny",
        num_users=40,
        num_items=80,
        num_tags=12,
        num_actions=600,
        graph_model="barabasi-albert",
        avg_degree=6.0,
        homophily=homophily,
        seed=seed,
    )
    return build_dataset(config, holdout_fraction=holdout_fraction)


def scaled_config(num_users: int, seed: int = 23, homophily: float = 0.5,
                  actions_per_user: float = 25.0,
                  graph_model: str = "barabasi-albert",
                  name: Optional[str] = None) -> DatasetConfig:
    """The :func:`scaled_dataset` parameters without building the corpus.

    The streaming arena builder and the ``bench --suite scale`` sweep use
    this directly so that an out-of-core build at size N describes exactly
    the corpus ``scaled_dataset(N)`` would have materialised in memory.
    """
    return DatasetConfig(
        name=name or f"scaled-{num_users}",
        num_users=num_users,
        num_items=max(20, num_users * 3),
        num_tags=max(10, int(num_users * 0.25)),
        num_actions=max(100, int(num_users * actions_per_user)),
        graph_model=graph_model,
        avg_degree=min(12.0, max(4.0, num_users / 40.0)),
        homophily=homophily,
        seed=seed,
    )


def scaled_dataset(num_users: int, seed: int = 23, homophily: float = 0.5,
                   actions_per_user: float = 25.0,
                   graph_model: str = "barabasi-albert",
                   name: Optional[str] = None) -> Dataset:
    """A corpus whose size scales linearly with ``num_users`` (scalability sweeps)."""
    return build_dataset(scaled_config(
        num_users, seed=seed, homophily=homophily,
        actions_per_user=actions_per_user, graph_model=graph_model, name=name))


def homophily_sweep_dataset(homophily: float, scale: float = 0.5, seed: int = 31
                            ) -> Dataset:
    """A community-structured corpus re-generated with a specific homophily level.

    Uses the planted-partition graph model so that the social graph actually
    carries community structure for the homophily knob to exploit — the
    Figure-7 quality experiment sweeps this knob to show when "help from
    friends" beats global popularity.
    """
    base = DatasetConfig(
        name=f"homophily-{homophily:.2f}",
        num_users=max(20, int(400 * scale)),
        num_items=max(50, int(1500 * scale)),
        num_tags=max(10, int(120 * scale)),
        num_actions=max(200, int(12000 * scale)),
        graph_model="community",
        avg_degree=10.0,
        tag_zipf_exponent=1.15,
        homophily=homophily,
        tags_per_item=2.5,
        seed=seed,
    )
    return build_dataset(base, holdout_fraction=0.2)


def variant(config: DatasetConfig, **overrides) -> DatasetConfig:
    """Return a copy of ``config`` with the given fields replaced (sweep helper)."""
    return replace(config, **overrides)
