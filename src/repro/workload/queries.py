"""Query workload generation.

A workload is a list of :class:`~repro.core.query.Query` objects drawn from
a dataset.  Seekers are sampled either uniformly or proportionally to their
activity (active users query more), and query tags come from the seeker's
own tag profile (the realistic case: people search within their interests),
from global tag popularity, or uniformly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..config import WorkloadConfig
from ..core.query import Query
from ..errors import WorkloadError
from ..storage.dataset import Dataset
from .distributions import poisson_at_least_one
from .sampler import generator_distributions


class QueryWorkloadGenerator:
    """Draws reproducible query workloads from a dataset.

    Sampling distributions come from the store's action histograms via
    :func:`~repro.workload.sampler.generator_distributions` — three flat
    arrays, no per-user profile scans — so construction stays cheap on
    array-native stores.  Only the ``profile`` tag strategy reads a user's
    tag profile, and only for the seekers actually sampled.
    """

    def __init__(self, dataset: Dataset, config: Optional[WorkloadConfig] = None) -> None:
        self._dataset = dataset
        self._config = config or WorkloadConfig()
        self._rng = np.random.default_rng(self._config.seed)
        tag_table, activity, popularity = dataset.tagging.action_histograms(
            dataset.num_users)
        self._tags = tag_table
        if not self._tags:
            raise WorkloadError("cannot generate queries: the dataset has no tags")
        self._tag_probabilities, active_users, self._activity_probabilities = \
            generator_distributions(tag_table, activity, popularity)
        if active_users.size == 0:
            raise WorkloadError("cannot generate queries: the dataset has no active users")
        self._active_users = [int(user) for user in active_users]

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def _sample_seeker(self) -> int:
        if self._config.seeker_strategy == "uniform":
            return int(self._rng.integers(self._dataset.num_users))
        index = int(self._rng.choice(len(self._active_users),
                                     p=self._activity_probabilities))
        return self._active_users[index]

    def _sample_tags(self, seeker: int, count: int) -> List[str]:
        chosen: List[str] = []
        profile = self._dataset.tagging.tags_for_user(seeker)
        profile_tags = sorted(profile)
        attempts = 0
        while len(chosen) < count and attempts < count * 10 + 10:
            attempts += 1
            tag: Optional[str] = None
            if self._config.tag_strategy == "profile" and profile_tags:
                weights = np.array([profile[t] for t in profile_tags], dtype=np.float64)
                tag = profile_tags[int(self._rng.choice(len(profile_tags),
                                                        p=weights / weights.sum()))]
            elif self._config.tag_strategy == "uniform":
                tag = self._tags[int(self._rng.integers(len(self._tags)))]
            if tag is None:  # "popular" strategy or empty profile fallback
                tag = self._tags[int(self._rng.choice(len(self._tags),
                                                      p=self._tag_probabilities))]
            if tag not in chosen:
                chosen.append(tag)
        if not chosen:
            chosen.append(self._tags[0])
        return chosen

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #

    def generate(self, num_queries: Optional[int] = None,
                 k: Optional[int] = None) -> List[Query]:
        """Generate a workload (defaults taken from the configuration)."""
        if num_queries is None:
            num_queries = self._config.num_queries
        if k is None:
            k = self._config.k
        if num_queries < 1:
            raise WorkloadError(f"num_queries must be >= 1, got {num_queries}")
        queries: List[Query] = []
        for _ in range(num_queries):
            seeker = self._sample_seeker()
            count = poisson_at_least_one(self._rng, self._config.tags_per_query)
            tags = self._sample_tags(seeker, count)
            queries.append(Query(seeker=seeker, tags=tuple(tags), k=k))
        return queries


def generate_workload(dataset: Dataset, config: Optional[WorkloadConfig] = None,
                      num_queries: Optional[int] = None,
                      k: Optional[int] = None) -> List[Query]:
    """Convenience wrapper around :class:`QueryWorkloadGenerator`."""
    return QueryWorkloadGenerator(dataset, config).generate(num_queries=num_queries, k=k)


def queries_with_k(queries: Sequence[Query], k: int) -> List[Query]:
    """Return copies of ``queries`` with a different ``k`` (used by k-sweeps)."""
    return [Query(seeker=query.seeker, tags=query.tags, k=k) for query in queries]
