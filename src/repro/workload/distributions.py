"""Seeded samplers for skewed distributions.

Real tagging corpora are heavily skewed: a few tags and items absorb most of
the activity.  The generators therefore sample tags and items from Zipf-like
distributions whose exponent is a configuration knob, and every sampler is
deterministic under a fixed seed so experiments are reproducible bit for
bit.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import WorkloadError


class ZipfSampler:
    """Sample integers ``0 .. n-1`` with probability proportional to ``1/(rank+1)^s``."""

    def __init__(self, num_values: int, exponent: float, seed: int = 0) -> None:
        if num_values < 1:
            raise WorkloadError(f"num_values must be >= 1, got {num_values}")
        if exponent <= 0.0:
            raise WorkloadError(f"exponent must be positive, got {exponent}")
        self._num_values = num_values
        self._exponent = exponent
        self._rng = np.random.default_rng(seed)
        ranks = np.arange(1, num_values + 1, dtype=np.float64)
        weights = ranks ** (-exponent)
        self._probabilities = weights / weights.sum()
        # ``Generator.choice(n, p=...)`` rebuilds the cumulative distribution
        # on every draw (O(n) per sample); precomputing it once and inverting
        # with a binary search makes each draw O(log n).  The cdf is derived
        # exactly the way ``choice`` derives it internally (cumsum then
        # normalise by the last entry) and the inversion consumes one
        # ``random()`` double per draw, so the sample stream is bit-identical
        # to the ``choice`` path at every seed.
        self._cdf = self._probabilities.cumsum()
        self._cdf /= self._cdf[-1]

    @property
    def num_values(self) -> int:
        """Size of the sampled domain."""
        return self._num_values

    @property
    def probabilities(self) -> np.ndarray:
        """The full probability vector (rank order)."""
        return self._probabilities.copy()

    def sample(self) -> int:
        """Draw one value."""
        return int(self._cdf.searchsorted(self._rng.random(), side="right"))

    def sample_many(self, count: int) -> List[int]:
        """Draw ``count`` values."""
        if count < 0:
            raise WorkloadError(f"count must be non-negative, got {count}")
        return [int(v) for v in self._cdf.searchsorted(self._rng.random(count),
                                                       side="right")]


class UniformSampler:
    """Uniform sampler over ``0 .. n-1`` (seeded)."""

    def __init__(self, num_values: int, seed: int = 0) -> None:
        if num_values < 1:
            raise WorkloadError(f"num_values must be >= 1, got {num_values}")
        self._num_values = num_values
        self._rng = np.random.default_rng(seed)

    def sample(self) -> int:
        """Draw one value."""
        return int(self._rng.integers(self._num_values))

    def sample_many(self, count: int) -> List[int]:
        """Draw ``count`` values."""
        return [int(v) for v in self._rng.integers(self._num_values, size=count)]


class WeightedSampler:
    """Sample from an explicit weight vector (seeded)."""

    def __init__(self, weights: Sequence[float], seed: int = 0) -> None:
        weights = np.asarray(list(weights), dtype=np.float64)
        if weights.size == 0:
            raise WorkloadError("weights must be non-empty")
        if np.any(weights < 0):
            raise WorkloadError("weights must be non-negative")
        total = weights.sum()
        if total <= 0:
            raise WorkloadError("weights must not all be zero")
        self._probabilities = weights / total
        self._rng = np.random.default_rng(seed)

    def sample(self) -> int:
        """Draw one index."""
        return int(self._rng.choice(self._probabilities.size, p=self._probabilities))

    def sample_many(self, count: int) -> List[int]:
        """Draw ``count`` indices."""
        return [int(v) for v in self._rng.choice(self._probabilities.size, size=count,
                                                 p=self._probabilities)]


def poisson_at_least_one(rng: np.random.Generator, mean: float) -> int:
    """Sample ``max(1, Poisson(mean - 1) + 1)`` — a count that is never zero."""
    if mean <= 1.0:
        return 1
    return int(rng.poisson(mean - 1.0)) + 1


def truncated_power_law(rng: np.random.Generator, exponent: float, maximum: int) -> int:
    """Sample an integer in ``[1, maximum]`` with a power-law tail."""
    if maximum <= 1:
        return 1
    ranks = np.arange(1, maximum + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    probabilities = weights / weights.sum()
    return int(rng.choice(maximum, p=probabilities)) + 1


def make_tag_vocabulary(num_tags: int, prefix: str = "tag") -> List[str]:
    """Deterministic tag names ``tag-000 .. tag-(n-1)``."""
    if num_tags < 1:
        raise WorkloadError(f"num_tags must be >= 1, got {num_tags}")
    width = max(3, len(str(num_tags - 1)))
    return [f"{prefix}-{index:0{width}d}" for index in range(num_tags)]
