"""Histogram-driven workload sampling (the array-native path).

:class:`~repro.workload.queries.QueryWorkloadGenerator` walks per-user
Python dictionaries to build its sampling distributions, which at corpus
scale means materialising the whole store.  The functions here sample the
same default workload semantics — seekers drawn proportionally to their
activity, tags proportionally to popularity, a Poisson number of distinct
tags per query — from three plain arrays:

``tag_table``
    The distinct tags, indexable by tag id.
``activity``
    Per-user action counts (``activity[user_id]``).
``popularity``
    Per-tag action counts aligned with ``tag_table``.

Any store that can produce those histograms (``np.bincount`` over an
arena's mapped action log, a dict sweep over the in-memory store) plugs
into the same sampler, and equal histograms yield bit-identical workloads
regardless of which store produced them.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.query import Query
from ..errors import WorkloadError
from .distributions import poisson_at_least_one

__all__ = ["generator_distributions", "sample_workload", "dataset_workload"]


def generator_distributions(tag_table: Sequence[str],
                            activity: np.ndarray,
                            popularity: np.ndarray):
    """Smoothed sampling distributions from action histograms.

    The distributions :class:`~repro.workload.queries.QueryWorkloadGenerator`
    uses — tags weighted by ``popularity + 1``, active users (non-zero
    activity) weighted by ``activity + 1`` — computed from the same three
    histogram arrays :func:`sample_workload` consumes, so building a
    generator never walks per-user store structures.  Returns
    ``(tag_probabilities, active_users, activity_probabilities)``; the
    probability arrays are normalised and ``active_users`` is the sorted
    array of user ids with at least one action.
    """
    popularity = np.asarray(popularity, dtype=np.float64)
    if popularity.size != len(tag_table):
        raise WorkloadError(
            f"popularity has {popularity.size} entries for "
            f"{len(tag_table)} tags")
    tag_weights = popularity + 1.0
    tag_probabilities = tag_weights / tag_weights.sum() \
        if tag_weights.size else tag_weights
    activity = np.asarray(activity, dtype=np.float64)
    active_users = np.nonzero(activity > 0.0)[0]
    activity_weights = activity[active_users] + 1.0
    activity_probabilities = activity_weights / activity_weights.sum() \
        if activity_weights.size else activity_weights
    return tag_probabilities, active_users, activity_probabilities


def sample_workload(tag_table: Sequence[str],
                    activity: np.ndarray,
                    popularity: np.ndarray,
                    num_queries: int, k: int,
                    seed: int = 3,
                    tags_per_query: float = 2.0) -> List[Query]:
    """Sample ``num_queries`` queries from precomputed action histograms.

    Seekers are drawn with probability proportional to ``activity``, tags
    with probability proportional to ``popularity`` (deduplicated within a
    query), and the per-query tag count is Poisson with a floor of one.
    The draw sequence is fixed for a given ``seed``, so equal histograms
    produce equal workloads no matter how they were computed.
    """
    if num_queries < 1:
        raise WorkloadError(f"num_queries must be >= 1, got {num_queries}")
    if len(tag_table) == 0:
        raise WorkloadError("cannot sample queries: no tags in the corpus")
    activity = np.asarray(activity, dtype=np.float64)
    popularity = np.asarray(popularity, dtype=np.float64)
    if activity.size == 0 or float(activity.sum()) <= 0.0:
        raise WorkloadError("cannot sample queries: no user activity")
    if popularity.size != len(tag_table):
        raise WorkloadError(
            f"popularity has {popularity.size} entries for "
            f"{len(tag_table)} tags")
    if float(popularity.sum()) <= 0.0:
        raise WorkloadError("cannot sample queries: no tag activity")
    rng = np.random.default_rng(seed)
    seeker_cdf = activity.cumsum()
    seeker_cdf /= seeker_cdf[-1]
    tag_cdf = popularity.cumsum()
    tag_cdf /= tag_cdf[-1]
    queries: List[Query] = []
    for _ in range(num_queries):
        seeker = int(seeker_cdf.searchsorted(rng.random(), side="right"))
        count = poisson_at_least_one(rng, tags_per_query)
        chosen: List[str] = []
        attempts = 0
        while len(chosen) < count and attempts < count * 10 + 10:
            attempts += 1
            tag = tag_table[int(tag_cdf.searchsorted(rng.random(),
                                                     side="right"))]
            if tag not in chosen:
                chosen.append(tag)
        queries.append(Query(seeker=seeker, tags=tuple(chosen), k=k))
    return queries


def dataset_workload(dataset, num_queries: int, k: int,
                     seed: int = 3,
                     tags_per_query: float = 2.0) -> List[Query]:
    """Sample a workload from a dataset via its action histograms.

    Works against any tagging store exposing ``action_histograms`` —
    including :class:`~repro.storage.arena.ArenaTaggingStore`, where the
    histograms come from ``np.bincount`` over the mapped action arrays
    without materialising per-user structures.  Given the same actions,
    the workload is identical to
    :func:`~repro.eval.scale.arena_workload` on the equivalent arena.
    """
    tag_table, activity, popularity = dataset.tagging.action_histograms(
        dataset.num_users)
    return sample_workload(tag_table, activity, popularity,
                           num_queries=num_queries, k=k, seed=seed,
                           tags_per_query=tags_per_query)
