"""Homophily-driven tagging action generator.

The social signal the paper family exploits only exists when friends tag
similar things.  The generator models that explicitly: each tagging action
is produced by one of two processes,

* with probability ``homophily`` the acting user **copies** a random
  ``(item, tag)`` pair previously used by one of their direct friends
  (social imitation — the source of "help from my friends"), and
* otherwise the user samples an item and a tag from global Zipf
  distributions (independent interest), except that with probability
  ``homophily`` the item is drawn from the user's **community catalogue** —
  a community-specific permutation of the item popularity ranking shared
  with the user's neighbourhood.  This models the fact that groups of
  friends do not merely copy each other, they are interested in the same
  corner of the item space, so globally popular items are *not* the best
  predictor of what an individual will tag next.

Setting ``homophily = 0`` disables both mechanisms and yields a corpus where
the social graph carries no information about tastes — the natural control
condition for the quality experiments.

The model exposes two equivalent output shapes over one sampling core:

* :meth:`TaggingModel.generate` — the classic list of
  :class:`TaggingAction` objects (what :func:`build_dataset` consumes);
* :meth:`TaggingModel.generate_chunks` — the same action stream as bounded
  numpy record batches ``(user, item, tag_rank, timestamp)``, which is what
  the out-of-core arena builder consumes.  Both wrap the same per-action
  generator and therefore the same RNG call sequence, so at equal seeds the
  streams are identical action for action.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..config import DatasetConfig
from ..errors import WorkloadError
from ..graph import SocialGraph
from ..graph.partition import label_propagation
from ..storage.tagging import TaggingAction
from .distributions import ZipfSampler, make_tag_vocabulary, poisson_at_least_one

#: one streamed action: ``(user_id, item_id, tag_rank, timestamp)``.
ActionTuple = Tuple[int, int, int, int]


class TaggingModel:
    """Generates a stream of :class:`TaggingAction` over a given social graph."""

    def __init__(self, graph: SocialGraph, config: DatasetConfig) -> None:
        if config.num_users != graph.num_users:
            raise WorkloadError(
                f"config.num_users ({config.num_users}) does not match the graph "
                f"({graph.num_users})"
            )
        self._graph = graph
        self._config = config
        self._rng = np.random.default_rng(config.seed + 1)
        self._tags = make_tag_vocabulary(config.num_tags)
        self._tag_sampler = ZipfSampler(config.num_tags, config.tag_zipf_exponent,
                                        seed=config.seed + 2)
        self._item_sampler = ZipfSampler(config.num_items, config.item_zipf_exponent,
                                         seed=config.seed + 3)
        # Activity skew: a minority of users performs most actions, like in
        # real tagging sites.  Shuffle so activity is independent of node id
        # (node ids correlate with degree in preferential-attachment graphs).
        activity = np.arange(1, config.num_users + 1, dtype=np.float64) ** -1.05
        self._rng.shuffle(activity)
        self._user_probabilities = activity / activity.sum()
        # Precomputed cdf mirroring Generator.choice's internal derivation so
        # each user draw is one random() double + a binary search instead of
        # an O(num_users) cdf rebuild; bit-identical at every seed.
        self._user_cdf = self._user_probabilities.cumsum()
        self._user_cdf /= self._user_cdf[-1]
        #: per-user history, consulted by imitation.  Each entry packs one
        #: ``(item, tag_rank)`` pair into a single machine int
        #: (``item * num_tags + tag_rank``) inside an ``array('q')``, so a
        #: multi-million-action corpus costs 8 bytes per remembered action
        #: instead of a Python tuple + string per action.
        self._history: Dict[int, array] = {}
        #: per-user community label: users in the same neighbourhood share a
        #: label and therefore the same permuted item catalogue.
        self._community = label_propagation(graph, max_rounds=5, weighted=False)

    @property
    def tags(self) -> List[str]:
        """The generated tag vocabulary."""
        return list(self._tags)

    # ------------------------------------------------------------------ #
    # Sampling helpers
    # ------------------------------------------------------------------ #

    def _sample_user(self) -> int:
        return int(self._user_cdf.searchsorted(self._rng.random(), side="right"))

    def _community_item(self, user: int, rank: int) -> int:
        """Map a popularity rank into the user's community catalogue."""
        offset = (self._community[user] * 7919) % self._config.num_items
        return (rank + offset) % self._config.num_items

    def _community_tag(self, user: int, rank: int) -> int:
        """Map a popularity rank into the user's community vocabulary."""
        offset = (self._community[user] * 4409) % self._config.num_tags
        return (rank + offset) % self._config.num_tags

    def _sample_global_pair(self, user: int) -> Tuple[int, int]:
        rank = self._item_sampler.sample()
        if self._rng.random() < self._config.homophily:
            # Community interest: the same popularity curve, but over the
            # community's own corner of the item space.
            item = self._community_item(user, rank)
        else:
            item = rank
        tag_rank = self._tag_sampler.sample()
        if self._config.tag_locality > 0.0 \
                and self._rng.random() < self._config.tag_locality:
            # Community vocabulary: the group's own corner of the tag
            # space (guarded so tag_locality=0 consumes no RNG draws and
            # reproduces pre-knob corpora bit for bit).
            tag_rank = self._community_tag(user, tag_rank)
        return item, tag_rank

    def _sample_friend_pair(self, user: int) -> Optional[Tuple[int, int]]:
        """A random (item, tag_rank) pair from a random friend's history, if any."""
        neighbours = self._graph.neighbour_ids(user)
        if neighbours.shape[0] == 0:
            return None
        order = self._rng.permutation(neighbours.shape[0])
        for index in order.tolist():
            friend = int(neighbours[index])
            history = self._history.get(friend)
            if history:
                packed = history[int(self._rng.integers(len(history)))]
                return divmod(packed, self._config.num_tags)
        return None

    def _record(self, user: int, item: int, tag_rank: int) -> None:
        entries = self._history.get(user)
        if entries is None:
            entries = self._history[user] = array("q")
        entries.append(item * self._config.num_tags + tag_rank)

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #

    def _iter_actions(self, num_actions: int) -> Iterator[ActionTuple]:
        """The sampling core: yield exactly ``num_actions`` action tuples.

        Every RNG draw happens here in a fixed order, so any consumer —
        the in-memory list builder, the chunked streaming builder — sees
        the same action stream at the same seed.
        """
        emitted = 0
        timestamp = 0
        homophily = self._config.homophily
        tags_per_item = self._config.tags_per_item
        rng = self._rng
        while emitted < num_actions:
            user = self._sample_user()
            # Each "session" tags one item with a burst of tags.
            pair: Optional[Tuple[int, int]] = None
            if rng.random() < homophily:
                pair = self._sample_friend_pair(user)
            if pair is None:
                pair = self._sample_global_pair(user)
            item, first_tag = pair
            burst = poisson_at_least_one(rng, tags_per_item)
            session_tags = [first_tag]
            while len(session_tags) < burst:
                extra = self._tag_sampler.sample()
                if extra not in session_tags:
                    session_tags.append(extra)
                else:
                    break
            for tag_rank in session_tags:
                yield (user, item, tag_rank, timestamp)
                timestamp += 1
                emitted += 1
                self._record(user, item, tag_rank)
                if emitted >= num_actions:
                    break

    def _checked_num_actions(self, num_actions: Optional[int]) -> int:
        if num_actions is None:
            num_actions = self._config.num_actions
        if num_actions < 1:
            raise WorkloadError(f"num_actions must be >= 1, got {num_actions}")
        return num_actions

    def generate(self, num_actions: Optional[int] = None) -> List[TaggingAction]:
        """Generate ``num_actions`` tagging actions (default from the config)."""
        num_actions = self._checked_num_actions(num_actions)
        tags = self._tags
        return [
            TaggingAction(user_id=user, item_id=item, tag=tags[tag_rank],
                          timestamp=timestamp)
            for user, item, tag_rank, timestamp in self._iter_actions(num_actions)
        ]

    def generate_chunks(self, chunk_size: int,
                        num_actions: Optional[int] = None
                        ) -> Iterator[Dict[str, np.ndarray]]:
        """Yield the action stream as bounded numpy record batches.

        Each batch is a dict of equal-length int64 arrays ``user_ids`` /
        ``item_ids`` / ``tag_ranks`` / ``timestamps`` with at most
        ``chunk_size`` rows.  Concatenating all batches reproduces
        :meth:`generate` exactly (same seed → same actions in the same
        order, with ``tag_ranks`` indexing :attr:`tags`).
        """
        if chunk_size < 1:
            raise WorkloadError(f"chunk_size must be >= 1, got {chunk_size}")
        num_actions = self._checked_num_actions(num_actions)
        users = array("q")
        items = array("q")
        ranks = array("q")
        stamps = array("q")
        columns = (users, items, ranks, stamps)

        def flush() -> Dict[str, np.ndarray]:
            batch = {
                "user_ids": np.frombuffer(users, dtype=np.int64).copy(),
                "item_ids": np.frombuffer(items, dtype=np.int64).copy(),
                "tag_ranks": np.frombuffer(ranks, dtype=np.int64).copy(),
                "timestamps": np.frombuffer(stamps, dtype=np.int64).copy(),
            }
            for column in columns:
                del column[:]
            return batch

        for user, item, tag_rank, timestamp in self._iter_actions(num_actions):
            users.append(user)
            items.append(item)
            ranks.append(tag_rank)
            stamps.append(timestamp)
            if len(users) >= chunk_size:
                yield flush()
        if users:
            yield flush()


def generate_actions(graph: SocialGraph, config: DatasetConfig,
                     num_actions: Optional[int] = None) -> List[TaggingAction]:
    """Convenience wrapper: build a :class:`TaggingModel` and generate actions."""
    return TaggingModel(graph, config).generate(num_actions)
