"""Homophily-driven tagging action generator.

The social signal the paper family exploits only exists when friends tag
similar things.  The generator models that explicitly: each tagging action
is produced by one of two processes,

* with probability ``homophily`` the acting user **copies** a random
  ``(item, tag)`` pair previously used by one of their direct friends
  (social imitation — the source of "help from my friends"), and
* otherwise the user samples an item and a tag from global Zipf
  distributions (independent interest), except that with probability
  ``homophily`` the item is drawn from the user's **community catalogue** —
  a community-specific permutation of the item popularity ranking shared
  with the user's neighbourhood.  This models the fact that groups of
  friends do not merely copy each other, they are interested in the same
  corner of the item space, so globally popular items are *not* the best
  predictor of what an individual will tag next.

Setting ``homophily = 0`` disables both mechanisms and yields a corpus where
the social graph carries no information about tastes — the natural control
condition for the quality experiments.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import DatasetConfig
from ..errors import WorkloadError
from ..graph import SocialGraph
from ..graph.partition import label_propagation
from ..storage.tagging import TaggingAction
from .distributions import ZipfSampler, make_tag_vocabulary, poisson_at_least_one


class TaggingModel:
    """Generates a stream of :class:`TaggingAction` over a given social graph."""

    def __init__(self, graph: SocialGraph, config: DatasetConfig) -> None:
        if config.num_users != graph.num_users:
            raise WorkloadError(
                f"config.num_users ({config.num_users}) does not match the graph "
                f"({graph.num_users})"
            )
        self._graph = graph
        self._config = config
        self._rng = np.random.default_rng(config.seed + 1)
        self._tags = make_tag_vocabulary(config.num_tags)
        self._tag_sampler = ZipfSampler(config.num_tags, config.tag_zipf_exponent,
                                        seed=config.seed + 2)
        self._item_sampler = ZipfSampler(config.num_items, config.item_zipf_exponent,
                                         seed=config.seed + 3)
        # Activity skew: a minority of users performs most actions, like in
        # real tagging sites.  Shuffle so activity is independent of node id
        # (node ids correlate with degree in preferential-attachment graphs).
        activity = np.arange(1, config.num_users + 1, dtype=np.float64) ** -1.05
        self._rng.shuffle(activity)
        self._user_probabilities = activity / activity.sum()
        #: per-user history of (item, tag) pairs, consulted by imitation.
        self._history: Dict[int, List[Tuple[int, str]]] = {}
        #: per-user community label: users in the same neighbourhood share a
        #: label and therefore the same permuted item catalogue.
        self._community = label_propagation(graph, max_rounds=5, weighted=False)

    @property
    def tags(self) -> List[str]:
        """The generated tag vocabulary."""
        return list(self._tags)

    # ------------------------------------------------------------------ #
    # Sampling helpers
    # ------------------------------------------------------------------ #

    def _sample_user(self) -> int:
        return int(self._rng.choice(self._config.num_users, p=self._user_probabilities))

    def _community_item(self, user: int, rank: int) -> int:
        """Map a popularity rank into the user's community catalogue."""
        offset = (self._community[user] * 7919) % self._config.num_items
        return (rank + offset) % self._config.num_items

    def _community_tag(self, user: int, rank: int) -> int:
        """Map a popularity rank into the user's community vocabulary."""
        offset = (self._community[user] * 4409) % self._config.num_tags
        return (rank + offset) % self._config.num_tags

    def _sample_global_pair(self, user: int) -> Tuple[int, str]:
        rank = self._item_sampler.sample()
        if self._rng.random() < self._config.homophily:
            # Community interest: the same popularity curve, but over the
            # community's own corner of the item space.
            item = self._community_item(user, rank)
        else:
            item = rank
        tag_rank = self._tag_sampler.sample()
        if self._config.tag_locality > 0.0 \
                and self._rng.random() < self._config.tag_locality:
            # Community vocabulary: the group's own corner of the tag
            # space (guarded so tag_locality=0 consumes no RNG draws and
            # reproduces pre-knob corpora bit for bit).
            tag_rank = self._community_tag(user, tag_rank)
        tag = self._tags[tag_rank]
        return item, tag

    def _sample_friend_pair(self, user: int) -> Optional[Tuple[int, str]]:
        """A random (item, tag) pair from a random friend's history, if any."""
        neighbours = self._graph.neighbour_ids(user)
        if neighbours.shape[0] == 0:
            return None
        order = self._rng.permutation(neighbours.shape[0])
        for index in order.tolist():
            friend = int(neighbours[index])
            history = self._history.get(friend)
            if history:
                return history[int(self._rng.integers(len(history)))]
        return None

    def _record(self, user: int, item: int, tag: str) -> None:
        self._history.setdefault(user, []).append((item, tag))

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #

    def generate(self, num_actions: Optional[int] = None) -> List[TaggingAction]:
        """Generate ``num_actions`` tagging actions (default from the config)."""
        if num_actions is None:
            num_actions = self._config.num_actions
        if num_actions < 1:
            raise WorkloadError(f"num_actions must be >= 1, got {num_actions}")
        actions: List[TaggingAction] = []
        timestamp = 0
        while len(actions) < num_actions:
            user = self._sample_user()
            # Each "session" tags one item with a burst of tags.
            pair: Optional[Tuple[int, str]] = None
            if self._rng.random() < self._config.homophily:
                pair = self._sample_friend_pair(user)
            if pair is None:
                pair = self._sample_global_pair(user)
            item, first_tag = pair
            burst = poisson_at_least_one(self._rng, self._config.tags_per_item)
            session_tags = [first_tag]
            while len(session_tags) < burst:
                extra = self._tags[self._tag_sampler.sample()]
                if extra not in session_tags:
                    session_tags.append(extra)
                else:
                    break
            for tag in session_tags:
                actions.append(TaggingAction(user_id=user, item_id=item, tag=tag,
                                             timestamp=timestamp))
                timestamp += 1
                self._record(user, item, tag)
                if len(actions) >= num_actions:
                    break
        return actions


def generate_actions(graph: SocialGraph, config: DatasetConfig,
                     num_actions: Optional[int] = None) -> List[TaggingAction]:
    """Convenience wrapper: build a :class:`TaggingModel` and generate actions."""
    return TaggingModel(graph, config).generate(num_actions)
