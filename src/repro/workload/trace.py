"""Query-trace persistence.

Workloads can be saved to and replayed from JSON-lines traces, so a
benchmark run can be repeated on exactly the same queries (or shared
between machines) without re-seeding the generators.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from ..core.query import Query
from ..errors import PersistenceError

PathLike = Union[str, Path]


def save_queries(queries: Iterable[Query], path: PathLike) -> int:
    """Write queries as JSON lines; returns the number written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for query in queries:
            handle.write(json.dumps(query.to_dict(), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def load_queries(path: PathLike) -> List[Query]:
    """Read a query trace written by :func:`save_queries`."""
    path = Path(path)
    queries: List[Query] = []
    try:
        with path.open("r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    queries.append(Query(
                        seeker=int(record["seeker"]),
                        tags=tuple(str(tag) for tag in record["tags"]),
                        k=int(record.get("k", 10)),
                    ))
                except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                    raise PersistenceError(
                        f"{path}:{lineno}: malformed query record: {exc}"
                    ) from exc
    except OSError as exc:
        raise PersistenceError(f"failed to read query trace {path}: {exc}") from exc
    return queries
