"""Synthetic data and workload generation (the substitute for paper-era crawls)."""

from .distributions import (
    UniformSampler,
    WeightedSampler,
    ZipfSampler,
    make_tag_vocabulary,
    poisson_at_least_one,
    truncated_power_law,
)
from .tagging_model import TaggingModel, generate_actions
from .datasets import (
    build_dataset,
    delicious_like,
    flickr_like,
    homophily_sweep_dataset,
    scaled_dataset,
    tiny_dataset,
    variant,
)
from .queries import QueryWorkloadGenerator, generate_workload, queries_with_k
from .sampler import dataset_workload, sample_workload
from .trace import load_queries, save_queries

__all__ = [
    "ZipfSampler",
    "UniformSampler",
    "WeightedSampler",
    "make_tag_vocabulary",
    "poisson_at_least_one",
    "truncated_power_law",
    "TaggingModel",
    "generate_actions",
    "build_dataset",
    "delicious_like",
    "flickr_like",
    "tiny_dataset",
    "scaled_dataset",
    "homophily_sweep_dataset",
    "variant",
    "QueryWorkloadGenerator",
    "generate_workload",
    "queries_with_k",
    "sample_workload",
    "dataset_workload",
    "load_queries",
    "save_queries",
]
