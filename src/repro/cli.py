"""Command-line interface.

``python -m repro`` (or the ``repro`` console script) exposes the library's
main flows without writing any Python:

* ``repro demo`` — build a small synthetic corpus and answer one query with
  every algorithm, printing the comparison table.
* ``repro generate`` — build a synthetic dataset and save it as a snapshot.
* ``repro query`` — load a snapshot and answer an ad-hoc query.
* ``repro bench`` — run a small latency/quality comparison over a workload.
* ``repro serve`` — expose a dataset behind the concurrent JSON HTTP API.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .config import (
    DatasetConfig,
    EngineConfig,
    ProximityConfig,
    ScoringConfig,
    ServiceConfig,
    WorkloadConfig,
)
from .core.engine import SocialSearchEngine
from .core.topk.base import available_algorithms
from .eval.runner import ExperimentRunner
from .eval.tables import format_table
from .storage.persistence import load_dataset, save_dataset
from .workload.datasets import build_dataset, delicious_like
from .workload.queries import generate_workload


def _engine_config(args: argparse.Namespace) -> EngineConfig:
    return EngineConfig(
        algorithm=args.algorithm,
        scoring=ScoringConfig(alpha=args.alpha,
                              vectorized=not getattr(args, "scalar", False)),
        proximity=ProximityConfig(measure=args.proximity),
    )


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--alpha", type=float, default=0.5,
                        help="textual weight in [0, 1] (default: 0.5)")
    parser.add_argument("--algorithm", default="social-first",
                        help="default top-k algorithm (default: social-first)")
    parser.add_argument("--proximity", default="shortest-path",
                        help="proximity measure (default: shortest-path)")
    parser.add_argument("--scalar", action="store_true",
                        help="disable the vectorized numpy scoring kernels "
                             "(scalar fallback; identical results, slower)")


def _command_demo(args: argparse.Namespace) -> int:
    dataset = delicious_like(scale=args.scale, seed=args.seed)
    engine = SocialSearchEngine(dataset, _engine_config(args))
    print(dataset.describe())
    queries = generate_workload(dataset, WorkloadConfig(num_queries=1, k=args.k,
                                                        seed=args.seed))
    query = queries[0]
    print(f"\nquery: seeker={query.seeker} tags={list(query.tags)} k={query.k}\n")
    rows = []
    for algorithm in sorted(available_algorithms()):
        result = engine.run(query, algorithm=algorithm)
        row = {"algorithm": algorithm,
               "latency_ms": result.latency_seconds * 1000.0,
               "early_stop": result.terminated_early}
        row.update(result.accounting.to_dict())
        rows.append(row)
    print(format_table(rows, columns=["algorithm", "latency_ms", "early_stop",
                                      "sequential_accesses", "random_accesses",
                                      "social_accesses", "users_visited"]))
    print("\n" + engine.explain(engine.run(query)))
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    config = DatasetConfig(
        name=args.name,
        num_users=args.users,
        num_items=args.items,
        num_tags=args.tags,
        num_actions=args.actions,
        homophily=args.homophily,
        seed=args.seed,
    )
    dataset = build_dataset(config)
    save_dataset(dataset, args.output)
    print(f"wrote snapshot to {args.output}: {dataset.describe()}")
    return 0


def _command_query(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.snapshot)
    engine = SocialSearchEngine(dataset, _engine_config(args))
    result = engine.search(args.seeker, args.tags, k=args.k, algorithm=args.algorithm)
    print(engine.explain(result))
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    if args.suite:
        return _run_bench_suite(args)
    dataset = delicious_like(scale=args.scale, seed=args.seed,
                             holdout_fraction=args.holdout)
    engine = SocialSearchEngine(dataset, _engine_config(args))
    queries = generate_workload(dataset, WorkloadConfig(num_queries=args.queries,
                                                        k=args.k, seed=args.seed))
    algorithms = args.algorithms or ["exact", "ta", "nra", "social-first", "global"]
    runner = ExperimentRunner(engine)
    report = runner.run(queries, algorithms)
    print(dataset.describe())
    print()
    print(format_table(report.rows()))
    return 0


def _run_bench_suite(args: argparse.Namespace) -> int:
    """Headless ``bench_fig*``-style suite with machine-readable output."""
    from .eval.bench import DEFAULT_ALGORITHMS, format_report, run_topk_suite, write_report

    if args.scalar:
        # The suite always measures both modes (the speedup IS the point);
        # silently benchmarking something else than asked would be worse
        # than refusing.
        print("--scalar has no effect with --suite: the suite benchmarks "
              "both the vectorized and the scalar exact path")
        return 1
    report = run_topk_suite(
        num_users=args.users,
        num_queries=args.queries,
        k=args.k,
        rounds=args.rounds,
        alpha=args.alpha,
        measure=args.proximity,
        algorithms=tuple(args.algorithms) if args.algorithms else DEFAULT_ALGORITHMS,
        seed=args.seed,
    )
    print(format_report(report))
    if args.json:
        path = write_report(report, args.json)
        print(f"wrote {path}")
    speedup = float(report["speedup_vectorized_exact"])
    if args.min_speedup > 0.0 and speedup < args.min_speedup:
        print(f"FAIL: vectorized exact speedup {speedup:.2f}x is below the "
              f"required {args.min_speedup:.2f}x")
        return 1
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    # Imported here so the plain library commands never pay for the service
    # package.
    from .service import QueryService
    from .service.http_api import serve_forever

    if args.snapshot:
        dataset = load_dataset(args.snapshot)
    else:
        dataset = delicious_like(scale=args.scale, seed=args.seed)
    engine = SocialSearchEngine(dataset, _engine_config(args))
    config = ServiceConfig(
        workers=args.workers,
        cache_capacity=args.cache_capacity,
        cache_ttl_seconds=args.ttl,
        host=args.host,
        port=args.port,
    )
    service = QueryService(engine, config)
    print(dataset.describe())
    serve_forever(service, host=config.host, port=config.port)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Social-aware top-k search (reproduction of 'With a little "
                    "help from my friends', ICDE 2013)",
    )
    subparsers = parser.add_subparsers(dest="command")

    demo = subparsers.add_parser("demo", help="run an end-to-end demo on synthetic data")
    demo.add_argument("--scale", type=float, default=0.3, help="dataset scale factor")
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument("--k", type=int, default=10)
    _add_engine_arguments(demo)
    demo.set_defaults(handler=_command_demo)

    generate = subparsers.add_parser("generate", help="generate and save a synthetic dataset")
    generate.add_argument("output", help="snapshot directory to create")
    generate.add_argument("--name", default="synthetic")
    generate.add_argument("--users", type=int, default=400)
    generate.add_argument("--items", type=int, default=1500)
    generate.add_argument("--tags", type=int, default=120)
    generate.add_argument("--actions", type=int, default=12000)
    generate.add_argument("--homophily", type=float, default=0.5)
    generate.add_argument("--seed", type=int, default=7)
    generate.set_defaults(handler=_command_generate)

    query = subparsers.add_parser("query", help="answer one query over a saved snapshot")
    query.add_argument("snapshot", help="snapshot directory written by 'repro generate'")
    query.add_argument("seeker", type=int, help="seeker user id")
    query.add_argument("tags", nargs="+", help="query tags")
    query.add_argument("--k", type=int, default=10)
    _add_engine_arguments(query)
    query.set_defaults(handler=_command_query)

    bench = subparsers.add_parser(
        "bench", help="run a small algorithm comparison, or the headless "
                      "benchmark suite with --suite")
    bench.add_argument("--scale", type=float, default=0.3,
                       help="comparison-mode dataset scale (the suite sizes "
                            "its corpus with --users instead)")
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument("--queries", type=int, default=20)
    bench.add_argument("--k", type=int, default=10)
    bench.add_argument("--holdout", type=float, default=0.2,
                       help="comparison-mode holdout fraction (unused by --suite)")
    bench.add_argument("--algorithms", nargs="*", default=None,
                       help="algorithms to measure (both modes)")
    bench.add_argument("--suite", action="store_true",
                       help="run the headless bench_fig*-style top-k suite "
                            "(p50/p95/qps + vectorized-vs-scalar speedup)")
    bench.add_argument("--users", type=int, default=200,
                       help="suite dataset size in users (default: 200, the "
                            "Figure-6 medium point)")
    bench.add_argument("--rounds", type=int, default=3,
                       help="suite timing passes over the workload (default: 3)")
    bench.add_argument("--json", default=None, metavar="PATH",
                       help="suite: write the machine-readable report here "
                            "(e.g. benchmarks/results/BENCH_topk.json)")
    bench.add_argument("--min-speedup", type=float, default=0.0,
                       help="suite: exit non-zero when the vectorized exact "
                            "speedup falls below this factor (CI smoke gate)")
    _add_engine_arguments(bench)
    bench.set_defaults(handler=_command_bench)

    serve = subparsers.add_parser(
        "serve", help="serve queries over a JSON HTTP API with caching")
    serve.add_argument("--snapshot", default=None,
                       help="snapshot directory written by 'repro generate' "
                            "(default: synthetic delicious-like corpus)")
    serve.add_argument("--scale", type=float, default=0.3,
                       help="synthetic dataset scale when no snapshot is given")
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port (0 picks an ephemeral port)")
    serve.add_argument("--workers", type=int, default=4,
                       help="query executor threads (default: 4)")
    serve.add_argument("--cache-capacity", type=int, default=1024,
                       help="result cache entries, 0 disables (default: 1024)")
    serve.add_argument("--ttl", type=float, default=300.0,
                       help="result cache TTL in seconds, 0 = no expiry")
    _add_engine_arguments(serve)
    serve.set_defaults(handler=_command_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "handler", None):
        parser.print_help()
        return 1
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
