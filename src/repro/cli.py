"""Command-line interface.

``python -m repro`` (or the ``repro`` console script) exposes the library's
main flows without writing any Python:

* ``repro demo`` — build a small synthetic corpus and answer one query with
  every algorithm, printing the comparison table.
* ``repro generate`` — build a synthetic dataset and save it as a snapshot.
* ``repro query`` — load a snapshot and answer an ad-hoc query.
* ``repro explain`` — print the planner's execution plan for a query
  (storage backing, proximity path, executor, partition fan-out, bound
  estimates) without executing it.
* ``repro bench`` — run a small latency/quality comparison over a workload,
  or the headless suites (``--suite topk`` / ``proximity`` / ``updates`` /
  ``partitioned`` / ``durability`` / ``scale`` / ``anytime``).
* ``repro build-arena`` — serialise a dataset (and optionally materialized
  proximity shards) into the memory-mapped index arena.
* ``repro serve`` — expose a dataset behind the concurrent JSON HTTP API
  (``--arena`` for mmap cold start, ``--warmup N`` for cache pre-population).
* ``repro profile`` — cProfile a batched run over a query trace and print
  the top cumulative hotspots.
* ``repro lint`` — run the repo's static-analysis rules (lock discipline,
  byte-identity, durability ordering, RNG determinism, hot-path
  materialisation) and gate against the committed baseline.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .config import (
    DatasetConfig,
    EngineConfig,
    ProximityConfig,
    ScoringConfig,
    ServiceConfig,
    WorkloadConfig,
)
from .core.engine import SocialSearchEngine
from .core.topk.base import available_algorithms
from .eval.runner import ExperimentRunner
from .eval.tables import format_table
from .storage.persistence import load_dataset, save_dataset
from .workload.datasets import build_dataset, delicious_like
from .workload.queries import generate_workload


def _engine_config(args: argparse.Namespace) -> EngineConfig:
    return EngineConfig(
        algorithm=args.algorithm,
        scoring=ScoringConfig(alpha=args.alpha,
                              vectorized=not getattr(args, "scalar", False)),
        proximity=ProximityConfig(
            measure=args.proximity,
            materialize=getattr(args, "materialize", False),
            cluster_rounds=getattr(args, "cluster_rounds", 5),
        ),
        partitions=getattr(args, "partitions", 1),
    )


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--alpha", type=float, default=0.5,
                        help="textual weight in [0, 1] (default: 0.5)")
    parser.add_argument("--algorithm", default="social-first",
                        help="default top-k algorithm (default: social-first)")
    parser.add_argument("--proximity", default="shortest-path",
                        help="proximity measure (default: shortest-path)")
    parser.add_argument("--scalar", action="store_true",
                        help="disable the vectorized numpy scoring kernels "
                             "(scalar fallback; identical results, slower)")
    parser.add_argument("--partitions", type=int, default=1,
                        help="item shards for scatter-gather execution of "
                             "the exact scan (default: 1 = classic "
                             "single-partition layout; results are "
                             "identical at any setting)")


def _command_demo(args: argparse.Namespace) -> int:
    dataset = delicious_like(scale=args.scale, seed=args.seed)
    engine = SocialSearchEngine(dataset, _engine_config(args))
    print(dataset.describe())
    queries = generate_workload(dataset, WorkloadConfig(num_queries=1, k=args.k,
                                                        seed=args.seed))
    query = queries[0]
    print(f"\nquery: seeker={query.seeker} tags={list(query.tags)} k={query.k}\n")
    rows = []
    for algorithm in sorted(available_algorithms()):
        result = engine.run(query, algorithm=algorithm)
        row = {"algorithm": algorithm,
               "latency_ms": result.latency_seconds * 1000.0,
               "early_stop": result.terminated_early}
        row.update(result.accounting.to_dict())
        rows.append(row)
    print(format_table(rows, columns=["algorithm", "latency_ms", "early_stop",
                                      "sequential_accesses", "random_accesses",
                                      "social_accesses", "users_visited"]))
    print("\n" + engine.explain(engine.run(query)))
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    config = DatasetConfig(
        name=args.name,
        num_users=args.users,
        num_items=args.items,
        num_tags=args.tags,
        num_actions=args.actions,
        homophily=args.homophily,
        seed=args.seed,
    )
    dataset = build_dataset(config)
    save_dataset(dataset, args.output)
    print(f"wrote snapshot to {args.output}: {dataset.describe()}")
    return 0


def _command_query(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.snapshot)
    engine = SocialSearchEngine(dataset, _engine_config(args))
    result = engine.search(args.seeker, args.tags, k=args.k, algorithm=args.algorithm)
    print(engine.explain(result))
    return 0


def _command_explain(args: argparse.Namespace) -> int:
    """Print the planner's execution plan for a query without running it.

    With ``--analyze`` the query is *executed* under a fresh tracer and the
    plan is followed by the recorded span tree — per-stage wall-clock
    timings, per-shard scan/prune counts and the share of the wall time
    each stage covers (EXPLAIN ANALYZE).
    """
    from .core.query import Query

    dataset = _load_serving_dataset(args)
    engine = SocialSearchEngine(dataset, _engine_config(args))
    if args.materialize and args.build_shards:
        engine.proximity.build()
    query = Query(seeker=args.seeker, tags=tuple(args.tags), k=args.k)
    plan = engine.explain_plan(query, algorithm=args.algorithm)
    print(plan.describe())
    if not args.analyze:
        return 0

    import time as _time

    from .obs.trace import Tracer, render_tree, use

    with use(Tracer(sample_rate=1.0)) as tracer:
        started = _time.perf_counter()
        result = engine.run(query, algorithm=args.algorithm)
        wall = _time.perf_counter() - started
    trace = tracer.last()
    if trace is None:
        print("\nno trace recorded (instrumentation disabled?)")
        return 1
    print(f"\nEXPLAIN ANALYZE  wall={wall * 1000.0:.3f} ms  "
          f"algorithm={result.algorithm}  results={len(result.items)}")
    print(render_tree(trace, wall_seconds=wall))
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            handle.write(trace.to_jsonl())
        print(f"wrote span JSONL to {args.trace_out}")
    if args.chrome_trace:
        with open(args.chrome_trace, "w", encoding="utf-8") as handle:
            handle.write(trace.to_chrome())
        print(f"wrote Chrome trace_event file to {args.chrome_trace} "
              "(load via chrome://tracing or https://ui.perfetto.dev)")
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    if args.suite:
        return _run_bench_suite(args)
    dataset = delicious_like(scale=args.scale, seed=args.seed,
                             holdout_fraction=args.holdout)
    engine = SocialSearchEngine(dataset, _engine_config(args))
    queries = generate_workload(dataset, WorkloadConfig(num_queries=args.queries,
                                                        k=args.k, seed=args.seed))
    algorithms = args.algorithms or ["exact", "ta", "nra", "social-first", "global"]
    runner = ExperimentRunner(engine)
    report = runner.run(queries, algorithms)
    print(dataset.describe())
    print()
    print(format_table(report.rows()))
    return 0


def _run_bench_suite(args: argparse.Namespace) -> int:
    """Headless ``bench_fig*``-style suites with machine-readable output."""
    from .eval.bench import DEFAULT_ALGORITHMS, format_report, run_topk_suite, write_report

    if args.scalar:
        # The suite always measures both modes (the speedup IS the point);
        # silently benchmarking something else than asked would be worse
        # than refusing.
        print("--scalar has no effect with --suite: the suite benchmarks "
              "both the vectorized and the scalar exact path")
        return 1
    if args.suite == "proximity":
        return _run_proximity_suite(args)
    if args.suite == "updates":
        return _run_updates_suite(args)
    if args.suite == "partitioned":
        return _run_partitioned_suite(args)
    if args.suite == "durability":
        return _run_durability_suite(args)
    if args.suite == "scale":
        return _run_scale_suite(args)
    if args.suite == "anytime":
        return _run_anytime_suite(args)
    report = run_topk_suite(
        num_users=args.users,
        num_queries=args.queries,
        k=args.k,
        rounds=args.rounds,
        alpha=args.alpha,
        measure=args.proximity,
        algorithms=tuple(args.algorithms) if args.algorithms else DEFAULT_ALGORITHMS,
        seed=args.seed,
        instrumentation=(args.max_trace_overhead > 0.0
                         or bool(args.trace_jsonl)),
        trace_jsonl=args.trace_jsonl,
    )
    print(format_report(report))
    if args.trace_jsonl:
        written = report.get("instrumentation", {}).get("trace_jsonl")
        if written:
            print(f"wrote sample trace to {written}")
    if args.json:
        path = write_report(report, args.json)
        print(f"wrote {path}")
    speedup = float(report["speedup_vectorized_exact"])
    if args.min_speedup > 0.0 and speedup < args.min_speedup:
        print(f"FAIL: vectorized exact speedup {speedup:.2f}x is below the "
              f"required {args.min_speedup:.2f}x")
        return 1
    if args.max_trace_overhead > 0.0:
        overhead = float(report["instrumentation"]["overhead_disabled"])  # type: ignore[index]
        if overhead > args.max_trace_overhead:
            print(f"FAIL: disabled-tracer p50 is {overhead:.3f}x the "
                  f"never-traced p50, above the allowed "
                  f"{args.max_trace_overhead:.3f}x instrumentation budget "
                  "(tracer state leaking into the disabled path?)")
            return 1
    return 0


def _run_proximity_suite(args: argparse.Namespace) -> int:
    """Materialization/arena/batching suite with its equivalence gate."""
    from .eval.bench import format_proximity_report, run_proximity_suite, write_report

    measure = args.proximity
    if measure == "shortest-path":
        # The suite's cold-seeker comparison targets measures whose online
        # cost is a full per-seeker computation (the paper's PPR case);
        # shortest-path streams lazily and has no comparable cold cost.
        measure = "ppr"
        print("proximity suite: using measure 'ppr' "
              "(the shortest-path default streams lazily and has no "
              "cold-seeker cost to materialize away)")
    report = run_proximity_suite(
        num_users=args.users,
        num_queries=args.queries,
        k=args.k,
        rounds=args.rounds,
        alpha=args.alpha,
        measure=measure,
        seed=args.seed,
    )
    print(format_proximity_report(report))
    if args.json:
        path = write_report(report, args.json)
        print(f"wrote {path}")
    if not report["equivalent"]:
        print("FAIL: materialized/batched rankings diverge from the online path")
        return 1
    speedup = float(report["speedup_cold_seeker"])
    if args.min_speedup > 0.0 and speedup < args.min_speedup:
        print(f"FAIL: cold-seeker speedup {speedup:.2f}x is below the "
              f"required {args.min_speedup:.2f}x")
        return 1
    return 0


def _run_updates_suite(args: argparse.Namespace) -> int:
    """Live-update suite: interleaved query/update trace + rebuild gate."""
    from .eval.bench import format_updates_report, run_updates_suite, write_report

    measure = args.proximity
    if measure not in ("katz", "common-neighbours", "adamic-adar", "jaccard"):
        # The suite exercises the *incremental* friendship path, which
        # exists for hop-bounded measures with a real per-seeker vector
        # cost; global measures fall back to a full invalidation and
        # shortest-path (the argparse default) streams lazily.
        measure = "katz"
        if args.proximity != "shortest-path":
            print("updates suite: using measure 'katz' (the incremental "
                  "friendship-repair path needs a hop-bounded measure)")
    report = run_updates_suite(
        num_users=args.users,
        num_queries=args.queries,
        k=args.k,
        rounds=args.rounds,
        alpha=args.alpha,
        measure=measure,
        seed=args.seed,
    )
    print(format_updates_report(report))
    if args.json:
        path = write_report(report, args.json)
        print(f"wrote {path}")
    if not report["equivalent"]:
        print("FAIL: post-update rankings diverge from a fresh rebuild")
        return 1
    ratio = float(report["p50_ratio"])
    if args.max_p50_ratio > 0.0 and ratio > args.max_p50_ratio:
        print(f"FAIL: post-update p50 is {ratio:.2f}x the pre-update p50, "
              f"above the allowed {args.max_p50_ratio:.2f}x")
        return 1
    return 0


def _run_partitioned_suite(args: argparse.Namespace) -> int:
    """Scatter-gather suite: p50 vs partition count + equivalence gate."""
    from .eval.bench import format_partitioned_report, run_partitioned_suite, write_report

    measure = args.proximity
    if measure == "shortest-path":
        # Shard pruning leans on materialized cluster bounds; the suite
        # defaults to the paper's PPR case like the proximity suite does.
        measure = "ppr"
        print("partitioned suite: using measure 'ppr' (shard bounds come "
              "from materialized cluster bound vectors)")
    report = run_partitioned_suite(
        num_users=args.users,
        num_queries=args.queries,
        k=args.k,
        rounds=args.rounds,
        alpha=args.alpha,
        measure=measure,
        seed=args.seed,
    )
    print(format_partitioned_report(report))
    if args.json:
        path = write_report(report, args.json)
        print(f"wrote {path}")
    if not report["equivalent"]:
        print("FAIL: partitioned rankings diverge from single-partition "
              "execution")
        return 1
    speedups = report["speedup_partitions"]
    top = str(report["workload"]["partition_counts"][-1])  # type: ignore[index]
    speedup = float(speedups[top])  # type: ignore[index]
    if args.min_speedup > 0.0 and speedup < args.min_speedup:
        print(f"FAIL: P={top} p50 speedup {speedup:.2f}x is below the "
              f"required {args.min_speedup:.2f}x")
        return 1
    return 0


def _run_durability_suite(args: argparse.Namespace) -> int:
    """Chaos sweep: kill at every injection point, recover, verify, time."""
    from .eval.bench import format_durability_report, run_durability_suite, write_report

    report = run_durability_suite(
        num_users=args.users,
        num_queries=args.queries,
        k=args.k,
        rounds=args.rounds,
        alpha=args.alpha,
        seed=args.seed,
    )
    print(format_durability_report(report))
    if args.json:
        path = write_report(report, args.json)
        print(f"wrote {path}")
    lost = int(report["acked_updates_lost"])
    if lost:
        print(f"FAIL: {lost} acknowledged update(s) lost across the crash "
              "matrix — the WAL contract is broken")
        return 1
    if not report["equivalent"]:
        print("FAIL: a recovered dataset diverged from its pre-crash "
              "merged reads")
        return 1
    return 0


def _run_scale_suite(args: argparse.Namespace) -> int:
    """Out-of-core corpus sweep: streaming builds, RSS, operating point."""
    from .eval.bench import write_report
    from .eval.scale import DEFAULT_SIZES, format_scale_report, run_scale_suite

    sizes = DEFAULT_SIZES
    if args.scale_sizes:
        sizes = tuple(int(part) for part in args.scale_sizes.split(",")
                      if part.strip())
    report = run_scale_suite(
        sizes=sizes,
        num_queries=args.queries,
        k=args.k,
        rounds=args.rounds,
        chunk_size=args.chunk_size,
        seed=args.seed,
        compare_users=args.scale_compare_users,
        target_p50_ms=args.target_p50_ms,
        rss_ceiling_mb=args.rss_ceiling_mb,
    )
    print(format_scale_report(report))
    if args.json:
        path = write_report(report, args.json)
        print(f"wrote {path}")
    if not report["equivalent"]:
        print("FAIL: the streaming build diverges from the in-memory "
              "builder (arena bytes or query answers differ)")
        return 1
    ratio = float(report["memory_comparison"]["rss_ratio"])  # type: ignore[index]
    if args.min_rss_ratio > 0.0 and ratio < args.min_rss_ratio:
        print(f"FAIL: in-memory/streaming build peak-RSS ratio "
              f"{ratio:.2f}x is below the required "
              f"{args.min_rss_ratio:.2f}x")
        return 1
    return 0


def _run_anytime_suite(args: argparse.Namespace) -> int:
    """Anytime/landmark serving suite: quality-vs-latency + quality gates."""
    from .eval.bench import format_anytime_report, run_anytime_suite, write_report

    measure = args.proximity
    if measure == "shortest-path":
        # The suite measures the unmaterialized serving regime, where the
        # exact path pays a per-query proximity row; PPR's power-iteration
        # row is the paper's case for that trade.
        measure = "ppr"
        print("anytime suite: using measure 'ppr' (the suite measures the "
              "unmaterialized per-query-row serving regime)")
    kwargs = {}
    if args.budgets:
        kwargs["budgets"] = tuple(int(part) for part in args.budgets.split(",")
                                  if part.strip())
    if args.landmark_counts:
        kwargs["landmark_counts"] = tuple(
            int(part) for part in args.landmark_counts.split(",")
            if part.strip())
    report = run_anytime_suite(
        num_users=args.users,
        num_queries=args.queries,
        k=args.k,
        rounds=args.rounds,
        alpha=args.alpha,
        measure=measure,
        seed=args.seed,
        **kwargs,
    )
    print(format_anytime_report(report))
    if args.json:
        path = write_report(report, args.json)
        print(f"wrote {path}")
    if not report["equivalent"]:
        print("FAIL: full-budget anytime answers diverge from the exact scan")
        return 1
    recall = float(report["recall_at_k_default"])
    if args.min_recall > 0.0 and recall < args.min_recall:
        print(f"FAIL: default-budget recall@k {recall:.3f} is below the "
              f"required {args.min_recall:.3f}")
        return 1
    gate = report["gate"]
    if args.min_speedup > 0.0:
        if not gate["point"]:
            print("FAIL: no approximate serving point met the recall floor "
                  f"{gate['recall_floor']:.2f}")
            return 1
        speedup = float(gate["speedup"])
        if speedup < args.min_speedup:
            print(f"FAIL: best qualifying p50 speedup {speedup:.2f}x "
                  f"({gate['point']}) is below the required "
                  f"{args.min_speedup:.2f}x")
            return 1
    return 0


def _load_serving_dataset(args: argparse.Namespace):
    if getattr(args, "arena", None):
        from .storage.dataset import Dataset

        return Dataset.from_arena(args.arena)
    if args.snapshot:
        return load_dataset(args.snapshot)
    return delicious_like(scale=args.scale, seed=args.seed)


def _warmup_seekers(dataset, queries, limit: int) -> List[int]:
    """The ``limit`` most frequent valid seekers of a workload trace, hot first.

    Out-of-range ids (a trace recorded against a different corpus) are
    dropped *before* ranking so they never consume warm-up slots.
    """
    counts: dict = {}
    for query in queries:
        if 0 <= query.seeker < dataset.num_users:
            counts[query.seeker] = counts.get(query.seeker, 0) + 1
    ranked = sorted(counts, key=lambda seeker: (-counts[seeker], seeker))
    return ranked[:limit]


def _command_serve(args: argparse.Namespace) -> int:
    # Imported here so the plain library commands never pay for the service
    # package.
    import time as _time

    from .service import QueryService
    from .service.http_api import serve_forever

    durable = None
    if args.durable_dir:
        durable, dataset = _open_durable(args)
    else:
        dataset = _load_serving_dataset(args)
    engine = SocialSearchEngine(dataset, _engine_config(args))
    if getattr(args, "arena", None) and args.materialize:
        from .errors import PersistenceError
        from .proximity import MaterializedProximity
        from .storage.arena import attach_shards

        if isinstance(engine.proximity, MaterializedProximity):
            try:
                if attach_shards(engine.proximity, args.arena):
                    print(f"attached {engine.proximity.num_rows()} materialized "
                          f"proximity rows from {args.arena}")
            except PersistenceError as exc:
                # Mixed measures would silently serve two proximity
                # semantics; refine lazily with the engine's measure instead.
                print(f"not attaching arena shards: {exc}")
    config = ServiceConfig(
        workers=args.workers,
        cache_capacity=args.cache_capacity,
        cache_ttl_seconds=args.ttl,
        compact_threshold=args.compact_threshold,
        host=args.host,
        port=args.port,
    )
    service = QueryService(engine, config, durable=durable)
    if args.trace_sample_rate is not None:
        from .obs.trace import Tracer, set_tracer

        set_tracer(Tracer(sample_rate=args.trace_sample_rate,
                          capacity=args.trace_capacity))
        print(f"tracing enabled: sampling {args.trace_sample_rate:.0%} of "
              f"requests, retaining the last {args.trace_capacity} traces "
              "(GET /trace/<X-Request-Id>)")
    if args.warmup > 0:
        # Pre-populate the proximity cache/shards for the hottest seekers of
        # the workload trace before accepting traffic.
        if args.trace:
            from .workload.trace import load_queries

            trace = load_queries(args.trace)
        else:
            trace = generate_workload(
                dataset, WorkloadConfig(num_queries=max(args.warmup * 5, 100),
                                        seed=args.seed))
        started = _time.perf_counter()
        warmed = service.warm_proximity(_warmup_seekers(dataset, trace, args.warmup))
        print(f"warmed proximity for {warmed} seekers in "
              f"{(_time.perf_counter() - started) * 1000.0:.1f} ms")
    print(dataset.describe())
    serve_forever(service, host=config.host, port=config.port,
                  updater=durable.updater if durable is not None else None)
    return 0


def _open_durable(args: argparse.Namespace):
    """Open (crash-recovering) or bootstrap the ``--durable-dir`` store.

    Returns ``(store, dataset)``; the served dataset is always the store's
    own memory-mapped generation, so recovery and normal startup are the
    same code path.
    """
    from pathlib import Path as _Path

    from .config import DurabilityConfig
    from .storage.durable import MANIFEST_NAME, DurableStore

    dconfig = DurabilityConfig(directory=args.durable_dir,
                               wal_fsync=args.wal_fsync)
    if (_Path(args.durable_dir) / MANIFEST_NAME).exists():
        store = DurableStore.open(args.durable_dir, config=dconfig)
        report = store.recovery
        print(f"recovered durable store {args.durable_dir}: generation "
              f"{store.generation}, {report.records_replayed} WAL records "
              f"replayed ({report.torn_tail_bytes} torn bytes dropped) in "
              f"{report.duration_seconds * 1000.0:.1f} ms")
    else:
        dataset = _load_serving_dataset(args)
        store = DurableStore.initialise(dataset, args.durable_dir,
                                        config=dconfig)
        print(f"initialised durable store {args.durable_dir} (generation 0, "
              f"wal fsync={dconfig.wal_fsync})")
    return store, store.dataset


def _command_recover(args: argparse.Namespace) -> int:
    """Recover a durable store and report what the replay did.

    This is the same code path ``repro serve --durable-dir`` runs on
    startup, exposed standalone so an operator can inspect (and with
    ``--checkpoint`` collapse) a crashed store without serving traffic.
    """
    import json as _json

    from .config import DurabilityConfig
    from .storage.durable import DurableStore

    config = DurabilityConfig(directory=args.directory,
                              wal_fsync=args.wal_fsync)
    store = DurableStore.open(args.directory, config=config)
    report = store.recovery.to_dict()
    print(_json.dumps(report, indent=2))
    print(store.dataset.describe())
    if args.checkpoint:
        result = store.checkpoint(force=True)
        print(f"checkpointed: generation {result['generation']}, "
              f"{result['folded']} delta actions folded, removed "
              f"{result.get('gc_removed', [])}")
    store.close()
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    """Run the static-analysis rules and gate against the baseline.

    Exit codes: 0 clean (or every finding grandfathered with a
    justification), 1 when new or unjustified findings fire, 2 when a
    scanned file cannot be parsed.
    """
    import json as _json
    from pathlib import Path

    from .analysis import (all_rules, diff_against_baseline, get_rule,
                           lint_paths, load_baseline, write_baseline)

    if args.rules:
        try:
            rules = [get_rule(rule_id.strip())
                     for rule_id in args.rules.split(",") if rule_id.strip()]
        except KeyError as exc:
            known = ", ".join(sorted(rule.rule_id for rule in all_rules()))
            print(f"unknown rule {exc.args[0]!r}; known rules: {known}",
                  file=sys.stderr)
            return 2
    else:
        rules = None
    report = lint_paths(args.paths, rules=rules)
    baseline_path = Path(args.baseline_file)

    if args.baseline == "write":
        existing = load_baseline(baseline_path)
        written = write_baseline(baseline_path, report.findings, existing)
        print(f"{baseline_path}: wrote {written} finding(s); fill in every "
              f"empty \"justification\" or the gate still fails")
        return 0

    baseline = load_baseline(baseline_path)
    diff = diff_against_baseline(report.findings, baseline)

    if args.format == "json":
        payload = dict(report.to_dict(),
                       baseline_file=str(baseline_path),
                       new=[f.to_dict() for f in diff.new],
                       grandfathered=[f.to_dict() for f in diff.grandfathered],
                       unjustified=[f.to_dict() for f in diff.unjustified],
                       stale=list(diff.stale),
                       failing=len(diff.failing))
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in diff.failing:
            print(finding.format())
        for finding in diff.grandfathered:
            print(f"{finding.format()} (baselined)")
        for entry in diff.stale:
            print(f"stale baseline entry: [{entry.get('rule')}] "
                  f"{entry.get('file')}: {entry.get('message')}")
        for error in report.errors:
            print(f"parse error: {error}")
        summary = (f"{report.files_scanned} file(s) scanned, "
                   f"{len(diff.failing)} failing, "
                   f"{len(diff.grandfathered)} baselined, "
                   f"{len(diff.stale)} stale, "
                   f"{report.suppressed} suppressed inline")
        print(summary)
    if report.errors:
        return 2
    return 1 if diff.failing else 0


def _command_build_arena(args: argparse.Namespace) -> int:
    import time as _time

    from .storage.arena import build_arena

    if args.stream:
        # Out-of-core path: the corpus is generated chunk-at-a-time and the
        # index sections are assembled through scratch memmaps, so the
        # whole dataset never exists as Python objects.
        from .storage.arena_stream import build_arena_streaming
        from .workload.datasets import scaled_config

        if args.snapshot:
            print("--stream builds a synthetic scaled corpus and cannot "
                  "read a snapshot; drop --snapshot or --stream")
            return 1
        if args.materialize:
            print("--stream does not support --materialize (proximity "
                  "shards are built from a loaded arena instead)")
            return 1
        config = scaled_config(args.users, seed=args.seed)
        started = _time.perf_counter()
        path = build_arena_streaming(config, args.output,
                                     chunk_size=args.chunk_size)
        elapsed = (_time.perf_counter() - started) * 1000.0
        size = path.stat().st_size
        print(f"wrote arena {path} ({size} bytes) in {elapsed:.1f} ms: "
              f"streamed {config.name!r} ({config.num_users} users, "
              f"{config.num_actions} actions, chunk {args.chunk_size})")
        return 0

    dataset = _load_serving_dataset(args)
    proximity = None
    if args.materialize:
        from .config import ProximityConfig as _ProximityConfig
        from .proximity import MaterializedProximity, create_proximity

        measure = create_proximity(args.proximity, dataset.graph,
                                   _ProximityConfig(measure=args.proximity))
        proximity = MaterializedProximity(measure,
                                          cluster_rounds=args.cluster_rounds)
        started = _time.perf_counter()
        rows = proximity.build()
        print(f"materialized {rows} proximity rows in "
              f"{(_time.perf_counter() - started) * 1000.0:.1f} ms "
              f"({len(proximity.shards())} clusters)")
    started = _time.perf_counter()
    path = build_arena(dataset, args.output, proximity=proximity)
    elapsed = (_time.perf_counter() - started) * 1000.0
    size = path.stat().st_size
    print(f"wrote arena {path} ({size} bytes) in {elapsed:.1f} ms: "
          f"{dataset.describe()}")
    return 0


def _command_profile(args: argparse.Namespace) -> int:
    """cProfile a batched run over a query trace (hotspot regression guard)."""
    import cProfile
    import io
    import pstats

    from .workload.trace import load_queries

    queries = load_queries(args.queries_file)
    if not queries:
        print(f"no queries in {args.queries_file}")
        return 1
    dataset = _load_serving_dataset(args)
    engine = SocialSearchEngine(dataset, _engine_config(args))
    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(args.rounds):
        engine.run_batch(queries)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(args.top)
    print(f"profiled {len(queries)} queries x {args.rounds} rounds "
          f"({engine.config.algorithm}, {engine.config.proximity.measure}) "
          f"on {dataset.name}")
    print(buffer.getvalue())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Social-aware top-k search (reproduction of 'With a little "
                    "help from my friends', ICDE 2013)",
    )
    subparsers = parser.add_subparsers(dest="command")

    demo = subparsers.add_parser("demo", help="run an end-to-end demo on synthetic data")
    demo.add_argument("--scale", type=float, default=0.3, help="dataset scale factor")
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument("--k", type=int, default=10)
    _add_engine_arguments(demo)
    demo.set_defaults(handler=_command_demo)

    generate = subparsers.add_parser("generate", help="generate and save a synthetic dataset")
    generate.add_argument("output", help="snapshot directory to create")
    generate.add_argument("--name", default="synthetic")
    generate.add_argument("--users", type=int, default=400)
    generate.add_argument("--items", type=int, default=1500)
    generate.add_argument("--tags", type=int, default=120)
    generate.add_argument("--actions", type=int, default=12000)
    generate.add_argument("--homophily", type=float, default=0.5)
    generate.add_argument("--seed", type=int, default=7)
    generate.set_defaults(handler=_command_generate)

    query = subparsers.add_parser("query", help="answer one query over a saved snapshot")
    query.add_argument("snapshot", help="snapshot directory written by 'repro generate'")
    query.add_argument("seeker", type=int, help="seeker user id")
    query.add_argument("tags", nargs="+", help="query tags")
    query.add_argument("--k", type=int, default=10)
    _add_engine_arguments(query)
    query.set_defaults(handler=_command_query)

    bench = subparsers.add_parser(
        "bench", help="run a small algorithm comparison, or the headless "
                      "benchmark suite with --suite")
    bench.add_argument("--scale", type=float, default=0.3,
                       help="comparison-mode dataset scale (the suite sizes "
                            "its corpus with --users instead)")
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument("--queries", type=int, default=20)
    bench.add_argument("--k", type=int, default=10)
    bench.add_argument("--holdout", type=float, default=0.2,
                       help="comparison-mode holdout fraction (unused by --suite)")
    bench.add_argument("--algorithms", nargs="*", default=None,
                       help="algorithms to measure (both modes)")
    bench.add_argument("--suite", nargs="?", const="topk", default=None,
                       choices=("topk", "proximity", "updates", "partitioned",
                                "durability", "scale", "anytime"),
                       help="run a headless bench_fig*-style suite: 'topk' "
                            "(p50/p95/qps + vectorized-vs-scalar speedup; "
                            "the default when no value is given), "
                            "'proximity' (materialized shards vs online "
                            "computation, arena cold start, batching, with "
                            "an exact-equivalence gate), 'updates' "
                            "(interleaved query/update trace over an "
                            "arena-backed dataset: post- vs pre-update p50 "
                            "plus a fresh-rebuild equivalence gate) or "
                            "'partitioned' (scatter-gather p50 vs partition "
                            "count 1/2/4 with per-shard bound pruning and "
                            "an exact-equivalence gate) or 'durability' "
                            "(chaos sweep killing the write path at every "
                            "fault-injection point, with an acked-update-"
                            "loss gate, recovery equivalence gate, replay "
                            "timing and WAL fsync-policy overhead) or "
                            "'scale' (out-of-core corpus sweep: streaming "
                            "arena builds vs the in-memory builder with "
                            "per-size peak RSS, cold start and serving "
                            "p50/p95, a byte-identity equivalence gate and "
                            "an optional operating-point binary search) or "
                            "'anytime' (budgeted anytime scan and landmark-"
                            "sketch tier: latency-vs-quality curves with "
                            "recall@k / rank correlation / error bounds, a "
                            "default-budget quality gate and a full-budget "
                            "exact-equivalence gate)")
    bench.add_argument("--users", type=int, default=200,
                       help="suite dataset size in users (default: 200, the "
                            "Figure-6 medium point)")
    bench.add_argument("--rounds", type=int, default=3,
                       help="suite timing passes over the workload (default: 3)")
    bench.add_argument("--json", default=None, metavar="PATH",
                       help="suite: write the machine-readable report here "
                            "(e.g. benchmarks/results/BENCH_topk.json)")
    bench.add_argument("--min-speedup", type=float, default=0.0,
                       help="suite: exit non-zero when the suite's headline "
                            "speedup (vectorized exact for 'topk', cold "
                            "seeker for 'proximity') falls below this "
                            "factor (CI smoke gate)")
    bench.add_argument("--max-p50-ratio", type=float, default=0.0,
                       help="updates suite: exit non-zero when the "
                            "post-update query p50 exceeds this multiple "
                            "of the pre-update p50 (0 = report only)")
    bench.add_argument("--max-trace-overhead", type=float, default=0.0,
                       help="topk suite: also measure the tracing "
                            "instrumentation A/B (tracer off / unsampled "
                            "/ fully sampled / off-again) and exit "
                            "non-zero when the disabled-tracer p50 after "
                            "tracers were installed and removed exceeds "
                            "this multiple of the never-traced p50 "
                            "(e.g. 1.02 = 2%% budget; 0 = skip)")
    bench.add_argument("--trace-jsonl", default=None, metavar="PATH",
                       help="topk suite: write one fully-traced query's "
                            "spans as JSON lines to PATH (CI artifact)")
    bench.add_argument("--scale-sizes", default=None, metavar="N,N,...",
                       help="scale suite: comma-separated corpus sizes in "
                            "users (default: 2500,10000,25000,50000,100000)")
    bench.add_argument("--chunk-size", type=int, default=100000,
                       help="scale suite: streaming generator batch size in "
                            "actions (default: 100000)")
    bench.add_argument("--scale-compare-users", type=int, default=None,
                       help="scale suite: corpus size for the in-memory vs "
                            "streaming peak-RSS comparison (default: the "
                            "largest sweep size)")
    bench.add_argument("--target-p50-ms", type=float, default=None,
                       help="scale suite: serving-latency target; enables "
                            "the operating-point binary search for the "
                            "largest corpus meeting it")
    bench.add_argument("--rss-ceiling-mb", type=float, default=None,
                       help="scale suite: peak-RSS ceiling (build and "
                            "serve) for the operating-point search")
    bench.add_argument("--min-rss-ratio", type=float, default=0.0,
                       help="scale suite: exit non-zero when the in-memory/"
                            "streaming build peak-RSS ratio falls below "
                            "this factor (0 = report only)")
    bench.add_argument("--min-recall", type=float, default=0.0,
                       help="anytime suite: exit non-zero when mean "
                            "recall@k at the default anytime budget falls "
                            "below this value (e.g. 0.95; 0 = report only)")
    bench.add_argument("--budgets", default=None, metavar="N,N,...",
                       help="anytime suite: comma-separated max-scanned "
                            "budgets for the latency-vs-quality curve "
                            "(default: 64,128,256,512,1024)")
    bench.add_argument("--landmark-counts", default=None, metavar="N,N,...",
                       help="anytime suite: comma-separated landmark-sketch "
                            "sizes for the approximate-tier curve "
                            "(default: 4,8,16,32)")
    _add_engine_arguments(bench)
    bench.set_defaults(handler=_command_bench)

    build_arena = subparsers.add_parser(
        "build-arena", help="serialise a dataset into the memory-mapped "
                            "index arena (optionally with materialized "
                            "proximity shards)")
    build_arena.add_argument("output", help="arena file to create")
    build_arena.add_argument("--snapshot", default=None,
                             help="snapshot directory written by 'repro "
                                  "generate' (default: synthetic corpus)")
    build_arena.add_argument("--scale", type=float, default=0.3,
                             help="synthetic dataset scale when no snapshot "
                                  "is given")
    build_arena.add_argument("--seed", type=int, default=7)
    build_arena.add_argument("--materialize", action="store_true",
                             help="precompute per-cluster proximity shards "
                                  "and store them in the arena")
    build_arena.add_argument("--proximity", default="ppr",
                             help="measure to materialize (default: ppr)")
    build_arena.add_argument("--cluster-rounds", type=int, default=5,
                             help="label-propagation rounds for the seeker "
                                  "partition (default: 5)")
    build_arena.add_argument("--stream", action="store_true",
                             help="build out-of-core: generate a scaled "
                                  "synthetic corpus (--users) chunk-at-a-"
                                  "time and assemble the arena through "
                                  "scratch memmaps; byte-identical to the "
                                  "in-memory build at the same seed")
    build_arena.add_argument("--users", type=int, default=2500,
                             help="with --stream: corpus size in users "
                                  "(default: 2500)")
    build_arena.add_argument("--chunk-size", type=int, default=100000,
                             help="with --stream: generator batch size in "
                                  "actions (default: 100000)")
    build_arena.set_defaults(handler=_command_build_arena)

    explain = subparsers.add_parser(
        "explain", help="print the planner's execution plan for a query "
                        "(backing, proximity path, executor, partition "
                        "fan-out, bound estimates) without executing it")
    explain.add_argument("seeker", type=int, help="seeker user id")
    explain.add_argument("tags", nargs="+", help="query tags")
    explain.add_argument("--k", type=int, default=10)
    explain.add_argument("--snapshot", default=None,
                         help="snapshot directory written by 'repro generate' "
                              "(default: synthetic delicious-like corpus)")
    explain.add_argument("--arena", default=None,
                         help="arena file written by 'repro build-arena' "
                              "(overrides --snapshot)")
    explain.add_argument("--scale", type=float, default=0.3,
                         help="synthetic dataset scale when no snapshot is "
                              "given")
    explain.add_argument("--seed", type=int, default=7)
    explain.add_argument("--materialize", action="store_true",
                         help="wrap proximity in materialized shards before "
                              "planning")
    explain.add_argument("--build-shards", action="store_true",
                         help="with --materialize: build the shards so the "
                              "plan shows the shard-served bound estimates")
    explain.add_argument("--analyze", action="store_true",
                         help="execute the query under a tracer and print "
                              "the recorded span tree — per-stage timings, "
                              "per-shard scan/prune counts and stage "
                              "coverage of the wall time (EXPLAIN ANALYZE)")
    explain.add_argument("--trace-out", default=None, metavar="PATH",
                         help="with --analyze: write the recorded spans as "
                              "JSON lines to PATH")
    explain.add_argument("--chrome-trace", default=None, metavar="PATH",
                         help="with --analyze: write a Chrome trace_event "
                              "file to PATH (chrome://tracing / Perfetto)")
    _add_engine_arguments(explain)
    explain.set_defaults(handler=_command_explain)

    serve = subparsers.add_parser(
        "serve", help="serve queries over a JSON HTTP API with caching")
    serve.add_argument("--snapshot", default=None,
                       help="snapshot directory written by 'repro generate' "
                            "(default: synthetic delicious-like corpus)")
    serve.add_argument("--arena", default=None,
                       help="arena file written by 'repro build-arena' "
                            "(memory-mapped cold start; overrides --snapshot)")
    serve.add_argument("--scale", type=float, default=0.3,
                       help="synthetic dataset scale when no snapshot is given")
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port (0 picks an ephemeral port)")
    serve.add_argument("--workers", type=int, default=4,
                       help="query executor threads (default: 4)")
    serve.add_argument("--cache-capacity", type=int, default=1024,
                       help="result cache entries, 0 disables (default: 1024)")
    serve.add_argument("--ttl", type=float, default=300.0,
                       help="result cache TTL in seconds, 0 = no expiry")
    serve.add_argument("--compact-threshold", type=int, default=2048,
                       metavar="N",
                       help="fold live-update delta overlays back into "
                            "fresh index arrays on a background worker "
                            "once N delta actions are pending (0 disables "
                            "background compaction; default: 2048)")
    serve.add_argument("--warmup", type=int, default=0, metavar="N",
                       help="pre-populate the proximity cache/shards for the "
                            "N most frequent seekers of the workload trace "
                            "before accepting traffic (default: 0 = off)")
    serve.add_argument("--trace", default=None,
                       help="query trace (JSON lines) supplying the --warmup "
                            "seeker frequencies; defaults to a synthetic "
                            "workload over the served dataset")
    serve.add_argument("--materialize", action="store_true",
                       help="serve proximity from materialized shards "
                            "(attached from --arena when present, refined "
                            "lazily otherwise)")
    serve.add_argument("--trace-sample-rate", type=float, default=None,
                       metavar="RATE",
                       help="enable end-to-end query tracing, sampling this "
                            "fraction of requests in [0, 1]; traces are "
                            "served back on GET /trace/<X-Request-Id> "
                            "(default: tracing disabled, zero overhead)")
    serve.add_argument("--trace-capacity", type=int, default=256,
                       help="completed traces retained in the ring buffer "
                            "(default: 256)")
    serve.add_argument("--durable-dir", default=None, metavar="DIR",
                       help="serve from a durable store rooted at DIR: "
                            "updates are WAL-logged before they are "
                            "acknowledged, compaction publishes atomic "
                            "arena generations, and startup crash-recovers "
                            "automatically (bootstrapped from the served "
                            "dataset when DIR holds no store yet)")
    serve.add_argument("--wal-fsync", default="always",
                       choices=("always", "interval", "off"),
                       help="WAL fsync policy with --durable-dir: 'always' "
                            "syncs every append before acking (survives "
                            "power loss), 'interval' amortises syncs, "
                            "'off' leaves it to the OS page cache "
                            "(default: always)")
    serve.add_argument("--cluster-rounds", type=int, default=5,
                       help=argparse.SUPPRESS)
    _add_engine_arguments(serve)
    serve.set_defaults(handler=_command_serve)

    recover = subparsers.add_parser(
        "recover", help="crash-recover a durable store (arena generation + "
                        "WAL replay) and print the recovery report")
    recover.add_argument("directory",
                         help="durable store directory (MANIFEST.json + "
                              "gen-<n>.arena + wal-<n>.log)")
    recover.add_argument("--wal-fsync", default="always",
                         choices=("always", "interval", "off"),
                         help="fsync policy for the re-opened WAL "
                              "(default: always)")
    recover.add_argument("--checkpoint", action="store_true",
                         help="after recovery, fold the replayed records "
                              "and publish a fresh generation so the next "
                              "startup replays nothing")
    recover.set_defaults(handler=_command_recover)

    profile = subparsers.add_parser(
        "profile", help="cProfile a batched run over a query trace and "
                        "print the top cumulative hotspots")
    profile.add_argument("queries_file",
                         help="query trace (JSON lines, see "
                              "repro.workload.trace.save_queries)")
    profile.add_argument("--snapshot", default=None,
                         help="snapshot directory to query (default: "
                              "synthetic corpus)")
    profile.add_argument("--arena", default=None,
                         help="arena file to query (overrides --snapshot)")
    profile.add_argument("--scale", type=float, default=0.3,
                         help="synthetic dataset scale when no snapshot is "
                              "given")
    profile.add_argument("--seed", type=int, default=7)
    profile.add_argument("--rounds", type=int, default=3,
                         help="batched passes over the trace (default: 3)")
    profile.add_argument("--top", type=int, default=20,
                         help="number of cumulative hotspots to print "
                              "(default: 20)")
    _add_engine_arguments(profile)
    profile.set_defaults(handler=_command_profile)

    lint = subparsers.add_parser(
        "lint", help="run the repo's static-analysis rules and gate "
                     "against the committed baseline")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--format", default="text", choices=("text", "json"),
                      help="report format (default: text)")
    lint.add_argument("--baseline", default="check",
                      choices=("check", "write"),
                      help="'check' gates findings against the baseline "
                           "file; 'write' rewrites it from the current "
                           "findings, keeping existing justifications")
    lint.add_argument("--baseline-file", default="lint-baseline.json",
                      help="baseline path (default: lint-baseline.json)")
    lint.add_argument("--rules", default=None,
                      help="comma-separated rule ids to run (default: all)")
    lint.set_defaults(handler=_command_lint)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "handler", None):
        parser.print_help()
        return 1
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
