"""Query-result cache with LRU + TTL eviction and selective invalidation.

The serving layer's cache is keyed by the full request identity
``(seeker, tags, k, algorithm)`` and, unlike a plain LRU, keeps two
secondary indexes — tag → keys and seeker → keys — so an update can evict
exactly the entries it made stale:

* a new tagging on tag *t* invalidates only results whose query touches *t*;
* a new friendship near user *u* invalidates only results whose seeker lies
  within the proximity horizon of *u*.

Everything is guarded by one lock; entries are immutable once stored, so a
cache hit can be handed to multiple concurrent readers.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, NamedTuple, Optional, Set, Tuple

from ..core.query import Query, QueryResult


class CacheKey(NamedTuple):
    """Identity of a cacheable request.

    Tags are stored sorted so that ``(a, b)`` and ``(b, a)`` — which rank
    identically — share one entry.  Serving hints are part of the identity:
    an anytime or landmark answer must never be served to a request that
    asked for exact results (or for a different budget).
    """

    seeker: int
    tags: Tuple[str, ...]
    k: int
    algorithm: str
    serving: Optional[Tuple[Optional[float], Optional[str],
                            Optional[float], Optional[int]]] = None

    @classmethod
    def for_query(cls, query: Query, algorithm: str) -> "CacheKey":
        """Build the cache key of ``query`` answered by ``algorithm``."""
        serving = None
        if query.has_serving_hint:
            budget = query.budget
            serving = (query.slo_ms, query.effort,
                       budget.deadline_ms if budget is not None else None,
                       budget.max_scanned if budget is not None else None)
        return cls(seeker=query.seeker, tags=tuple(sorted(query.tags)),
                   k=query.k, algorithm=algorithm, serving=serving)


@dataclass
class _Entry:
    result: QueryResult
    expires_at: Optional[float]


@dataclass
class ResultCacheStatistics:
    """Counters describing one :class:`ResultCache`'s behaviour."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total number of cache probes."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes served from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, float]:
        """Plain-dict view for metrics endpoints and result tables."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """LRU + TTL cache of :class:`QueryResult` objects with tag/seeker indexes.

    Parameters
    ----------
    capacity:
        Maximum number of results kept; 0 disables the cache (every probe
        misses, every put is dropped).
    ttl_seconds:
        Lifetime of an entry; 0 means entries never expire by age.
    clock:
        Monotonic time source, injectable for deterministic TTL tests.
    """

    def __init__(self, capacity: int = 1024, ttl_seconds: float = 0.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._capacity = max(0, int(capacity))
        self._ttl = max(0.0, float(ttl_seconds))
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: Dict[CacheKey, _Entry] = {}  # guarded-by: _lock
        self._order: Dict[CacheKey, None] = {}  # guarded-by: _lock
        # Expiry-ordered key set: every entry carries the same TTL, so the
        # order keys were (re)stored in is exactly the order they expire in
        # and a sweep only ever inspects the front.
        self._expiry: Dict[CacheKey, None] = {}  # guarded-by: _lock
        self._by_tag: Dict[str, Set[CacheKey]] = {}  # guarded-by: _lock
        self._by_seeker: Dict[int, Set[CacheKey]] = {}  # guarded-by: _lock
        self._generation = 0  # guarded-by: _lock
        self.statistics = ResultCacheStatistics()

    @property
    def capacity(self) -> int:
        """Maximum number of entries kept."""
        return self._capacity

    @property
    def ttl_seconds(self) -> float:
        """Entry lifetime in seconds (0 = no expiry)."""
        return self._ttl

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def generation(self) -> int:
        """Invalidation epoch; bumped by every invalidation event.

        A caller computing a result snapshots the generation *before* the
        computation and passes it to :meth:`put`; if an invalidation lands
        in between, the (now possibly stale) result is silently dropped
        instead of being cached past the invalidation.
        """
        with self._lock:
            return self._generation

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #

    def _unlink(self, key: CacheKey) -> None:  # lock-held: _lock
        """Remove ``key`` from the entry map and both secondary indexes."""
        self._entries.pop(key, None)
        self._order.pop(key, None)
        self._expiry.pop(key, None)
        for tag in key.tags:
            keys = self._by_tag.get(tag)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_tag[tag]
        keys = self._by_seeker.get(key.seeker)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_seeker[key.seeker]

    def get(self, key: CacheKey) -> Optional[QueryResult]:
        """Return the cached result for ``key``, or ``None`` on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.statistics.misses += 1
                return None
            if entry.expires_at is not None and self._clock() >= entry.expires_at:
                self._unlink(key)
                self.statistics.expirations += 1
                self.statistics.misses += 1
                return None
            # Refresh recency: move to the back of the eviction order.
            self._order.pop(key, None)
            self._order[key] = None
            self.statistics.hits += 1
            return entry.result

    def put(self, key: CacheKey, result: QueryResult,
            generation: Optional[int] = None) -> None:
        """Store ``result`` under ``key``, evicting the LRU entry if full.

        When ``generation`` is given and an invalidation happened since that
        generation was read, the result was computed against possibly-stale
        data and is dropped.
        """
        if self._capacity == 0:
            return
        now = self._clock()
        expires_at = now + self._ttl if self._ttl > 0 else None
        with self._lock:
            if generation is not None and generation != self._generation:
                return
            # Dead entries must not occupy capacity (they would evict live
            # ones below while a later get would discard them anyway).
            self._sweep_expired(now)
            if key in self._entries:
                # Overwrite: re-linking below promotes the key to the back
                # of both the recency and the expiry order.
                self._unlink(key)
            self._entries[key] = _Entry(result=result, expires_at=expires_at)
            self._order[key] = None
            if expires_at is not None:
                self._expiry[key] = None
            for tag in key.tags:
                self._by_tag.setdefault(tag, set()).add(key)
            self._by_seeker.setdefault(key.seeker, set()).add(key)
            while len(self._entries) > self._capacity:
                victim = next(iter(self._order))
                self._unlink(victim)
                self.statistics.evictions += 1

    def _sweep_expired(self, now: float) -> None:  # lock-held: _lock
        """Drop every expired entry (lock held).

        ``_expiry`` is expiry-ordered, so the sweep stops at the first
        still-live entry and the amortised cost is O(1) per stored entry.
        """
        while self._expiry:
            key = next(iter(self._expiry))
            entry = self._entries.get(key)
            if entry is None or entry.expires_at is None:
                self._expiry.pop(key, None)
                continue
            if now < entry.expires_at:
                break
            self._unlink(key)
            self.statistics.expirations += 1

    # ------------------------------------------------------------------ #
    # Update-driven invalidation
    # ------------------------------------------------------------------ #

    def invalidate_tags(self, tags: Iterable[str]) -> int:
        """Evict every entry whose query touches one of ``tags``."""
        removed = 0
        with self._lock:
            self._generation += 1
            for tag in set(tags):
                for key in list(self._by_tag.get(tag, ())):
                    self._unlink(key)
                    removed += 1
            self.statistics.invalidations += removed
        return removed

    def invalidate_seekers(self, users: Iterable[int]) -> int:
        """Evict every entry whose seeker is one of ``users``."""
        removed = 0
        with self._lock:
            self._generation += 1
            for user in set(users):
                for key in list(self._by_seeker.get(user, ())):
                    self._unlink(key)
                    removed += 1
            self.statistics.invalidations += removed
        return removed

    def clear(self) -> int:
        """Drop every entry (counted as invalidations); returns the count."""
        with self._lock:
            self._generation += 1
            removed = len(self._entries)
            self._entries.clear()
            self._order.clear()
            self._expiry.clear()
            self._by_tag.clear()
            self._by_seeker.clear()
            self.statistics.invalidations += removed
        return removed
