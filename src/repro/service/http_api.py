"""Stdlib-only JSON HTTP front end for :class:`~repro.service.QueryService`.

``repro serve`` binds a :class:`ServiceHTTPServer` — a threading
``http.server`` — so the engine can take real concurrent traffic without
any third-party web framework.  Endpoints:

``GET /health``
    Liveness probe: dataset name, sizes, worker count.
``GET /metrics``
    Prometheus text exposition of the engine-wide metrics registry
    (service throughput/latency, cache behaviour, planner routes,
    partition pruning, write-path epochs — one namespace).
``GET /stats``
    The same numbers as a structured JSON snapshot (plus strings the
    text format cannot carry, like the compaction error).
``GET /trace/<id>``
    One completed query trace from the tracer's ring buffer — spans with
    timings, attributes and parent links.  The ``<id>`` is the
    ``X-Request-Id`` response header of the traced request.  404 when
    tracing is disabled or the trace has been evicted.
``GET /traces``
    Ids and durations of the most recently retained traces.
``GET /query?seeker=4&tags=jazz,vinyl&k=10[&algorithm=social-first]``
``POST /query`` with ``{"seeker": 4, "tags": ["jazz"], "k": 10}``
    Answer one query; the response carries the ranked items, the serving
    outcome (``hit`` / ``coalesced`` / ``computed``) and both engine- and
    service-side latency.  Optional serving hints — ``slo_ms``, ``effort``
    (``exact`` / ``balanced`` / ``fast``), ``deadline_ms``,
    ``max_scanned`` — let the planner trade accuracy for latency; anytime
    answers carry ``is_exact`` and an admissible ``error_bound``.
``GET /explain?seeker=4&tags=jazz,vinyl&k=10[&algorithm=exact]``
``POST /explain`` with the same body as ``/query``
    Return the planner's :class:`~repro.core.plan.ExecutionPlan` for the
    query — storage backing, proximity route, scoring path, executor,
    partition fan-out and per-shard bound estimates — without executing it.
``POST /update`` with ``{"actions": [...], "friendships": [[u, v, w]], "new_users": 0}``
    Apply a dataset update through the watched :class:`DatasetUpdater`;
    stale cache entries are invalidated before the response is sent.

Errors return ``4xx`` with ``{"error": "..."}``.  Every response carries an
``X-Request-Id`` header — the client's own, when supplied, else a fresh
id — which doubles as the query's trace id when tracing is on.
"""

from __future__ import annotations

import json
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..core.query import Query, QueryBudget
from ..errors import ReproError
from ..obs import trace as obs_trace
from ..storage.tagging import TaggingAction
from ..storage.updates import DatasetUpdater
from .service import QueryService


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`QueryService`.

    Parameters
    ----------
    address:
        ``(host, port)`` bind address; port 0 picks an ephemeral port
        (exposed afterwards as ``server.server_port``).
    service:
        The query service answering ``/query`` requests.
    updater:
        Updater handling ``/update`` requests.  When omitted, one is created
        over the engine's dataset and watched by the service.
    """

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: QueryService,
                 updater: Optional[DatasetUpdater] = None) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service
        if updater is None:
            updater = DatasetUpdater(service.engine.dataset)
            service.watch(updater)
        self.updater = updater


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Dispatches JSON requests onto the bound :class:`QueryService`."""

    server: ServiceHTTPServer
    protocol_version = "HTTP/1.1"

    # Silence the default per-request stderr logging; the service keeps
    # structured metrics instead.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _request_id(self) -> str:
        """The request's id: the client's ``X-Request-Id``, else a fresh one.

        ``do_GET``/``do_POST`` stamp ``_rid`` at dispatch time — the
        handler instance is reused across keep-alive requests, so the id
        must be re-derived per request, not memoised per handler.
        """
        return getattr(self, "_rid", None) or uuid.uuid4().hex[:16]

    def _send_body(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Request-Id", self._request_id())
        self.end_headers()
        self.wfile.write(body)

    def _reply(self, status: int, payload: Dict[str, Any]) -> None:
        self._send_body(status, json.dumps(payload).encode("utf-8"),
                        "application/json")

    def _reply_text(self, status: int, text: str,
                    content_type: str = "text/plain; version=0.0.4; "
                                        "charset=utf-8") -> None:
        self._send_body(status, text.encode("utf-8"), content_type)

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            return {}
        data = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        parsed = urlparse(self.path)
        self._rid = self.headers.get("X-Request-Id") or uuid.uuid4().hex[:16]
        try:
            if parsed.path == "/health":
                self._handle_health()
            elif parsed.path == "/metrics":
                self._reply_text(200, self.server.service.metrics_text())
            elif parsed.path == "/stats":
                self._reply(200, self.server.service.stats())
            elif parsed.path == "/traces":
                self._handle_traces()
            elif parsed.path.startswith("/trace/"):
                self._handle_trace(parsed.path[len("/trace/"):])
            elif parsed.path in ("/query", "/explain"):
                params = parse_qs(parsed.query)
                payload = {
                    "seeker": params.get("seeker", [None])[0],
                    "tags": params.get("tags", [""])[0].split(","),
                    "k": params.get("k", [10])[0],
                    "algorithm": params.get("algorithm", [None])[0],
                    "slo_ms": params.get("slo_ms", [None])[0],
                    "effort": params.get("effort", [None])[0],
                    "deadline_ms": params.get("deadline_ms", [None])[0],
                    "max_scanned": params.get("max_scanned", [None])[0],
                }
                if parsed.path == "/explain":
                    self._handle_explain(payload)
                else:
                    self._handle_query(payload)
            else:
                self._reply(404, {"error": f"unknown path {parsed.path!r}"})
        except (ReproError, ValueError, KeyError, TypeError) as exc:
            self._reply(400, {"error": str(exc)})

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        parsed = urlparse(self.path)
        self._rid = self.headers.get("X-Request-Id") or uuid.uuid4().hex[:16]
        try:
            if parsed.path == "/query":
                self._handle_query(self._read_json())
            elif parsed.path == "/explain":
                self._handle_explain(self._read_json())
            elif parsed.path == "/update":
                self._handle_update(self._read_json())
            else:
                self._reply(404, {"error": f"unknown path {parsed.path!r}"})
        except (ReproError, ValueError, KeyError, TypeError) as exc:
            self._reply(400, {"error": str(exc)})

    # ------------------------------------------------------------------ #
    # Handlers
    # ------------------------------------------------------------------ #

    def _handle_health(self) -> None:
        dataset = self.server.service.engine.dataset
        self._reply(200, {
            "status": "ok",
            "dataset": dataset.name,
            "num_users": dataset.num_users,
            "num_items": dataset.num_items,
            "num_actions": dataset.num_actions,
            "workers": self.server.service.config.workers,
        })

    @staticmethod
    def _parse_query(payload: Dict[str, Any]) -> Query:
        """One parsing rule for every query-shaped payload (/query, /explain)."""
        if payload.get("seeker") is None:
            raise ValueError("missing required field 'seeker'")
        tags = [tag for tag in (payload.get("tags") or []) if str(tag).strip()]
        budget = None
        if payload.get("max_scanned") is not None \
                or payload.get("deadline_ms") is not None:
            deadline = payload.get("deadline_ms")
            scanned = payload.get("max_scanned")
            budget = QueryBudget(
                deadline_ms=float(deadline) if deadline is not None else None,
                max_scanned=int(scanned) if scanned is not None else None,
            )
        slo_ms = payload.get("slo_ms")
        effort = payload.get("effort")
        return Query(
            seeker=int(payload["seeker"]),
            tags=tuple(str(tag) for tag in tags),
            k=int(payload.get("k") or 10),
            slo_ms=float(slo_ms) if slo_ms is not None else None,
            effort=str(effort) if effort is not None else None,
            budget=budget,
        )

    def _handle_query(self, payload: Dict[str, Any]) -> None:
        query = self._parse_query(payload)
        served = self.server.service.serve(query,
                                           algorithm=payload.get("algorithm"),
                                           request_id=self._request_id())
        response = served.result.to_dict()
        response["outcome"] = served.outcome
        response["service_latency_seconds"] = served.latency_seconds
        response["request_id"] = self._request_id()
        self._reply(200, response)

    def _handle_trace(self, trace_id: str) -> None:
        tracer = obs_trace.get_tracer()
        if tracer is None:
            self._reply(404, {"error": "tracing is disabled"})
            return
        trace = tracer.get(trace_id)
        if trace is None:
            self._reply(404, {
                "error": f"no retained trace with id {trace_id!r} "
                         "(unsampled, not yet completed, or evicted)"})
            return
        self._reply(200, trace.to_dict())

    def _handle_traces(self) -> None:
        tracer = obs_trace.get_tracer()
        if tracer is None:
            self._reply(404, {"error": "tracing is disabled"})
            return
        self._reply(200, {"traces": [
            {"trace_id": trace.trace_id, "name": trace.name,
             "duration_ms": trace.duration_seconds * 1000.0}
            for trace in tracer.recent()
        ]})

    def _handle_explain(self, payload: Dict[str, Any]) -> None:
        plan = self.server.service.engine.explain_plan(
            self._parse_query(payload), algorithm=payload.get("algorithm"))
        self._reply(200, plan.to_dict())

    def _handle_update(self, payload: Dict[str, Any]) -> None:
        actions = [TaggingAction.from_dict(entry)
                   for entry in payload.get("actions") or []]
        friendships = [(int(u), int(v), float(w))
                       for u, v, w in payload.get("friendships") or []]
        summary = self.server.updater.apply(
            actions=actions or None,
            friendships=friendships or None,
            new_users=int(payload.get("new_users") or 0),
        )
        self._reply(200, {"applied": summary.changed, **summary.to_dict()})


def serve_forever(service: QueryService, host: str = "127.0.0.1",
                  port: int = 8080,
                  updater: Optional[DatasetUpdater] = None) -> None:
    """Blocking convenience used by ``repro serve``; Ctrl-C shuts down cleanly.

    ``updater`` routes ``/update`` requests through an existing updater —
    in durable mode the :class:`~repro.storage.durable.DurableStore`'s own
    WAL-attached updater, so every acknowledged HTTP update is logged
    before the response is sent.
    """
    server = ServiceHTTPServer((host, port), service, updater=updater)
    print(f"repro service listening on http://{host}:{server.server_port} "
          f"(workers={service.config.workers}, "
          f"cache={service.config.cache_capacity})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.server_close()
        service.close()
        if service.durable is not None:
            service.durable.close()
