"""Concurrent query serving over a :class:`~repro.core.engine.SocialSearchEngine`.

:class:`QueryService` is the piece that turns the single-threaded library
into something that can take traffic:

* queries run on a thread pool with a configurable worker count;
* identical in-flight requests coalesce onto one computation, so a burst of
  the same hot query costs one engine run, not N;
* results land in a :class:`~repro.service.cache.ResultCache` (LRU + TTL)
  keyed by the full request identity;
* the service subscribes to :class:`~repro.storage.updates.DatasetUpdater`
  and invalidates *selectively*: a tagging on tag *t* evicts only results
  touching *t*; a friendship near user *u* evicts only results whose seeker
  is within the proximity horizon of *u* — and the engine's
  :class:`~repro.proximity.cache.CachedProximity` is invalidated and rebound
  the same way, fixing the staleness bug where pre-update proximity vectors
  kept being served after graph changes.

Updates and queries are not serialised against each other: the updater
maintains the indexes by atomically swapping immutable per-tag arrays (and
whole graph objects), so a query racing an update sees either the old or
the new entry, never a half-built one.  Results returned after an update's
``apply`` call completes reflect that update.

The service also owns the **write path's epoch machinery**: when the
watched updater's delta overlays (arena-backed datasets accumulate live
updates on top of frozen memory-mapped arrays) grow past
``ServiceConfig.compact_threshold``, a background **compaction** folds
them into fresh contiguous arrays.  Readers never block on the compaction
and never notice it — a delta-merged read and a compacted read are
value-identical — which is what keeps :meth:`QueryService.run_batch` valid
mid-update.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set

from ..config import ServiceConfig
from ..core.engine import SocialSearchEngine
from ..core.query import Query, QueryResult
from ..errors import ServiceError
from ..graph.traversal import bfs_levels
from ..obs import trace as obs_trace
from ..obs.metrics import MetricsRegistry
from ..proximity.cache import CachedProximity
from ..proximity.materialized import MaterializedProximity
from ..storage.durable import DurableStore
from ..storage.updates import DatasetUpdater, UpdateSummary
from .cache import CacheKey, ResultCache
from .metrics import ServiceMetrics

#: Measures whose proximity vector of a seeker can only change when an edge
#: appears within ``max_hops`` of that seeker.  For these, friendship updates
#: invalidate selectively (a BFS ball around the touched users); for global
#: measures (personalised PageRank, landmark triangulation) every vector may
#: shift, so the service falls back to a full invalidation.
HOP_BOUNDED_MEASURES = frozenset({
    "shortest-path", "katz", "common-neighbours", "adamic-adar", "jaccard",
})


@dataclass
class ServedResult:
    """A query answer plus how the service produced it."""

    result: QueryResult
    #: ``"hit"`` (result cache), ``"coalesced"`` (joined an in-flight
    #: computation) or ``"computed"`` (fresh engine run).
    outcome: str
    #: Wall-clock service-side latency, including any queueing.
    latency_seconds: float

    @property
    def cached(self) -> bool:
        """Whether the answer came straight from the result cache."""
        return self.outcome == "hit"


class QueryService:
    """Thread-pooled, caching, update-aware front end for one engine.

    Parameters
    ----------
    engine:
        The search engine to serve.  Its proximity measure is shared across
        worker threads; :class:`CachedProximity` is internally locked.
    config:
        Service knobs (workers, cache capacity/TTL, deduplication, horizon).
    updater:
        Optional :class:`DatasetUpdater` to watch from construction; more
        can be attached later with :meth:`watch`.
    durable:
        Optional :class:`~repro.storage.durable.DurableStore` owning the
        served dataset.  When attached, the background fold triggered by
        ``compact_threshold`` becomes a full durable **checkpoint** —
        compact, publish a new arena generation, rotate the WAL — instead
        of an in-memory-only compaction, and :meth:`stats` grows a
        ``durability`` block.  The store's updater is watched
        automatically.
    """

    def __init__(self, engine: SocialSearchEngine,
                 config: Optional[ServiceConfig] = None,
                 updater: Optional[DatasetUpdater] = None,
                 durable: Optional[DurableStore] = None) -> None:
        self._engine = engine
        self._config = config or ServiceConfig()
        self._executor = ThreadPoolExecutor(
            max_workers=self._config.workers, thread_name_prefix="repro-query",
        )
        self._cache = ResultCache(capacity=self._config.cache_capacity,
                                  ttl_seconds=self._config.cache_ttl_seconds)
        self._metrics = ServiceMetrics()
        # Per-instance registry: push metrics (the latency histogram) live
        # here, everything else is pulled out of stats() at exposition time
        # by _collect_metrics, so the hot path never double-counts.
        self._registry = MetricsRegistry()
        self._latency_histogram = self._registry.histogram(
            "service_latency_seconds",
            "Service-side latency of computed queries.")
        self._registry.register_collector(self._collect_metrics)
        self._inflight: dict = {}  # guarded-by: _lock
        self._lock = threading.Lock()
        self._watched: List[DatasetUpdater] = []  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        self._compacting = False  # guarded-by: _lock
        self._compactions = 0  # guarded-by: _lock
        self._compaction_failures = 0  # guarded-by: _lock
        self._compaction_error: Optional[str] = None  # guarded-by: _lock
        self._compaction_threads: List[threading.Thread] = []  # guarded-by: _lock
        self._durable: Optional[DurableStore] = None
        if updater is not None:
            self.watch(updater)
        if durable is not None:
            self.attach_durable(durable)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def engine(self) -> SocialSearchEngine:
        """The engine answering the queries."""
        return self._engine

    @property
    def config(self) -> ServiceConfig:
        """The service configuration in effect."""
        return self._config

    @property
    def cache(self) -> ResultCache:
        """The result cache (exposed for tests and benchmarks)."""
        return self._cache

    @property
    def metrics(self) -> ServiceMetrics:
        """The live metrics collector."""
        return self._metrics

    @property
    def registry(self) -> MetricsRegistry:
        """The engine-wide metrics registry (backs ``GET /metrics``)."""
        return self._registry

    def metrics_text(self) -> str:
        """Prometheus text exposition of every registered metric."""
        return self._registry.expose_text()

    def _collect_metrics(self, registry: MetricsRegistry) -> None:
        """Pull every numeric leaf of :meth:`stats` into namespaced gauges.

        Runs at exposition/snapshot time only, so the counters' owning hot
        paths stay untouched; strings (algorithm names, error text) are
        not metrics and are skipped.
        """
        def put(prefix: str, mapping: dict) -> None:
            for key, value in mapping.items():
                name = f"{prefix}_{key}"
                if isinstance(value, dict):
                    put(name, value)
                elif isinstance(value, bool):
                    registry.gauge(name).set(int(value))
                elif isinstance(value, (int, float)):
                    registry.gauge(name).set(value)

        for section, block in self.stats().items():
            if isinstance(block, dict):
                put(section, block)

    def stats(self) -> dict:
        """Combined snapshot: service metrics + result and proximity caches."""
        engine_config = self._engine.config
        snapshot = {
            "service": self._metrics.to_dict(),
            "engine": {
                "algorithm": engine_config.algorithm,
                "alpha": engine_config.scoring.alpha,
                "proximity": engine_config.proximity.measure,
                "vectorized": engine_config.scoring.vectorized,
            },
            # The planner's engine-level decision record: storage backing,
            # proximity route, scoring path, partition layout.
            "plan": self._engine.planner.describe(),
            "result_cache": dict(self._cache.statistics.to_dict(),
                                 size=len(self._cache),
                                 capacity=self._cache.capacity),
            "write_path": {
                "compactions": self._compactions,
                "compaction_failures": self._compaction_failures,
                "compaction_error": self._compaction_error,
                "compact_threshold": self._config.compact_threshold,
                "pending_delta": self.pending_delta(),
                "epoch": max((updater.epoch for updater in self._watched),
                             default=0),
            },
        }
        if self._durable is not None:
            snapshot["durability"] = self._durable.stats()
        tracer = obs_trace.get_tracer()
        if tracer is not None:
            snapshot["trace"] = {
                "sample_rate": tracer.sample_rate,
                "roots_started": tracer.roots_started,
                "roots_sampled": tracer.roots_sampled,
                "retained": tracer.retained(),
                "capacity": tracer.capacity,
            }
        executor = self._engine.partition_executor
        if executor is not None:
            snapshot["partitions"] = executor.to_dict()
        proximity = self._engine.proximity
        if isinstance(proximity, CachedProximity):
            snapshot["proximity_cache"] = proximity.statistics.to_dict()
        if isinstance(proximity, MaterializedProximity):
            snapshot["proximity_shards"] = dict(
                proximity.statistics.to_dict(),
                rows=proximity.num_rows(),
                clusters=len(proximity.shards()),
            )
        return snapshot

    # ------------------------------------------------------------------ #
    # Query path
    # ------------------------------------------------------------------ #

    def _resolve_algorithm(self, algorithm: Optional[str]) -> str:
        return algorithm or self._engine.config.algorithm

    def _execute(self, key: CacheKey, query: Query, algorithm: str,
                 parent_span=None) -> QueryResult:
        started = time.perf_counter()
        # Snapshot the invalidation epoch before computing: if an update
        # invalidates mid-computation, this (possibly pre-update) result must
        # not be cached past the invalidation.
        generation = self._cache.generation
        tracer = obs_trace.get_tracer()
        # Worker threads have no ambient span context: the submitting
        # request's span is threaded through explicitly.  A NULL parent
        # marks an unsampled request — suppress library spans below it so
        # they do not start fragment traces of their own.
        if tracer is None or parent_span is None:
            span = obs_trace.NULL_SPAN
        elif parent_span:
            span = tracer.span("service.execute", parent=parent_span,
                               algorithm=algorithm)
        else:
            span = tracer.suppress()
        with span:
            try:
                result = self._engine.run(query, algorithm=algorithm)
            except Exception:
                self._metrics.record_error()
                raise
        self._cache.put(key, result, generation=generation)
        elapsed = time.perf_counter() - started
        self._metrics.record_latency(elapsed)
        self._latency_histogram.observe(elapsed)
        return result

    def _pop_inflight(self, key: CacheKey) -> None:
        with self._lock:
            self._inflight.pop(key, None)

    def _submit(self, query: Query, algorithm: Optional[str],
                parent_span=None) -> "tuple[Future, str]":
        if self._closed:
            raise ServiceError("cannot submit queries to a closed QueryService")
        name = self._resolve_algorithm(algorithm)
        key = CacheKey.for_query(query, name)
        cached = self._cache.get(key)
        if cached is not None:
            self._metrics.record_request("hit")
            future: Future = Future()
            future.set_result(cached)
            return future, "hit"
        with self._lock:
            if self._closed:
                raise ServiceError("cannot submit queries to a closed QueryService")
            if self._config.deduplicate:
                inflight = self._inflight.get(key)
                if inflight is not None:
                    self._metrics.record_request("coalesced")
                    return inflight, "coalesced"
            future = self._executor.submit(self._execute, key, query, name,
                                           parent_span)
            if self._config.deduplicate:
                self._inflight[key] = future
        if self._config.deduplicate:
            # Registered outside the lock: a future that already finished
            # runs the callback synchronously, and _pop_inflight takes the
            # same (non-reentrant) lock.
            future.add_done_callback(lambda _f, key=key: self._pop_inflight(key))
        self._metrics.record_request("miss")
        return future, "computed"

    def submit(self, query: Query, algorithm: Optional[str] = None) -> Future:
        """Enqueue ``query`` and return a future resolving to its :class:`QueryResult`."""
        future, _ = self._submit(query, algorithm)
        return future

    def serve(self, query: Query, algorithm: Optional[str] = None,
              request_id: Optional[str] = None) -> ServedResult:
        """Answer ``query`` synchronously, reporting how it was served.

        When a tracer is installed the whole request — cache probe, any
        queueing, the engine run — becomes one trace.  ``request_id``
        (the HTTP layer's ``X-Request-Id``) binds the trace's id so
        ``GET /trace/<id>`` finds it afterwards.
        """
        started = time.perf_counter()
        tracer = obs_trace.get_tracer()
        if tracer is None:
            future, outcome = self._submit(query, algorithm)
            result = future.result()
            return ServedResult(result=result, outcome=outcome,
                                latency_seconds=time.perf_counter() - started)
        with tracer.trace("request", trace_id=request_id,
                          seeker=query.seeker, tags=",".join(query.tags),
                          k=query.k) as root:
            # A sampled root is the worker's explicit parent; an unsampled
            # one passes NULL so the worker suppresses its own spans too.
            parent = tracer.current() if root else obs_trace.NULL_SPAN
            future, outcome = self._submit(query, algorithm,
                                           parent_span=parent)
            result = future.result()
            root.set(outcome=outcome)
        return ServedResult(result=result, outcome=outcome,
                            latency_seconds=time.perf_counter() - started)

    def query(self, seeker: int, tags: Sequence[str], k: int = 10,
              algorithm: Optional[str] = None) -> QueryResult:
        """One-call convenience mirroring :meth:`SocialSearchEngine.search`."""
        return self.serve(Query(seeker=seeker, tags=tuple(tags), k=k),
                          algorithm=algorithm).result

    def run_many(self, queries: Iterable[Query],
                 algorithm: Optional[str] = None) -> List[QueryResult]:
        """Run a batch concurrently, preserving input order in the output."""
        futures = [self.submit(query, algorithm) for query in queries]
        return [future.result() for future in futures]

    def run_batch(self, queries: Iterable[Query],
                  algorithm: Optional[str] = None) -> List[QueryResult]:
        """Answer a batch with request coalescing and shared scans.

        Cache hits are peeled off first (each recorded as a ``hit``); the
        distinct misses are coalesced — duplicate requests in the batch run
        once — and executed through :meth:`SocialSearchEngine.run_batch`,
        which groups them by (cluster, tags) and shares posting-list scans
        and proximity refinements.  Results land in the result cache and
        come back in input order, identical to :meth:`run_many`.
        """
        queries = list(queries)
        if self._closed:
            raise ServiceError("cannot submit queries to a closed QueryService")
        name = self._resolve_algorithm(algorithm)
        results: List[Optional[QueryResult]] = [None] * len(queries)
        misses: dict = {}
        for index, query in enumerate(queries):
            key = CacheKey.for_query(query, name)
            cached = self._cache.get(key)
            if cached is not None:
                self._metrics.record_request("hit")
                results[index] = cached
            else:
                misses.setdefault(key, (query, []))[1].append(index)
        if misses:
            generation = self._cache.generation
            distinct = [query for query, _indices in misses.values()]
            try:
                computed = self._engine.run_batch(distinct, algorithm=name)
            except Exception:
                self._metrics.record_error()
                raise
            for (key, (_query, indices)), result in zip(misses.items(), computed):
                self._cache.put(key, result, generation=generation)
                self._metrics.record_request("miss")
                # Per-query latency, not the batch average: the batch
                # executor apportions each result's own compute time plus
                # its share of the shared scan, so the recorded
                # distribution keeps its tail.
                self._metrics.record_latency(result.latency_seconds)
                for position, index in enumerate(indices):
                    if position:
                        self._metrics.record_request("coalesced")
                    results[index] = result
        return results  # type: ignore[return-value]

    def warm_proximity(self, seekers: Iterable[int]) -> int:
        """Pre-populate the proximity cache/shards for the given seekers.

        Each seeker's proximity vector is computed once through the engine's
        measure: with a :class:`CachedProximity` both the dense entry and
        the ranked stream land in the LRU caches (frontier algorithms read
        the latter), with a :class:`MaterializedProximity` it is refined
        into the shard overlay (seekers already covered by a shard row cost
        one lookup).  Invalid seeker ids are skipped.  Returns the number of
        seekers warmed — this backs ``repro serve --warmup``.
        """
        proximity = self._engine.proximity
        num_users = self._engine.dataset.num_users
        warmed = 0
        for seeker in seekers:
            if not 0 <= int(seeker) < num_users:
                continue
            # Ranked stream first — one step is enough, a caching measure
            # materialises and stores the whole stream before yielding its
            # first pair — then the dense form, which CachedProximity
            # derives from the just-cached stream without re-running the
            # online computation.
            next(iter(proximity.iter_ranked(int(seeker))), None)
            proximity.vector_array(int(seeker))
            warmed += 1
        return warmed

    # ------------------------------------------------------------------ #
    # Update-driven invalidation
    # ------------------------------------------------------------------ #

    def watch(self, updater: DatasetUpdater) -> DatasetUpdater:
        """Subscribe to ``updater`` so its changes invalidate this service."""
        updater.subscribe(self._on_update)
        with self._lock:
            self._watched.append(updater)
        return updater

    def attach_durable(self, durable: DurableStore) -> DurableStore:
        """Attach the durable store backing the served dataset.

        Its updater is watched (if not already), and from here on the
        background compaction driven by ``compact_threshold`` publishes a
        full durable checkpoint rather than an in-memory-only fold.
        """
        self._durable = durable
        if durable.updater not in self._watched:
            self.watch(durable.updater)
        return durable

    @property
    def durable(self) -> Optional[DurableStore]:
        """The attached durable store, if any."""
        return self._durable

    @property
    def invalidation_horizon(self) -> int:
        """Hop radius used for friendship-driven invalidation."""
        if self._config.invalidation_horizon > 0:
            return self._config.invalidation_horizon
        return self._engine.config.proximity.max_hops

    def _affected_seekers(self, users: Iterable[int]) -> Set[int]:
        """Every seeker within the proximity horizon of one of ``users``.

        Computed on the *new* graph, which is already in place when the
        updater notifies.  Includes the touched users themselves.
        """
        graph = self._engine.dataset.graph
        horizon = self.invalidation_horizon
        affected: Set[int] = set()
        # Every touched user gets its own BFS: hop-balls are not transitively
        # closed, so a user inside another's ball can still reach seekers the
        # other ball misses.
        for user in users:
            if 0 <= user < graph.num_users:
                affected.update(bfs_levels(graph, user, max_hops=horizon))
        return affected

    def _on_update(self, summary: UpdateSummary) -> None:
        removed = 0
        if summary.tags_touched:
            removed += self._cache.invalidate_tags(summary.tags_touched)
        if summary.graph_rebuilt:
            removed += self._refresh_proximity(summary)
            self._refresh_landmarks(summary)
        # Route freshly written items to the partition owning their first
        # endorser's community, so the scatter-gather layout keeps its
        # seeker locality under live updates (unknown items would otherwise
        # serve — correctly but slower — from the hash fallback).
        partitions = self._engine.partitions
        if partitions is not None and summary.items_touched:
            partitions.route_items(summary.items_touched)
        self._metrics.record_update(removed)
        self._maybe_compact()

    def _refresh_proximity(self, summary: UpdateSummary) -> int:
        """Rebind the proximity measure to the rebuilt graph and evict stale state.

        For hop-bounded measures the refresh is incremental: a
        :class:`MaterializedProximity` keeps its shards across the graph
        swap (:meth:`~MaterializedProximity.graph_updated`), only the
        seekers within the proximity horizon of the touched users are
        invalidated, and their rows are eagerly *repaired* — recomputed on
        the new graph and written back into their shards — so post-update
        queries go straight back to the shard fast path instead of falling
        into lazy refinement one seeker at a time.  Global measures
        (personalised PageRank, landmarks) still drop everything: any
        vector may have shifted.
        """
        graph = self._engine.dataset.graph
        proximity = self._engine.proximity
        measure = self._engine.config.proximity.measure
        removed = 0
        invalidate = getattr(proximity, "invalidate", None)
        if summary.edges_added and measure not in HOP_BOUNDED_MEASURES:
            # Rebind first: misses racing the invalidation below then
            # compute on the new graph, and the rebind's generation bump /
            # shard drop discards vectors still being computed on the old
            # one.
            proximity.rebind(graph)
            removed += self._cache.clear()
            if invalidate is not None:
                invalidate(range(graph.num_users))
            return removed
        affected: Set[int] = self._affected_seekers(summary.users_touched) \
            if summary.edges_added else set()
        graph_updated = getattr(proximity, "graph_updated", None)
        if graph_updated is not None:
            graph_updated(graph, affected)
        else:
            proximity.rebind(graph)
            if affected and invalidate is not None:
                invalidate(affected)
        if affected:
            removed += self._cache.invalidate_seekers(affected)
            repair = getattr(proximity, "repair", None)
            if repair is not None:
                repair(affected)
        return removed

    def _refresh_landmarks(self, summary: UpdateSummary) -> None:
        """Keep the approximate tier admissible across graph updates.

        The frozen landmark sketch adopts the rebuilt graph without
        recomputing landmark rows; seekers within the proximity horizon of
        the touched users go stale and are served exact overlay rows until
        the next offline rebuild (:meth:`LandmarkProximity.graph_updated`).
        """
        landmark = getattr(self._engine, "landmark_proximity", None)
        if landmark is None:
            return
        affected = (self._affected_seekers(summary.users_touched)
                    if summary.edges_added else set())
        landmark.graph_updated(self._engine.dataset.graph, affected)

    # ------------------------------------------------------------------ #
    # Background compaction (the write path's epoch swap)
    # ------------------------------------------------------------------ #

    @property
    def compactions(self) -> int:
        """Number of background compactions completed so far."""
        return self._compactions

    def pending_delta(self) -> int:
        """Delta actions awaiting compaction across the watched updaters."""
        return sum(updater.pending_delta() for updater in self._watched)

    def _maybe_compact(self) -> None:
        """Kick off one background compaction when the delta is large enough.

        Runs on the updater's thread right after an update notification;
        the compaction itself runs on a dedicated daemon thread — never on
        the query worker pool, which must stay free to serve traffic while
        the fold is in progress.  Readers keep serving from the
        pre-compaction epoch (delta-merged reads) until the fold lands; the
        two are value-identical, so ``run_batch`` stays valid
        mid-compaction.  Single-flight: at most one compaction is in
        progress per service.
        """
        threshold = self._config.compact_threshold
        if threshold <= 0:
            return
        for updater in self._watched:
            if updater.pending_delta() < threshold:
                continue
            with self._lock:
                if self._closed or self._compacting:
                    return
                self._compacting = True
                thread = threading.Thread(
                    target=self._run_compaction, args=(updater,),
                    name="repro-compact", daemon=True)
                self._compaction_threads.append(thread)
            thread.start()
            return

    def _run_compaction(self, updater: DatasetUpdater) -> None:
        try:
            durable = self._durable
            if durable is not None and updater is durable.updater:
                # Durable mode: the fold is one step of a full checkpoint —
                # compact, publish a fresh arena generation, rotate the WAL
                # — so a crash right after never replays more than one
                # threshold's worth of records.  Queries are untouched
                # either way; only writers block for the publish.
                folded = int(durable.checkpoint().get("folded", 0))
            else:
                folded = updater.compact()
        except Exception as exc:
            # Surface the failure through stats() rather than dying silently:
            # a persistently failing compaction means the delta keeps growing
            # and the operator has to know.
            with self._lock:
                self._compacting = False
                self._compaction_failures += 1
                self._compaction_error = f"{type(exc).__name__}: {exc}"
            return
        with self._lock:
            self._compacting = False
            if folded:
                self._compactions += 1

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self, wait: bool = True) -> None:
        """Unsubscribe from watched updaters and shut the executor down."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            watched = list(self._watched)
            self._watched.clear()
        for updater in watched:
            updater.unsubscribe(self._on_update)
        self._executor.shutdown(wait=wait)
        with self._lock:
            threads = list(self._compaction_threads)
            self._compaction_threads.clear()
        if wait:
            for thread in threads:
                thread.join(timeout=60.0)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
