"""Online query serving: concurrency, result caching, update-driven invalidation.

This package turns the single-threaded :class:`~repro.core.engine.SocialSearchEngine`
into a servable system:

* :class:`QueryService` — thread-pooled execution, in-flight request
  deduplication, and a seeker/tag-indexed result cache that is invalidated
  selectively when a watched :class:`~repro.storage.updates.DatasetUpdater`
  changes the dataset;
* :class:`ResultCache` / :class:`CacheKey` — the LRU + TTL cache itself;
* :class:`ServiceMetrics` — qps, latency percentiles, cache hit rates;
* :class:`ServiceHTTPServer` / :func:`serve_forever` — the stdlib JSON HTTP
  front end behind ``repro serve``.
"""

from .cache import CacheKey, ResultCache, ResultCacheStatistics
from .http_api import ServiceHTTPServer, serve_forever
from .metrics import ServiceMetrics, percentile
from .service import HOP_BOUNDED_MEASURES, QueryService, ServedResult

__all__ = [
    "CacheKey",
    "ResultCache",
    "ResultCacheStatistics",
    "ServiceMetrics",
    "percentile",
    "QueryService",
    "ServedResult",
    "HOP_BOUNDED_MEASURES",
    "ServiceHTTPServer",
    "serve_forever",
]
