"""Serving-side metrics: throughput, latency percentiles, cache behaviour.

Mirrors the philosophy of :mod:`repro.core.accounting`: mutable counters
with a ``to_dict`` snapshot so the numbers drop straight into the result
tables and the ``/metrics`` HTTP endpoint.  Latencies are kept in a bounded
reservoir (the most recent ``window`` observations) so a long-running server
reports *recent* percentiles rather than a lifetime average, at constant
memory.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List

from ..eval.timing import percentile

#: The only request outcomes the service produces; anything else is a bug
#: in the caller, not a new kind of miss.
REQUEST_OUTCOMES = frozenset({"hit", "coalesced", "miss"})


class ServiceMetrics:
    """Thread-safe counters and latency reservoir for a query service.

    Parameters
    ----------
    window:
        Number of most-recent query latencies retained for percentile
        estimates.
    clock:
        Monotonic time source, injectable for deterministic tests.
    """

    def __init__(self, window: int = 4096,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._clock = clock
        self._lock = threading.Lock()
        self._started_at = clock()
        self._latencies: Deque[float] = deque(maxlen=window)  # guarded-by: _lock
        self.requests = 0  # guarded-by: _lock
        self.computed = 0  # guarded-by: _lock
        self.cache_hits = 0  # guarded-by: _lock
        self.coalesced = 0  # guarded-by: _lock
        self.errors = 0  # guarded-by: _lock
        self.updates_observed = 0  # guarded-by: _lock
        self.entries_invalidated = 0  # guarded-by: _lock

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def record_request(self, outcome: str) -> None:
        """Count one request; ``outcome`` is ``"hit"``, ``"coalesced"`` or ``"miss"``."""
        if outcome not in REQUEST_OUTCOMES:
            raise ValueError(
                f"unknown request outcome {outcome!r}: expected one of "
                f"{sorted(REQUEST_OUTCOMES)}")
        with self._lock:
            self.requests += 1
            if outcome == "hit":
                self.cache_hits += 1
            elif outcome == "coalesced":
                self.coalesced += 1

    def record_latency(self, seconds: float) -> None:
        """Record the service-side latency of one computed query."""
        with self._lock:
            self.computed += 1
            self._latencies.append(seconds)

    def record_error(self) -> None:
        """Count one failed query execution."""
        with self._lock:
            self.errors += 1

    def record_update(self, entries_invalidated: int) -> None:
        """Count one observed dataset update and the entries it evicted."""
        with self._lock:
            self.updates_observed += 1
            self.entries_invalidated += entries_invalidated

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    @property
    def uptime_seconds(self) -> float:
        """Seconds since the metrics object was created."""
        return max(self._clock() - self._started_at, 0.0)

    @property
    def qps(self) -> float:
        """Requests served per second of uptime."""
        uptime = self.uptime_seconds
        return self.requests / uptime if uptime > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of requests answered straight from the result cache."""
        return self.cache_hits / self.requests if self.requests else 0.0

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 over the latency reservoir, in milliseconds."""
        with self._lock:
            sample: List[float] = list(self._latencies)
        return {
            "p50_ms": percentile(sample, 0.50) * 1000.0,
            "p95_ms": percentile(sample, 0.95) * 1000.0,
            "p99_ms": percentile(sample, 0.99) * 1000.0,
        }

    def to_dict(self) -> Dict[str, float]:
        """One flat snapshot for ``/metrics`` and benchmark tables."""
        snapshot: Dict[str, float] = {
            "uptime_seconds": self.uptime_seconds,
            "requests": self.requests,
            "computed": self.computed,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "errors": self.errors,
            "qps": self.qps,
            "cache_hit_rate": self.cache_hit_rate,
            "updates_observed": self.updates_observed,
            "entries_invalidated": self.entries_invalidated,
        }
        snapshot.update(self.latency_percentiles())
        return snapshot
