"""The query planner: every execution-path choice, made explicit.

Four PRs of optimisation left the engine with many implicit execution
paths — scalar vs vectorized scoring, online vs cached vs materialized
proximity, python-dict vs arena-array storage (with or without pending
delta overlays), single vs shared-scan batches, and now single- vs
multi-partition scans — chosen by ``if`` checks scattered across
``SocialSearchEngine``, ``core.batch`` and ``QueryService``.

This module centralises those decisions.  A :class:`QueryPlanner` inspects
the engine once (dataset backing, proximity wrapper, scoring mode,
partition layout) and emits an :class:`ExecutionPlan` per query — a plain,
inspectable record of *how* the query will run — which the engine then
merely drives.  ``repro explain`` and the service's ``/explain`` endpoint
print plans without executing them; the equivalence property tests pin the
contract that every route a planner can emit returns identical rankings,
scores and access accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .batch import MIN_SHARED_GROUP, group_queries
from .query import Query, QueryBudget
from .topk.base import available_algorithms

#: Executor routes a plan can select.
EXECUTOR_PARTITIONED = "partitioned-exact"
EXECUTOR_ALGORITHM = "algorithm"

#: Serving modes of the partitioned route: the exact scan, the budgeted
#: anytime scan (best-so-far + admissible error bound), and the
#: landmark-sketch executor (approximate proximity, no per-seeker
#: precomputation).
SERVING_EXACT = "exact"
SERVING_ANYTIME = "anytime"
SERVING_LANDMARK = "landmark"


def default_budget(k: int) -> QueryBudget:
    """The scanned-items cap of ``effort="balanced"`` (and the bench suite's
    default anytime operating point)."""
    return QueryBudget(max_scanned=max(512, 64 * k))


def fast_budget(k: int) -> QueryBudget:
    """The tighter cap ``effort="fast"`` falls back to when no landmark
    executor is configured."""
    return QueryBudget(max_scanned=max(128, 16 * k))


@dataclass(frozen=True)
class ServingDecision:
    """How the partitioned route will serve one query's latency hint."""

    mode: str
    budget: Optional[QueryBudget]
    reason: str


@dataclass(frozen=True)
class PartitionPreview:
    """One shard's role in a (not yet executed) partitioned scan."""

    #: Partition id.
    partition: int
    #: Candidate items of the query that live in this shard.
    candidates: int
    #: Admissible upper bound on any of those candidates' blended score.
    upper_bound: float
    #: Whether the bound already proves the shard cannot reach the top-k.
    pruned: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "partition": self.partition,
            "candidates": self.candidates,
            "upper_bound": self.upper_bound,
            "pruned": self.pruned,
        }


@dataclass(frozen=True)
class ExecutionPlan:
    """How one query will execute — the planner's full decision record.

    ``fan_out`` is the number of partitions the scatter phase will touch
    after bound pruning (1 for single-partition routes); the optional
    ``partition_previews`` carry the per-shard bound estimates behind that
    number when the plan was built with ``preview=True``.
    """

    seeker: int
    tags: Tuple[str, ...]
    k: int
    algorithm: str
    executor: str
    backing: str
    pending_delta: int
    proximity_path: str
    scoring_path: str
    partitions: int
    fan_out: int
    reason: str
    frontier_bound: Optional[float] = None
    prune_threshold: Optional[float] = None
    partition_previews: Optional[Tuple[PartitionPreview, ...]] = None
    #: How the route serves the query's latency hint (exact / anytime /
    #: landmark) plus the budget the anytime mode will enforce.
    serving_mode: str = SERVING_EXACT
    serving_reason: str = ""
    budget_deadline_ms: Optional[float] = None
    budget_max_scanned: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable view (the ``/explain`` payload)."""
        data: Dict[str, object] = {
            "query": {"seeker": self.seeker, "tags": list(self.tags),
                      "k": self.k},
            "algorithm": self.algorithm,
            "executor": self.executor,
            "backing": self.backing,
            "pending_delta": self.pending_delta,
            "proximity_path": self.proximity_path,
            "scoring_path": self.scoring_path,
            "partitions": self.partitions,
            "fan_out": self.fan_out,
            "reason": self.reason,
            "serving_mode": self.serving_mode,
        }
        if self.serving_reason:
            data["serving_reason"] = self.serving_reason
        if self.budget_deadline_ms is not None:
            data["budget_deadline_ms"] = self.budget_deadline_ms
        if self.budget_max_scanned is not None:
            data["budget_max_scanned"] = self.budget_max_scanned
        if self.frontier_bound is not None:
            data["frontier_bound"] = self.frontier_bound
        if self.prune_threshold is not None:
            data["prune_threshold"] = self.prune_threshold
        if self.partition_previews is not None:
            data["partition_previews"] = [preview.to_dict()
                                          for preview in self.partition_previews]
        return data

    def describe(self) -> str:
        """Human-readable multi-line rendering (the ``repro explain`` output)."""
        lines = [
            f"query:      seeker={self.seeker} tags={list(self.tags)} k={self.k}",
            f"algorithm:  {self.algorithm} ({self.scoring_path} scoring)",
            f"backing:    {self.backing}"
            + (f" ({self.pending_delta} delta actions pending)"
               if self.pending_delta else ""),
            f"proximity:  {self.proximity_path}",
            f"executor:   {self.executor} "
            f"(partitions={self.partitions}, fan-out={self.fan_out})",
            f"reason:     {self.reason}",
        ]
        if self.serving_mode != SERVING_EXACT or self.serving_reason:
            budget_bits = []
            if self.budget_deadline_ms is not None:
                budget_bits.append(f"deadline={self.budget_deadline_ms:g}ms")
            if self.budget_max_scanned is not None:
                budget_bits.append(f"max-scanned={self.budget_max_scanned}")
            budget_txt = f" ({', '.join(budget_bits)})" if budget_bits else ""
            lines.append(f"serving:    {self.serving_mode}{budget_txt}"
                         + (f" -- {self.serving_reason}"
                            if self.serving_reason else ""))
        if self.frontier_bound is not None:
            lines.append(f"bounds:     frontier={self.frontier_bound:.6f}"
                         + (f", prune-threshold={self.prune_threshold:.6f}"
                            if self.prune_threshold is not None else ""))
        if self.partition_previews:
            lines.append("partitions:")
            for preview in self.partition_previews:
                verdict = "PRUNED" if preview.pruned else "scan"
                lines.append(
                    f"  shard {preview.partition}: {preview.candidates} candidates, "
                    f"upper bound {preview.upper_bound:.6f} -> {verdict}")
        return "\n".join(lines)


@dataclass(frozen=True)
class BatchGroup:
    """One execution group of a batch plan (same tags, cluster-ordered)."""

    indices: Tuple[int, ...]
    tags: Tuple[str, ...]
    #: ``"shared-scan"`` (one candidate scan for the whole group) or
    #: ``"per-query"`` (each query runs through its own single-query plan).
    strategy: str


@dataclass(frozen=True)
class BatchPlan:
    """How a batch of queries will execute: groups plus their strategies."""

    algorithm: str
    groups: Tuple[BatchGroup, ...]
    #: Whether seekers were ordered by proximity cluster inside groups.
    cluster_ordered: bool

    @property
    def shared_groups(self) -> int:
        """Number of groups taking the shared-scan route."""
        return sum(1 for group in self.groups
                   if group.strategy == "shared-scan")

    def to_dict(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "groups": len(self.groups),
            "shared_scan_groups": self.shared_groups,
            "cluster_ordered": self.cluster_ordered,
        }


class QueryPlanner:
    """Chooses an execution route per query by inspecting the engine once.

    The planner holds only a reference to its engine; every ``plan`` call
    re-reads the *live* signals that can change under it (pending delta
    size, whether proximity shards are built), so plans stay truthful while
    updates stream in.
    """

    def __init__(self, engine) -> None:
        self._engine = engine
        # Routes depend only on (algorithm, scoring mode, executor
        # presence) — all fixed for an engine's lifetime — so the hot
        # per-query path reads a dict instead of re-deriving the decision.
        self._routes: Dict[str, Tuple[str, str]] = {}
        #: Route lookups / lookups answered from the memo (observability:
        #: the miss rate should be ~0 in steady state, and per-route
        #: decision counts show the serving mix).
        self.route_lookups = 0
        self.route_memo_hits = 0
        self._route_decisions: Dict[str, int] = {}
        #: Per-mode serving decisions (only queries that carried a hint
        #: reach the decision logic; hint-less queries are exact by
        #: construction and are counted under ``route_decisions``).
        self._serving_decisions: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Engine signals
    # ------------------------------------------------------------------ #

    def backing(self) -> str:
        """``"arena"`` for array-backed (mmap) storage, else ``"python"``."""
        return ("arena"
                if hasattr(self._engine.dataset.tagging, "delta_size")
                else "python")

    def pending_delta(self) -> int:
        """Delta actions overlaid on frozen arrays (0 for python backing)."""
        return int(getattr(self._engine.dataset.tagging, "delta_size", 0))

    def proximity_path(self) -> str:
        """How proximity vectors are served, as a short route name."""
        proximity = self._engine.proximity
        kind = type(proximity).__name__
        if kind == "MaterializedProximity":
            return "materialized" if proximity.built else "materialized-lazy"
        if kind == "CachedProximity":
            return "cached"
        return "online"

    def scoring_path(self) -> str:
        """``"vectorized"`` (numpy kernels) or ``"scalar"`` (reference path)."""
        return ("vectorized" if self._engine.config.scoring.vectorized
                else "scalar")

    def _resolve(self, algorithm: Optional[str]) -> str:
        return algorithm or self._engine.config.algorithm

    def _cluster_of(self):
        proximity = self._engine.proximity
        if getattr(proximity, "built", False):
            return getattr(proximity, "cluster_of", None)
        return None

    # ------------------------------------------------------------------ #
    # SLO-aware serving decisions
    # ------------------------------------------------------------------ #

    def serving(self, query: Query,
                executor: str = EXECUTOR_PARTITIONED) -> ServingDecision:
        """Pick the serving mode for one query's latency hint.

        Precedence: an explicit :class:`QueryBudget` wins, then ``effort``,
        then ``slo_ms``.  ``effort="fast"`` routes to the landmark executor
        when the engine built one (``proximity.landmarks > 0``), otherwise
        it degrades to a tightly budgeted anytime scan.  Serving modes only
        exist on the partitioned route — the registry algorithms have their
        own early-termination semantics — so other routes always serve
        exact.
        """
        decision = self._serving(query, executor)
        self._serving_decisions[decision.mode] = (
            self._serving_decisions.get(decision.mode, 0) + 1)
        return decision

    def _serving(self, query: Query, executor: str) -> ServingDecision:
        if executor != EXECUTOR_PARTITIONED:
            return ServingDecision(
                SERVING_EXACT, None,
                "serving hints apply to the partitioned route only; this "
                "route keeps its own termination semantics")
        if query.budget is not None:
            return ServingDecision(
                SERVING_ANYTIME, query.budget,
                "explicit per-query budget requested")
        if query.effort == "exact":
            return ServingDecision(
                SERVING_EXACT, None, "effort=exact pins the exact scan")
        if query.effort == "fast":
            if getattr(self._engine, "landmark_executor", None) is not None:
                return ServingDecision(
                    SERVING_LANDMARK, None,
                    "effort=fast routes to the landmark-sketch executor")
            return ServingDecision(
                SERVING_ANYTIME, fast_budget(query.k),
                "effort=fast with no landmark tier configured; tightly "
                "budgeted anytime scan instead")
        if query.effort == "balanced":
            return ServingDecision(
                SERVING_ANYTIME, default_budget(query.k),
                "effort=balanced caps the scan at the default budget")
        if query.slo_ms is not None:
            return ServingDecision(
                SERVING_ANYTIME, QueryBudget(deadline_ms=query.slo_ms),
                f"slo_ms={query.slo_ms:g} enforced as an anytime deadline")
        return ServingDecision(
            SERVING_EXACT, None,
            "no budget/effort/SLO hint; exact is the default")

    def serving_stats(self) -> Dict[str, int]:
        """Per-mode decision counts for hinted queries."""
        return dict(self._serving_decisions)

    # ------------------------------------------------------------------ #
    # Single-query planning
    # ------------------------------------------------------------------ #

    def plan(self, query: Query, algorithm: Optional[str] = None,
             preview: bool = False) -> ExecutionPlan:
        """Emit the execution plan for one query (optionally with bounds).

        ``preview=True`` additionally computes the per-partition candidate
        counts and admissible upper bounds the scatter phase would use —
        the expensive-ish part of ``repro explain`` — without running any
        social gather or ranking.
        """
        name = self._resolve(algorithm)
        executor_obj = getattr(self._engine, "partition_executor", None)
        partitions = (executor_obj.num_partitions
                      if executor_obj is not None else 1)
        route, reason = self.route(name)
        fan_out = partitions if route == EXECUTOR_PARTITIONED else 1
        frontier = None
        threshold = None
        previews: Optional[Tuple[PartitionPreview, ...]] = None
        if preview and route == EXECUTOR_PARTITIONED:
            bounds = executor_obj.preview(query)
            frontier = bounds.frontier_bound
            threshold = bounds.prune_threshold
            previews = tuple(
                PartitionPreview(partition=entry["partition"],
                                 candidates=entry["candidates"],
                                 upper_bound=entry["upper_bound"],
                                 pruned=entry["pruned"])
                for entry in bounds.partitions)
            fan_out = sum(1 for preview_ in previews
                          if not preview_.pruned and preview_.candidates)
        elif preview:
            frontier = self._engine.proximity.frontier_bound(query.seeker)
        serving_mode = SERVING_EXACT
        serving_reason = ""
        deadline_ms: Optional[float] = None
        max_scanned: Optional[int] = None
        if query.has_serving_hint:
            decision = self.serving(query, route)
            serving_mode = decision.mode
            serving_reason = decision.reason
            if decision.budget is not None:
                deadline_ms = decision.budget.deadline_ms
                max_scanned = decision.budget.max_scanned
        return ExecutionPlan(
            seeker=query.seeker,
            tags=query.tags,
            k=query.k,
            algorithm=name,
            executor=route,
            backing=self.backing(),
            pending_delta=self.pending_delta(),
            proximity_path=self.proximity_path(),
            scoring_path=self.scoring_path(),
            partitions=partitions,
            fan_out=fan_out,
            reason=reason,
            frontier_bound=frontier,
            prune_threshold=threshold,
            partition_previews=previews,
            serving_mode=serving_mode,
            serving_reason=serving_reason,
            budget_deadline_ms=deadline_ms,
            budget_max_scanned=max_scanned,
        )

    def route(self, algorithm: Optional[str] = None) -> Tuple[str, str]:
        """The memoised ``(executor, reason)`` route for an algorithm name.

        This is the planner's hot path: :meth:`SocialSearchEngine.run`
        consults it per query, and :meth:`plan` materialises the full
        :class:`ExecutionPlan` record around it on demand.
        """
        name = self._resolve(algorithm)
        self.route_lookups += 1
        cached = self._routes.get(name)
        if cached is None:
            cached = self._route(name,
                                 getattr(self._engine, "partition_executor",
                                         None))
            # Only registered algorithms earn a cache slot: unknown names
            # come straight off the serving path (HTTP ?algorithm=...) and
            # fail later with UnknownAlgorithmError — memoising them would
            # let clients grow this dict without bound.
            if name in available_algorithms():
                self._routes[name] = cached
        else:
            self.route_memo_hits += 1
        executor = cached[0]
        self._route_decisions[executor] = (
            self._route_decisions.get(executor, 0) + 1)
        return cached

    def _route(self, name: str, executor_obj) -> Tuple[str, str]:
        """Pick the executor route for algorithm ``name`` plus the why."""
        if executor_obj is None:
            return (EXECUTOR_ALGORITHM,
                    "single partition configured; the registry algorithm "
                    "scans the whole corpus")
        if name != "exact":
            return (EXECUTOR_ALGORITHM,
                    f"algorithm {name!r} streams bound-ordered accesses "
                    "with early termination; scatter-gather applies to the "
                    "exact block scan only")
        if not self._engine.config.scoring.vectorized:
            return (EXECUTOR_ALGORITHM,
                    "scalar scoring requested; the partitioned executor "
                    "is built on the vectorized kernels")
        return (EXECUTOR_PARTITIONED,
                "exact vectorized scan scatters over the item shards; "
                "shards whose admissible bound cannot reach the top-k "
                "are skipped")

    # ------------------------------------------------------------------ #
    # Batch planning
    # ------------------------------------------------------------------ #

    def plan_batch(self, queries: Sequence[Query],
                   algorithm: Optional[str] = None) -> BatchPlan:
        """Group a batch and pick each group's execution strategy.

        Same-tag queries form one group (their posting-list work is
        identical); groups of at least :data:`MIN_SHARED_GROUP` exact
        vectorized queries take the shared-scan route, everything else runs
        per query through :meth:`plan` (in cluster order, which still
        shares lazy proximity refinements).
        """
        name = self._resolve(algorithm)
        cluster_of = self._cluster_of()
        shared_eligible = (name == "exact"
                           and self._engine.config.scoring.vectorized)
        groups: List[BatchGroup] = []
        for indices in group_queries(queries, cluster_of):
            strategy = ("shared-scan"
                        if shared_eligible and len(indices) >= MIN_SHARED_GROUP
                        else "per-query")
            groups.append(BatchGroup(indices=tuple(indices),
                                     tags=queries[indices[0]].tags,
                                     strategy=strategy))
        return BatchPlan(algorithm=name, groups=tuple(groups),
                         cluster_ordered=cluster_of is not None)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def route_stats(self) -> Dict[str, object]:
        """Route-memo hit accounting and per-executor decision counts."""
        return {
            "route_lookups": self.route_lookups,
            "route_memo_hits": self.route_memo_hits,
            "route_decisions": dict(self._route_decisions),
            "serving_decisions": dict(self._serving_decisions),
        }

    def describe(self) -> Dict[str, object]:
        """The engine-level plan shape (the service's ``stats()`` block)."""
        executor_obj = getattr(self._engine, "partition_executor", None)
        description: Dict[str, object] = {
            "algorithm": self._engine.config.algorithm,
            "backing": self.backing(),
            "pending_delta": self.pending_delta(),
            "proximity_path": self.proximity_path(),
            "scoring_path": self.scoring_path(),
            "partitions": (executor_obj.num_partitions
                           if executor_obj is not None else 1),
        }
        description.update(self.route_stats())
        return description
