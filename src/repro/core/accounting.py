"""Access accounting.

Latency on a Python prototype is a noisy proxy for the cost a production
system would pay, so — like the paper family — every algorithm also reports
*access counts*, which are implementation-independent:

* **sequential accesses** — postings read from inverted lists in order;
* **random accesses** — point lookups of an item's tag frequency or of a
  tagger's proximity, i.e. the "fetch the missing score component" step of
  TA-style algorithms;
* **social accesses** — per-(visited friend, tag) profile probes;
* **users visited** — friends popped from the proximity frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class AccessAccountant:
    """Mutable counters shared by an algorithm run."""

    sequential_accesses: int = 0
    random_accesses: int = 0
    social_accesses: int = 0
    users_visited: int = 0
    candidates_considered: int = 0
    rounds: int = 0

    # ------------------------------------------------------------------ #
    # Charging
    # ------------------------------------------------------------------ #

    def charge_sequential(self, count: int = 1) -> None:
        """Charge ``count`` sequential posting reads."""
        self.sequential_accesses += count

    def charge_random(self, count: int = 1) -> None:
        """Charge ``count`` random point lookups."""
        self.random_accesses += count

    def charge_social(self, count: int = 1) -> None:
        """Charge ``count`` friend-profile probes."""
        self.social_accesses += count

    def charge_user_visit(self, count: int = 1) -> None:
        """Charge ``count`` frontier pops (friends visited)."""
        self.users_visited += count

    def charge_candidate(self, count: int = 1) -> None:
        """Charge ``count`` newly discovered candidate items."""
        self.candidates_considered += count

    def charge_round(self, count: int = 1) -> None:
        """Charge ``count`` scheduling rounds."""
        self.rounds += count

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #

    @property
    def total_accesses(self) -> int:
        """Sum of all index/graph accesses."""
        return (
            self.sequential_accesses
            + self.random_accesses
            + self.social_accesses
            + self.users_visited
        )

    def merge(self, other: "AccessAccountant") -> None:
        """Accumulate another accountant's counters into this one."""
        self.sequential_accesses += other.sequential_accesses
        self.random_accesses += other.random_accesses
        self.social_accesses += other.social_accesses
        self.users_visited += other.users_visited
        self.candidates_considered += other.candidates_considered
        self.rounds += other.rounds

    def to_dict(self) -> Dict[str, int]:
        """Plain-dict view for result tables."""
        return {
            "sequential_accesses": self.sequential_accesses,
            "random_accesses": self.random_accesses,
            "social_accesses": self.social_accesses,
            "users_visited": self.users_visited,
            "candidates_considered": self.candidates_considered,
            "rounds": self.rounds,
            "total_accesses": self.total_accesses,
        }

    @classmethod
    def sum(cls, accountants) -> "AccessAccountant":
        """Return a new accountant holding the sum of the given ones."""
        total = cls()
        for accountant in accountants:
            total.merge(accountant)
        return total
