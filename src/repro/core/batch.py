"""Batched query execution with shared posting-list scans.

A production mix contains many concurrent queries that touch the same tags
(popular tags dominate under Zipf workloads) and many seekers from the same
community.  Running them one by one repeats the same work per query:
candidate-set construction, posting-list position lookups and the textual
component depend only on the *tags*, and the proximity rows of same-cluster
seekers live in the same materialized shard.

:func:`run_batch` therefore executes the groups the planner's
:meth:`~repro.core.plan.QueryPlanner.plan_batch` forms — same-tags queries
together, seekers ordered by proximity cluster:

* for the vectorized **exact** algorithm the whole group shares one
  candidate scan — tag positions, frequencies, textual components and the
  scalar-equivalent access charges are computed once and reused for every
  query in the group; only the seeker-dependent social gather runs per
  seeker (once per *distinct* seeker, shared across that seeker's queries);
* when the engine serves proximity from materialized shards, the cluster's
  **bound vector** prunes the per-seeker social gather: an item whose
  admissible upper bound cannot reach the textual-only lower bound of the
  k-th strongest candidate provably loses, so its exact social mass is
  never gathered.  The bound-weighted mass itself is computed once per
  ``(cluster, tag)`` and shared by every seeker of the cluster;
* every other algorithm falls back to per-query execution in cluster order,
  which still shares lazy proximity refinements across the group.

The contract mirrors :meth:`SocialSearchEngine.run_many`: results come back
in input order with **identical rankings, scores and access accounting** to
the sequential path — the batching is an execution strategy, not a
different algorithm (property-tested in
``tests/property/test_materialized_equivalence.py``).  Access charges are
defined by what the scalar path *would* do, so pruning never changes them.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .accounting import AccessAccountant
from .query import Query, QueryResult, ScoredItem
from .scoring import ScoringModel
from .topk.exact import select_topk

#: Queries per (tags) group below which the shared scan is not worth the
#: bookkeeping; such groups run sequentially.
MIN_SHARED_GROUP = 2


def group_queries(queries: Sequence[Query],
                  cluster_of=None) -> List[List[int]]:
    """Partition query indices into execution groups.

    Queries sharing the same tag tuple form one group (their posting-list
    work is identical); inside a group, indices are ordered by the seeker's
    proximity cluster (when ``cluster_of`` is given) and then by seeker, so
    shard rows are visited with locality and same-seeker queries run
    back-to-back.  Group order follows first appearance, keeping the
    execution deterministic.
    """
    by_tags: Dict[Tuple[str, ...], List[int]] = {}
    for index, query in enumerate(queries):
        by_tags.setdefault(query.tags, []).append(index)
    groups: List[List[int]] = []
    for indices in by_tags.values():
        if cluster_of is not None:
            indices = sorted(indices, key=lambda i: (cluster_of(queries[i].seeker),
                                                     queries[i].seeker, i))
        else:
            indices = sorted(indices, key=lambda i: (queries[i].seeker, i))
        groups.append(indices)
    return groups


def run_batch(engine, queries: Sequence[Query],
              algorithm: Optional[str] = None) -> List[QueryResult]:
    """Answer a batch of queries with shared scans; results in input order.

    Grouping and strategy selection live in the planner
    (:meth:`repro.core.plan.QueryPlanner.plan_batch`); this driver merely
    executes each group — the shared candidate scan for ``"shared-scan"``
    groups, the per-query planned route (which may itself scatter over
    partitions) for everything else.
    """
    queries = list(queries)
    if not queries:
        return []
    plan = engine.planner.plan_batch(queries, algorithm=algorithm)
    results: List[Optional[QueryResult]] = [None] * len(queries)
    for group in plan.groups:
        if group.strategy == "shared-scan":
            _run_exact_group(engine, queries, group.indices, results)
        else:
            for index in group.indices:
                results[index] = engine.run(queries[index],
                                            algorithm=plan.algorithm)
    return results  # type: ignore[return-value]


class _SeekerBlock:
    """Exact scores of the candidate block for one seeker (possibly pruned).

    ``survivors`` is ``None`` when every candidate was scored; otherwise it
    holds the absolute candidate positions whose exact scores were computed
    (a provable superset of the top-``k_max``), and ``scores`` /
    ``social_component`` are indexed survivor-relative.
    """

    __slots__ = ("survivors", "scores", "social_component", "charges",
                 "proximity_touched")

    def __init__(self, survivors, scores, social_component, charges,
                 proximity_touched) -> None:
        self.survivors = survivors
        self.scores = scores
        self.social_component = social_component
        self.charges = charges
        self.proximity_touched = proximity_touched


def _run_exact_group(engine, queries: Sequence[Query], group: Sequence[int],
                     results: List[Optional[QueryResult]]) -> None:
    """Shared-scan exact search for one same-tags group.

    The arithmetic replays :meth:`ExactBaseline._search_vectorized`
    operation for operation — same accumulation order, same charges — so
    each produced :class:`QueryResult` is indistinguishable from a
    sequential run of the same query.
    """
    shared_started = time.perf_counter()
    scoring: ScoringModel = engine.scoring
    dataset = engine.dataset
    tags = queries[group[0]].tags
    alpha = scoring.config.alpha
    include_seeker = scoring.config.include_seeker
    m = float(len(tags)) if tags else 1.0

    candidates = scoring.candidate_block(tags)
    n = int(candidates.shape[0])
    sequential = sum(dataset.inverted_index.list_length(tag) for tag in tags)

    # Tag-dependent (seeker-independent) precomputation, done once for the
    # whole group: positions, textual component and the base access charges.
    per_tag: List[Optional[Tuple[str, float, object, np.ndarray, np.ndarray]]] = []
    textual_total = np.zeros(n, dtype=np.float64)
    base_charges = np.zeros(n, dtype=np.int64)
    for tag in tags:
        normaliser = scoring.normaliser(tag)
        bundle = dataset.endorser_index.for_tag(tag)
        if bundle is None or len(bundle) == 0:
            base_charges += 1  # the frequency lookup still happens
            per_tag.append(None)
            continue
        positions, found = bundle.positions_of(candidates)
        frequencies = np.where(found, bundle.frequencies[positions], 0)
        textual_total += frequencies / normaliser
        base_charges += 1 + frequencies
        per_tag.append((tag, normaliser, bundle, positions, found))
    textual_component = textual_total / m

    # Largest k any query asks of each seeker: the pruning threshold must
    # keep enough survivors for the widest request.
    k_max: Dict[int, int] = {}
    for index in group:
        query = queries[index]
        k_max[query.seeker] = max(k_max.get(query.seeker, 0), query.k)

    # Bound-weighted endorser mass per (cluster, tag), shared across every
    # seeker of the cluster (keyed by the bound array's identity).
    bound_mass_cache: Dict[Tuple[int, str], np.ndarray] = {}
    shared_seconds = time.perf_counter() - shared_started
    shared_share = shared_seconds / len(group)

    # Seeker-dependent work, shared across a seeker's queries in the group
    # (group_queries orders same-seeker queries adjacently), and the final
    # selection/materialisation, shared across identical (seeker, k)
    # requests — the in-batch analogue of the service's in-flight
    # deduplication.
    blocks: Dict[int, _SeekerBlock] = {}
    selections: Dict[Tuple[int, int], Tuple[List[ScoredItem], int, int]] = {}
    for index in group:
        query = queries[index]
        started = time.perf_counter()
        selection = selections.get((query.seeker, query.k))
        if selection is None:
            block = blocks.get(query.seeker)
            if block is None:
                block = _score_seeker(scoring, query.seeker, candidates, per_tag,
                                      textual_component, base_charges, alpha, m,
                                      include_seeker, k_max[query.seeker],
                                      bound_mass_cache)
                blocks[query.seeker] = block
            if block.survivors is None:
                top = select_topk(candidates, block.scores, query.k)
                top_scores = block.scores[top]
                top_social = block.social_component[top]
            else:
                relative = select_topk(candidates[block.survivors], block.scores,
                                       query.k)
                top = block.survivors[relative]
                top_scores = block.scores[relative]
                top_social = block.social_component[relative]
            items = [
                ScoredItem(item_id=item_id, score=score, textual=textual,
                           social=social)
                for item_id, score, textual, social in zip(
                    candidates[top].tolist(), top_scores.tolist(),  # lint: allow(hot-path-materialisation) -- k-sized top-k slices
                    textual_component[top].tolist(), top_social.tolist())  # lint: allow(hot-path-materialisation) -- k-sized top-k slices
            ]
            selection = (items, int(block.charges.sum()),
                         int(block.charges[top].sum()))
            selections[(query.seeker, query.k)] = selection
        items, total_charges, top_charges = selection
        block = blocks[query.seeker]

        accountant = AccessAccountant()
        accountant.charge_user_visit(block.proximity_touched)
        accountant.charge_sequential(sequential)
        accountant.charge_candidate(n)
        accountant.charge_random(total_charges)
        accountant.charge_random(top_charges)
        results[index] = QueryResult(
            query=query,
            items=list(items),
            algorithm="exact",
            latency_seconds=(time.perf_counter() - started) + shared_share,
            accounting=accountant,
            terminated_early=False,
        )


def _score_seeker(scoring: ScoringModel, seeker: int, candidates: np.ndarray,
                  per_tag, textual_component: np.ndarray,
                  base_charges: np.ndarray, alpha: float, m: float,
                  include_seeker: bool, k_max: int,
                  bound_mass_cache: Dict[Tuple[int, str], np.ndarray]
                  ) -> _SeekerBlock:
    """Exact scores + charges of the candidate block for one seeker."""
    n = int(candidates.shape[0])
    proximity = scoring.proximity_vector_array(seeker)
    proximity_touched = int(np.count_nonzero(proximity))

    # Access charges are defined by the scalar path and are independent of
    # how (or whether) the social mass is actually gathered.
    charges = base_charges.copy()
    for entry in per_tag:
        if entry is None:
            continue
        _tag, _normaliser, bundle, positions, found = entry
        if not include_seeker:
            seeker_flags = bundle.seeker_flags(seeker)
            charges -= np.where(found, seeker_flags[positions].astype(np.int64), 0)

    survivors = _prune_candidates(scoring, seeker, per_tag, textual_component,
                                  alpha, m, k_max, n, bound_mass_cache)

    if survivors is None:
        social_total = np.zeros(n, dtype=np.float64)
        for entry in per_tag:
            if entry is None:
                continue
            _tag, normaliser, bundle, positions, found = entry
            mass = bundle.social_mass(proximity)
            social_total += np.minimum(
                1.0, np.where(found, mass[positions], 0.0) / normaliser)
        social_component = social_total / m
        scores = alpha * textual_component + (1.0 - alpha) * social_component
        return _SeekerBlock(None, scores, social_component, charges,
                            proximity_touched)

    # Pruned gather: exact social mass only for the surviving candidates,
    # via a CSR-subset segmented reduction.  Element order inside each
    # segment matches the full reduceat, so the sums are bit-identical.
    count = int(survivors.shape[0])
    social_total = np.zeros(count, dtype=np.float64)
    for entry in per_tag:
        if entry is None:
            continue
        _tag, normaliser, bundle, positions, found = entry
        found_s = found[survivors]
        hit = np.nonzero(found_s)[0]
        mass_s = np.zeros(count, dtype=np.float64)
        if hit.shape[0]:
            mass_s[hit] = _subset_social_mass(bundle, proximity,
                                              positions[survivors][hit])
        social_total += np.minimum(1.0, np.where(found_s, mass_s, 0.0) / normaliser)
    social_component = social_total / m
    scores = alpha * textual_component[survivors] + (1.0 - alpha) * social_component
    return _SeekerBlock(survivors, scores, social_component, charges,
                        proximity_touched)


def _prune_candidates(scoring: ScoringModel, seeker: int, per_tag,
                      textual_component: np.ndarray, alpha: float, m: float,
                      k_max: int, n: int,
                      bound_mass_cache: Dict[Tuple[int, str], np.ndarray]
                      ) -> Optional[np.ndarray]:
    """Candidates that could reach the top-``k_max``, or ``None`` for "all".

    Uses the materialized cluster bound when available: an item whose
    admissible upper bound ``α·ntf + (1-α)·min(1, bound_mass/Z)`` is
    strictly below the ``k_max``-th largest textual-only lower bound cannot
    enter the top-``k_max`` (its exact score is at most the upper bound,
    and at least ``k_max`` items score at least the threshold), so its
    exact social mass never needs to be computed.
    """
    upper_bound_of = getattr(scoring.proximity, "upper_bound_array", None)
    if upper_bound_of is None or not 0 < k_max < n:
        return None
    bound = upper_bound_of(seeker)
    if bound is None:
        return None
    cluster_key = id(bound)
    bound_social_total = np.zeros(n, dtype=np.float64)
    for entry in per_tag:
        if entry is None:
            continue
        tag, normaliser, bundle, positions, found = entry
        bound_mass = bound_mass_cache.get((cluster_key, tag))
        if bound_mass is None:
            bound_mass = bundle.social_mass(bound)
            bound_mass_cache[(cluster_key, tag)] = bound_mass
        bound_social_total += np.minimum(
            1.0, np.where(found, bound_mass[positions], 0.0) / normaliser)
    upper = alpha * textual_component + (1.0 - alpha) * (bound_social_total / m)
    lower = alpha * textual_component
    threshold = np.partition(lower, n - k_max)[n - k_max]
    mask = upper >= threshold
    if int(mask.sum()) >= n:
        return None
    return np.nonzero(mask)[0]


def _subset_social_mass(bundle, proximity: np.ndarray,
                        positions: np.ndarray) -> np.ndarray:
    """Proximity-weighted endorser mass of a subset of a tag's items.

    ``positions`` index :attr:`TagEndorsers.item_ids`; every referenced
    segment is non-empty by index construction, which keeps ``reduceat``
    exact.  Returns one float per requested position.
    """
    starts = bundle.offsets[positions]
    lengths = (bundle.offsets[positions + 1] - starts).astype(np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(positions.shape[0], dtype=np.float64)
    segment_offsets = np.zeros(positions.shape[0], dtype=np.int64)
    np.cumsum(lengths[:-1], out=segment_offsets[1:])
    # Flat gather indices: each segment's start repeated, plus the offset
    # within the segment.
    flat = np.repeat(starts, lengths) \
        + (np.arange(total, dtype=np.int64) - np.repeat(segment_offsets, lengths))
    return np.add.reduceat(proximity[bundle.taggers[flat]], segment_offsets)
