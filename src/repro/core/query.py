"""Query and result model.

A :class:`Query` is a seeker asking for the top-``k`` items matching a set
of tags; a :class:`QueryResult` carries the ranked items plus everything the
evaluation framework needs to reproduce the paper-style plots: wall-clock
latency, access counts and whether the algorithm stopped early.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import InvalidQueryError
from .accounting import AccessAccountant


@dataclass(frozen=True)
class Query:
    """A top-k social search request.

    Attributes
    ----------
    seeker:
        Id of the querying user; their friends are the "help".
    tags:
        Query keywords.  Order is irrelevant; duplicates are removed while
        preserving first occurrence.
    k:
        Number of results requested.
    """

    seeker: int
    tags: Tuple[str, ...]
    k: int = 10

    def __post_init__(self) -> None:
        if self.seeker < 0:
            raise InvalidQueryError(f"seeker id must be non-negative, got {self.seeker}")
        if self.k < 1:
            raise InvalidQueryError(f"k must be >= 1, got {self.k}")
        cleaned: List[str] = []
        for tag in self.tags:
            if not isinstance(tag, str) or not tag.strip():
                raise InvalidQueryError(f"query tags must be non-empty strings, got {tag!r}")
            # Interned query tags hit the same objects the dataset's indexes
            # were built with (TaggingAction interns at build time), so the
            # per-posting dict lookups compare by pointer first.
            tag = sys.intern(tag)
            if tag not in cleaned:
                cleaned.append(tag)
        if not cleaned:
            raise InvalidQueryError("a query needs at least one tag")
        object.__setattr__(self, "tags", tuple(cleaned))

    @classmethod
    def single(cls, seeker: int, tag: str, k: int = 10) -> "Query":
        """Convenience constructor for single-tag queries."""
        return cls(seeker=seeker, tags=(tag,), k=k)

    @property
    def num_tags(self) -> int:
        """Number of distinct query tags."""
        return len(self.tags)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation."""
        return {"seeker": self.seeker, "tags": list(self.tags), "k": self.k}


@dataclass(frozen=True)
class ScoredItem:
    """One ranked result item with its score decomposition."""

    item_id: int
    score: float
    textual: float = 0.0
    social: float = 0.0

    def to_dict(self) -> Dict[str, float]:
        """JSON-serialisable representation."""
        return {
            "item_id": self.item_id,
            "score": self.score,
            "textual": self.textual,
            "social": self.social,
        }


@dataclass
class QueryResult:
    """The outcome of running one query with one algorithm."""

    query: Query
    items: List[ScoredItem]
    algorithm: str
    latency_seconds: float = 0.0
    accounting: AccessAccountant = field(default_factory=AccessAccountant)
    terminated_early: bool = False

    @property
    def item_ids(self) -> List[int]:
        """Ranked item ids (best first)."""
        return [item.item_id for item in self.items]

    @property
    def scores(self) -> List[float]:
        """Ranked scores (best first)."""
        return [item.score for item in self.items]

    def top(self, n: int) -> List[ScoredItem]:
        """The best ``n`` results."""
        return self.items[:n]

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation for experiment logs."""
        return {
            "query": self.query.to_dict(),
            "algorithm": self.algorithm,
            "latency_seconds": self.latency_seconds,
            "terminated_early": self.terminated_early,
            "accounting": self.accounting.to_dict(),
            "items": [item.to_dict() for item in self.items],
        }


def make_queries(pairs: Sequence[Tuple[int, Sequence[str]]], k: int = 10) -> List[Query]:
    """Build a list of queries from ``(seeker, tags)`` pairs (helper for examples)."""
    return [Query(seeker=seeker, tags=tuple(tags), k=k) for seeker, tags in pairs]
