"""Query and result model.

A :class:`Query` is a seeker asking for the top-``k`` items matching a set
of tags; a :class:`QueryResult` carries the ranked items plus everything the
evaluation framework needs to reproduce the paper-style plots: wall-clock
latency, access counts and whether the algorithm stopped early.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import InvalidQueryError
from .accounting import AccessAccountant


@dataclass(frozen=True)
class QueryBudget:
    """A per-query work limit for the anytime execution path.

    Either limit (or both) may be set: ``deadline_ms`` stops the scatter
    sweep once the query's wall clock crosses the deadline, ``max_scanned``
    once that many candidates have been submitted to exact scoring.  The
    sweep only stops *between* shards, so both limits are soft by at most
    one shard's worth of work.  An unlimited budget (both ``None``) is
    rejected — use the exact path instead.
    """

    deadline_ms: Optional[float] = None
    max_scanned: Optional[int] = None

    def __post_init__(self) -> None:
        if self.deadline_ms is None and self.max_scanned is None:
            raise InvalidQueryError(
                "a budget needs a deadline_ms or a max_scanned limit")
        if self.deadline_ms is not None and self.deadline_ms <= 0.0:
            raise InvalidQueryError(
                f"deadline_ms must be positive, got {self.deadline_ms}")
        if self.max_scanned is not None and self.max_scanned < 0:
            raise InvalidQueryError(
                f"max_scanned must be non-negative, got {self.max_scanned}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation."""
        return {"deadline_ms": self.deadline_ms,
                "max_scanned": self.max_scanned}


#: Effort hints a query may carry instead of a hard SLO or budget.
EFFORT_LEVELS = ("exact", "balanced", "fast")


@dataclass(frozen=True)
class Query:
    """A top-k social search request.

    Attributes
    ----------
    seeker:
        Id of the querying user; their friends are the "help".
    tags:
        Query keywords.  Order is irrelevant; duplicates are removed while
        preserving first occurrence.
    k:
        Number of results requested.
    slo_ms:
        Optional latency target.  The planner translates it into a serving
        mode (exact / anytime / landmark); it is a hint, not a guarantee.
    effort:
        Optional coarse hint (``"exact"``, ``"balanced"``, ``"fast"``) for
        clients that care about the latency/quality trade-off but have no
        millisecond number in mind.
    budget:
        Optional explicit :class:`QueryBudget`; overrides ``slo_ms`` and
        ``effort`` when present.
    """

    seeker: int
    tags: Tuple[str, ...]
    k: int = 10
    slo_ms: Optional[float] = None
    effort: Optional[str] = None
    budget: Optional[QueryBudget] = None

    def __post_init__(self) -> None:
        if self.seeker < 0:
            raise InvalidQueryError(f"seeker id must be non-negative, got {self.seeker}")
        if self.k < 1:
            raise InvalidQueryError(f"k must be >= 1, got {self.k}")
        if self.slo_ms is not None and self.slo_ms <= 0.0:
            raise InvalidQueryError(f"slo_ms must be positive, got {self.slo_ms}")
        if self.effort is not None and self.effort not in EFFORT_LEVELS:
            raise InvalidQueryError(
                f"effort must be one of {EFFORT_LEVELS}, got {self.effort!r}")
        cleaned: List[str] = []
        for tag in self.tags:
            if not isinstance(tag, str) or not tag.strip():
                raise InvalidQueryError(f"query tags must be non-empty strings, got {tag!r}")
            # Interned query tags hit the same objects the dataset's indexes
            # were built with (TaggingAction interns at build time), so the
            # per-posting dict lookups compare by pointer first.
            tag = sys.intern(tag)
            if tag not in cleaned:
                cleaned.append(tag)
        if not cleaned:
            raise InvalidQueryError("a query needs at least one tag")
        object.__setattr__(self, "tags", tuple(cleaned))

    @classmethod
    def single(cls, seeker: int, tag: str, k: int = 10) -> "Query":
        """Convenience constructor for single-tag queries."""
        return cls(seeker=seeker, tags=(tag,), k=k)

    @property
    def num_tags(self) -> int:
        """Number of distinct query tags."""
        return len(self.tags)

    @property
    def has_serving_hint(self) -> bool:
        """Whether the query carries any SLO / effort / budget hint."""
        return (self.slo_ms is not None or self.effort is not None
                or self.budget is not None)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation."""
        data: Dict[str, object] = {"seeker": self.seeker,
                                   "tags": list(self.tags), "k": self.k}
        if self.slo_ms is not None:
            data["slo_ms"] = self.slo_ms
        if self.effort is not None:
            data["effort"] = self.effort
        if self.budget is not None:
            data["budget"] = self.budget.to_dict()
        return data


@dataclass(frozen=True)
class ScoredItem:
    """One ranked result item with its score decomposition."""

    item_id: int
    score: float
    textual: float = 0.0
    social: float = 0.0

    def to_dict(self) -> Dict[str, float]:
        """JSON-serialisable representation."""
        return {
            "item_id": self.item_id,
            "score": self.score,
            "textual": self.textual,
            "social": self.social,
        }


@dataclass
class QueryResult:
    """The outcome of running one query with one algorithm.

    ``is_exact`` records whether the result is provably identical to the
    exact path; ``error_bound`` is the admissible gap of an anytime result:
    the true k-th exact score never exceeds the returned k-th score plus
    the bound (0.0 for provably exact answers, ``None`` when no bound is
    computed, e.g. the landmark-sketch route).
    """

    query: Query
    items: List[ScoredItem]
    algorithm: str
    latency_seconds: float = 0.0
    accounting: AccessAccountant = field(default_factory=AccessAccountant)
    terminated_early: bool = False
    is_exact: bool = True
    error_bound: Optional[float] = 0.0

    @property
    def item_ids(self) -> List[int]:
        """Ranked item ids (best first)."""
        return [item.item_id for item in self.items]

    @property
    def scores(self) -> List[float]:
        """Ranked scores (best first)."""
        return [item.score for item in self.items]

    def top(self, n: int) -> List[ScoredItem]:
        """The best ``n`` results."""
        return self.items[:n]

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation for experiment logs."""
        return {
            "query": self.query.to_dict(),
            "algorithm": self.algorithm,
            "latency_seconds": self.latency_seconds,
            "terminated_early": self.terminated_early,
            "is_exact": self.is_exact,
            "error_bound": self.error_bound,
            "accounting": self.accounting.to_dict(),
            "items": [item.to_dict() for item in self.items],
        }


def make_queries(pairs: Sequence[Tuple[int, Sequence[str]]], k: int = 10) -> List[Query]:
    """Build a list of queries from ``(seeker, tags)`` pairs (helper for examples)."""
    return [Query(seeker=seeker, tags=tuple(tags), k=k) for seeker, tags in pairs]
